//! # affinity-repro
//!
//! Umbrella crate for the reproduction of *Architectural Characterization
//! of Processor Affinity in Network Processing* (Foong et al., ISPASS
//! 2005). It re-exports the public API of [`affinity_sim`] and the
//! substrate crates so examples and integration tests have a single
//! import point.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use affinity_sim::*;

/// The substrate crates, re-exported for users who want to poke at the
/// machine model directly.
pub mod substrate {
    pub use sim_core;
    pub use sim_cpu;
    pub use sim_mem;
    pub use sim_net;
    pub use sim_os;
    pub use sim_prof;
    pub use sim_tcp;
}
