//! The NIC device model.

use serde::{Deserialize, Serialize};
use sim_core::{DeviceId, IrqVector};
use sim_mem::{MemorySystem, RegionId};

/// NIC geometry and interrupt-moderation settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicConfig {
    /// Descriptor ring entries (RX and TX each).
    pub ring_entries: u32,
    /// Descriptor size in bytes (PRO/1000 legacy descriptors are 16 B).
    pub descriptor_bytes: u32,
    /// Raise an interrupt after this many events (packets received or
    /// transmit completions) — packet-count interrupt coalescing, the
    /// moderation scheme of the paper-era e1000 driver.
    pub coalesce_events: u32,
    /// Bytes of RX buffer memory owned by the device (DMA target).
    pub rx_buffer_bytes: u64,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            ring_entries: 256,
            descriptor_bytes: 16,
            coalesce_events: 4,
            rx_buffer_bytes: 256 * 2048, // one 2 KB buffer per descriptor
        }
    }
}

/// Device counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicStats {
    /// Frames DMA'd to host memory.
    pub rx_frames: u64,
    /// Transmit completions processed.
    pub tx_completions: u64,
    /// Interrupts raised (post-coalescing).
    pub interrupts: u64,
    /// RX frames dropped because the ring was full.
    pub rx_drops: u64,
}

/// One NIC port: descriptor rings, DMA, and interrupt moderation.
///
/// The device performs DMA through the [`MemorySystem`] so cache effects
/// are real: RX DMA invalidates payload lines everywhere (arriving data
/// is uncached), TX DMA forces writebacks, and every descriptor write
/// touches the ring region — which, when the driver runs on a *different*
/// CPU than last time, shows up as coherence misses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nic {
    id: DeviceId,
    vector: IrqVector,
    config: NicConfig,
    rx_ring: RegionId,
    tx_ring: RegionId,
    rx_buffers: RegionId,
    rx_head: u32,
    rx_outstanding: u32,
    tx_head: u32,
    pending_events: u32,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC, allocating its rings and RX buffers in `mem`.
    #[must_use]
    pub fn new(id: DeviceId, vector: IrqVector, config: NicConfig, mem: &mut MemorySystem) -> Self {
        let ring_bytes = u64::from(config.ring_entries) * u64::from(config.descriptor_bytes);
        let rx_ring = mem.add_region(format!("{id}.rx_ring"), ring_bytes);
        let tx_ring = mem.add_region(format!("{id}.tx_ring"), ring_bytes);
        let rx_buffers = mem.add_region(format!("{id}.rx_buffers"), config.rx_buffer_bytes);
        Nic {
            id,
            vector,
            config,
            rx_ring,
            tx_ring,
            rx_buffers,
            rx_head: 0,
            rx_outstanding: 0,
            tx_head: 0,
            pending_events: 0,
            stats: NicStats::default(),
        }
    }

    /// Device id.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Interrupt vector this NIC asserts.
    #[must_use]
    pub fn vector(&self) -> IrqVector {
        self.vector
    }

    /// The RX descriptor ring region (touched by the driver's RX path).
    #[must_use]
    pub fn rx_ring(&self) -> RegionId {
        self.rx_ring
    }

    /// The TX descriptor ring region (touched by the driver's TX path).
    #[must_use]
    pub fn tx_ring(&self) -> RegionId {
        self.tx_ring
    }

    /// The RX buffer region packets are DMA'd into.
    #[must_use]
    pub fn rx_buffers(&self) -> RegionId {
        self.rx_buffers
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    fn coalesce(&mut self) -> bool {
        self.pending_events += 1;
        if self.pending_events >= self.config.coalesce_events {
            self.pending_events = 0;
            self.stats.interrupts += 1;
            true
        } else {
            false
        }
    }

    /// A frame of `bytes` payload arrives: the device DMA-writes the
    /// payload into an RX buffer and the descriptor ring, then applies
    /// interrupt moderation. Returns `true` when an interrupt should be
    /// asserted. Frames are dropped (counted, no interrupt contribution)
    /// when the RX ring has no free descriptors — i.e. when the host is
    /// not keeping up.
    pub fn dma_rx_frame(&mut self, mem: &mut MemorySystem, bytes: u32) -> bool {
        if self.rx_outstanding >= self.config.ring_entries {
            self.stats.rx_drops += 1;
            return false;
        }
        let slot = self.rx_head % self.config.ring_entries;
        self.rx_head = self.rx_head.wrapping_add(1);
        self.rx_outstanding += 1;
        // Payload lands in the slot's 2 KB buffer; descriptor updated.
        let buf_size = self.config.rx_buffer_bytes / u64::from(self.config.ring_entries);
        mem.dma_write(
            self.rx_buffers,
            u64::from(slot) * buf_size,
            u64::from(bytes),
        );
        mem.dma_write(
            self.rx_ring,
            u64::from(slot) * u64::from(self.config.descriptor_bytes),
            u64::from(self.config.descriptor_bytes),
        );
        self.stats.rx_frames += 1;
        self.coalesce()
    }

    /// The driver consumed `frames` RX descriptors (reclaim after the
    /// bottom half processed them).
    pub fn reclaim_rx(&mut self, frames: u32) {
        self.rx_outstanding = self.rx_outstanding.saturating_sub(frames);
    }

    /// RX descriptors currently filled and unreclaimed.
    #[must_use]
    pub fn rx_outstanding(&self) -> u32 {
        self.rx_outstanding
    }

    /// The device transmits a queued frame: DMA-reads the payload from
    /// `payload_region` and writes back the completion descriptor, then
    /// applies interrupt moderation. Returns `true` when a TX-completion
    /// interrupt should be asserted.
    pub fn dma_tx_frame(
        &mut self,
        mem: &mut MemorySystem,
        payload_region: RegionId,
        payload_offset: u64,
        bytes: u32,
    ) -> bool {
        let slot = self.tx_head % self.config.ring_entries;
        self.tx_head = self.tx_head.wrapping_add(1);
        mem.dma_read(payload_region, payload_offset, u64::from(bytes));
        mem.dma_write(
            self.tx_ring,
            u64::from(slot) * u64::from(self.config.descriptor_bytes),
            u64::from(self.config.descriptor_bytes),
        );
        self.stats.tx_completions += 1;
        self.coalesce()
    }

    /// Flushes any partially-coalesced events (the hardware's moderation
    /// timer firing at the end of a burst). Returns `true` if an
    /// interrupt should be asserted.
    pub fn flush_coalescing(&mut self) -> bool {
        if self.pending_events > 0 {
            self.pending_events = 0;
            self.stats.interrupts += 1;
            true
        } else {
            false
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Resets counters (keeps ring state).
    pub fn reset_stats(&mut self) {
        self.stats = NicStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::CpuId;
    use sim_mem::MemoryConfig;

    fn setup() -> (MemorySystem, Nic) {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let nic = Nic::new(
            DeviceId::new(0),
            IrqVector::new(0x19),
            NicConfig::default(),
            &mut mem,
        );
        (mem, nic)
    }

    #[test]
    fn coalescing_counts_events() {
        let (mut mem, mut nic) = setup();
        let mut interrupts = 0;
        for _ in 0..16 {
            if nic.dma_rx_frame(&mut mem, 1500) {
                interrupts += 1;
            }
        }
        assert_eq!(interrupts, 4); // 16 frames / coalesce 4
        assert_eq!(nic.stats().rx_frames, 16);
        assert_eq!(nic.stats().interrupts, 4);
    }

    #[test]
    fn flush_fires_partial_batch() {
        let (mut mem, mut nic) = setup();
        assert!(!nic.dma_rx_frame(&mut mem, 100));
        assert!(nic.flush_coalescing());
        assert!(!nic.flush_coalescing(), "nothing pending after flush");
    }

    #[test]
    fn rx_dma_makes_payload_uncached() {
        let (mut mem, mut nic) = setup();
        let cpu = CpuId::new(0);
        // Warm the first RX buffer in CPU0's cache.
        mem.data_touch(cpu, nic.rx_buffers(), 0, 2048, false);
        assert_eq!(
            mem.data_touch(cpu, nic.rx_buffers(), 0, 2048, false)
                .llc_misses,
            0
        );
        nic.dma_rx_frame(&mut mem, 1500);
        let after = mem.data_touch(cpu, nic.rx_buffers(), 0, 1500, false);
        assert!(after.llc_misses > 0, "DMA'd payload must be uncached");
    }

    #[test]
    fn ring_overflow_drops() {
        let (mut mem, mut nic) = setup();
        for _ in 0..256 {
            nic.dma_rx_frame(&mut mem, 100);
        }
        assert_eq!(nic.rx_outstanding(), 256);
        assert!(!nic.dma_rx_frame(&mut mem, 100));
        assert_eq!(nic.stats().rx_drops, 1);
        nic.reclaim_rx(100);
        assert_eq!(nic.rx_outstanding(), 156);
        nic.dma_rx_frame(&mut mem, 100);
        assert_eq!(nic.stats().rx_drops, 1);
    }

    #[test]
    fn tx_dma_counts_completions() {
        let (mut mem, mut nic) = setup();
        let payload = mem.add_region("app.buf", 65536);
        let mut interrupts = 0;
        for i in 0..8 {
            if nic.dma_tx_frame(&mut mem, payload, i * 1448, 1448) {
                interrupts += 1;
            }
        }
        assert_eq!(interrupts, 2);
        assert_eq!(nic.stats().tx_completions, 8);
    }

    #[test]
    fn tx_dma_does_not_evict_payload() {
        let (mut mem, mut nic) = setup();
        let payload = mem.add_region("app.buf", 4096);
        let cpu = CpuId::new(0);
        mem.data_touch(cpu, payload, 0, 4096, true); // app writes buffer
        nic.dma_tx_frame(&mut mem, payload, 0, 1448);
        // Transmit DMA reads; payload stays cached for reuse (ttcp reuses
        // the same buffer every iteration — the paper's TX caching setup).
        assert_eq!(mem.data_touch(cpu, payload, 0, 1448, false).llc_misses, 0);
    }

    #[test]
    fn regions_are_distinct() {
        let (_, nic) = setup();
        assert_ne!(nic.rx_ring(), nic.tx_ring());
        assert_ne!(nic.rx_ring(), nic.rx_buffers());
        assert_eq!(nic.vector(), IrqVector::new(0x19));
        assert_eq!(nic.id(), DeviceId::new(0));
    }

    #[test]
    fn reset_stats() {
        let (mut mem, mut nic) = setup();
        nic.dma_rx_frame(&mut mem, 100);
        nic.reset_stats();
        assert_eq!(nic.stats(), NicStats::default());
    }
}
