//! The NIC device model.

use crate::coalesce::{CoalesceConfig, CoalescePolicy, Coalescer};
use serde::{Deserialize, Serialize};
use sim_core::{DeviceId, IrqVector};
use sim_mem::{MemorySystem, RegionId};

/// NIC geometry and interrupt-moderation settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicConfig {
    /// Descriptor ring entries (RX and TX each, per queue).
    pub ring_entries: u32,
    /// Descriptor size in bytes (PRO/1000 legacy descriptors are 16 B).
    pub descriptor_bytes: u32,
    /// Interrupt-moderation policy applied per queue. The default,
    /// [`CoalesceConfig::FixedCount`] with 4 events, is the paper-era
    /// e1000 packet-count scheme.
    pub coalesce: CoalesceConfig,
    /// Bytes of RX buffer memory owned by the device, per queue (DMA
    /// target).
    pub rx_buffer_bytes: u64,
    /// Hardware queues (each with its own rings, buffers, coalescer and
    /// MSI-X vector). The paper-era PRO/1000 has exactly one.
    pub queues: u32,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            ring_entries: 256,
            descriptor_bytes: 16,
            coalesce: CoalesceConfig::default(),
            rx_buffer_bytes: 256 * 2048, // one 2 KB buffer per descriptor
            queues: 1,
        }
    }
}

/// Device counters (aggregated over all queues).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicStats {
    /// Frames DMA'd to host memory.
    pub rx_frames: u64,
    /// Transmit completions processed.
    pub tx_completions: u64,
    /// Interrupts raised (post-coalescing).
    pub interrupts: u64,
    /// RX frames dropped because the ring was full.
    pub rx_drops: u64,
}

/// One hardware queue: descriptor rings, buffers, moderation state and
/// the MSI-X vector it asserts.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Queue {
    vector: IrqVector,
    rx_ring: RegionId,
    tx_ring: RegionId,
    rx_buffers: RegionId,
    rx_head: u32,
    rx_outstanding: u32,
    tx_head: u32,
    coalescer: Coalescer,
}

/// One NIC port: per-queue descriptor rings, DMA, and interrupt
/// moderation.
///
/// The device performs DMA through the [`MemorySystem`] so cache effects
/// are real: RX DMA invalidates payload lines everywhere (arriving data
/// is uncached), TX DMA forces writebacks, and every descriptor write
/// touches the ring region — which, when the driver runs on a *different*
/// CPU than last time, shows up as coherence misses.
///
/// A paper-era NIC has one queue; multi-queue configurations give each
/// queue its own rings, RX buffers, coalescer, and MSI-X vector, which
/// is what lets steering policies place flows on distinct CPUs within a
/// single port.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nic {
    id: DeviceId,
    config: NicConfig,
    queues: Vec<Queue>,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC, allocating per-queue rings and RX buffers in `mem`.
    ///
    /// `vectors` supplies one MSI-X vector per queue.
    ///
    /// # Panics
    /// Panics when `vectors.len()` does not match `config.queues`.
    #[must_use]
    pub fn new(
        id: DeviceId,
        vectors: &[IrqVector],
        config: NicConfig,
        mem: &mut MemorySystem,
    ) -> Self {
        let queues = config.queues.max(1) as usize;
        assert_eq!(
            vectors.len(),
            queues,
            "NIC {id} needs one MSI-X vector per queue"
        );
        let ring_bytes = u64::from(config.ring_entries) * u64::from(config.descriptor_bytes);
        let queues = vectors
            .iter()
            .enumerate()
            .map(|(q, &vector)| {
                // Queue 0 keeps the legacy single-queue region names so
                // existing memory layouts (and their golden snapshots)
                // are unchanged when `queues == 1`.
                let prefix = if q == 0 {
                    format!("{id}")
                } else {
                    format!("{id}.q{q}")
                };
                let rx_ring = mem.add_region(format!("{prefix}.rx_ring"), ring_bytes);
                let tx_ring = mem.add_region(format!("{prefix}.tx_ring"), ring_bytes);
                let rx_buffers =
                    mem.add_region(format!("{prefix}.rx_buffers"), config.rx_buffer_bytes);
                Queue {
                    vector,
                    rx_ring,
                    tx_ring,
                    rx_buffers,
                    rx_head: 0,
                    rx_outstanding: 0,
                    tx_head: 0,
                    coalescer: config.coalesce.build(),
                }
            })
            .collect();
        Nic {
            id,
            config,
            queues,
            stats: NicStats::default(),
        }
    }

    /// Device id.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Number of hardware queues.
    #[must_use]
    pub fn queues(&self) -> usize {
        self.queues.len()
    }

    /// Interrupt vector queue `queue` asserts.
    #[must_use]
    pub fn vector(&self, queue: usize) -> IrqVector {
        self.queues[queue].vector
    }

    /// The RX descriptor ring region of `queue` (touched by the driver's
    /// RX path).
    #[must_use]
    pub fn rx_ring(&self, queue: usize) -> RegionId {
        self.queues[queue].rx_ring
    }

    /// The TX descriptor ring region of `queue` (touched by the driver's
    /// TX path).
    #[must_use]
    pub fn tx_ring(&self, queue: usize) -> RegionId {
        self.queues[queue].tx_ring
    }

    /// The RX buffer region packets on `queue` are DMA'd into.
    #[must_use]
    pub fn rx_buffers(&self, queue: usize) -> RegionId {
        self.queues[queue].rx_buffers
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Policy-specific moderation-timer period for `queue`, or `None`
    /// when the machine-level default applies.
    #[must_use]
    pub fn flush_timeout(&self, queue: usize) -> Option<u64> {
        self.queues[queue].coalescer.timeout_cycles()
    }

    /// A frame of `bytes` payload arrives on `queue` at cycle `now`: the
    /// device DMA-writes the payload into an RX buffer and the descriptor
    /// ring, then applies interrupt moderation. Returns `true` when an
    /// interrupt should be asserted. Frames are dropped (counted, no
    /// interrupt contribution) when the RX ring has no free descriptors —
    /// i.e. when the host is not keeping up.
    pub fn dma_rx_frame(
        &mut self,
        queue: usize,
        mem: &mut MemorySystem,
        bytes: u32,
        now: u64,
    ) -> bool {
        let entries = self.config.ring_entries;
        let descriptor_bytes = self.config.descriptor_bytes;
        let buf_size = self.config.rx_buffer_bytes / u64::from(entries);
        let q = &mut self.queues[queue];
        if q.rx_outstanding >= entries {
            self.stats.rx_drops += 1;
            return false;
        }
        let slot = q.rx_head % entries;
        q.rx_head = q.rx_head.wrapping_add(1);
        q.rx_outstanding += 1;
        // Payload lands in the slot's 2 KB buffer; descriptor updated.
        mem.dma_write(q.rx_buffers, u64::from(slot) * buf_size, u64::from(bytes));
        mem.dma_write(
            q.rx_ring,
            u64::from(slot) * u64::from(descriptor_bytes),
            u64::from(descriptor_bytes),
        );
        self.stats.rx_frames += 1;
        if q.coalescer.on_event(now) {
            self.stats.interrupts += 1;
            true
        } else {
            false
        }
    }

    /// A frame arrives on `queue` under a poll-mode dataplane: the DMA
    /// writes are identical to [`Nic::dma_rx_frame`] (payload lands
    /// uncached, the descriptor ring is touched), but the coalescer is
    /// bypassed and no interrupt is ever asserted — a busy-polling PMD
    /// core discovers the descriptor by probing the ring. Descriptor
    /// occupancy is owned by the dataplane's [`crate::SpscRing`], not the
    /// device, so nothing is dropped here.
    pub fn dma_rx_frame_polled(&mut self, queue: usize, mem: &mut MemorySystem, bytes: u32) {
        let entries = self.config.ring_entries;
        let descriptor_bytes = self.config.descriptor_bytes;
        let buf_size = self.config.rx_buffer_bytes / u64::from(entries);
        let q = &mut self.queues[queue];
        let slot = q.rx_head % entries;
        q.rx_head = q.rx_head.wrapping_add(1);
        mem.dma_write(q.rx_buffers, u64::from(slot) * buf_size, u64::from(bytes));
        mem.dma_write(
            q.rx_ring,
            u64::from(slot) * u64::from(descriptor_bytes),
            u64::from(descriptor_bytes),
        );
        self.stats.rx_frames += 1;
    }

    /// The device transmits a frame under a poll-mode dataplane: DMA-reads
    /// the payload and writes back the completion descriptor, with no
    /// coalescing and no interrupt (the PMD core polls for completions).
    pub fn dma_tx_frame_polled(
        &mut self,
        queue: usize,
        mem: &mut MemorySystem,
        payload_region: RegionId,
        payload_offset: u64,
        bytes: u32,
    ) {
        let entries = self.config.ring_entries;
        let descriptor_bytes = self.config.descriptor_bytes;
        let q = &mut self.queues[queue];
        let slot = q.tx_head % entries;
        q.tx_head = q.tx_head.wrapping_add(1);
        mem.dma_read(payload_region, payload_offset, u64::from(bytes));
        mem.dma_write(
            q.tx_ring,
            u64::from(slot) * u64::from(descriptor_bytes),
            u64::from(descriptor_bytes),
        );
        self.stats.tx_completions += 1;
    }

    /// The driver consumed `frames` RX descriptors on `queue` (reclaim
    /// after the bottom half processed them).
    pub fn reclaim_rx(&mut self, queue: usize, frames: u32) {
        let q = &mut self.queues[queue];
        q.rx_outstanding = q.rx_outstanding.saturating_sub(frames);
    }

    /// RX descriptors currently filled and unreclaimed on `queue`.
    #[must_use]
    pub fn rx_outstanding(&self, queue: usize) -> u32 {
        self.queues[queue].rx_outstanding
    }

    /// The device transmits a queued frame on `queue` at cycle `now`:
    /// DMA-reads the payload from `payload_region` and writes back the
    /// completion descriptor, then applies interrupt moderation. Returns
    /// `true` when a TX-completion interrupt should be asserted.
    pub fn dma_tx_frame(
        &mut self,
        queue: usize,
        mem: &mut MemorySystem,
        payload_region: RegionId,
        payload_offset: u64,
        bytes: u32,
        now: u64,
    ) -> bool {
        let entries = self.config.ring_entries;
        let descriptor_bytes = self.config.descriptor_bytes;
        let q = &mut self.queues[queue];
        let slot = q.tx_head % entries;
        q.tx_head = q.tx_head.wrapping_add(1);
        mem.dma_read(payload_region, payload_offset, u64::from(bytes));
        mem.dma_write(
            q.tx_ring,
            u64::from(slot) * u64::from(descriptor_bytes),
            u64::from(descriptor_bytes),
        );
        self.stats.tx_completions += 1;
        if q.coalescer.on_event(now) {
            self.stats.interrupts += 1;
            true
        } else {
            false
        }
    }

    /// Flushes any partially-coalesced events on `queue` (the hardware's
    /// moderation timer firing at the end of a burst). Returns `true` if
    /// an interrupt should be asserted.
    pub fn flush_coalescing(&mut self, queue: usize) -> bool {
        if self.queues[queue].coalescer.flush() {
            self.stats.interrupts += 1;
            true
        } else {
            false
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Resets counters (keeps ring and moderation state).
    pub fn reset_stats(&mut self) {
        self.stats = NicStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::CpuId;
    use sim_mem::MemoryConfig;

    fn setup() -> (MemorySystem, Nic) {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let nic = Nic::new(
            DeviceId::new(0),
            &[IrqVector::new(0x19)],
            NicConfig::default(),
            &mut mem,
        );
        (mem, nic)
    }

    #[test]
    fn coalescing_counts_events() {
        let (mut mem, mut nic) = setup();
        let mut interrupts = 0;
        for _ in 0..16 {
            if nic.dma_rx_frame(0, &mut mem, 1500, 0) {
                interrupts += 1;
            }
        }
        assert_eq!(interrupts, 4); // 16 frames / coalesce 4
        assert_eq!(nic.stats().rx_frames, 16);
        assert_eq!(nic.stats().interrupts, 4);
    }

    #[test]
    fn flush_fires_partial_batch() {
        let (mut mem, mut nic) = setup();
        assert!(!nic.dma_rx_frame(0, &mut mem, 100, 0));
        assert!(nic.flush_coalescing(0));
        assert!(!nic.flush_coalescing(0), "nothing pending after flush");
    }

    #[test]
    fn rx_dma_makes_payload_uncached() {
        let (mut mem, mut nic) = setup();
        let cpu = CpuId::new(0);
        // Warm the first RX buffer in CPU0's cache.
        mem.data_touch(cpu, nic.rx_buffers(0), 0, 2048, false);
        assert_eq!(
            mem.data_touch(cpu, nic.rx_buffers(0), 0, 2048, false)
                .llc_misses,
            0
        );
        nic.dma_rx_frame(0, &mut mem, 1500, 0);
        let after = mem.data_touch(cpu, nic.rx_buffers(0), 0, 1500, false);
        assert!(after.llc_misses > 0, "DMA'd payload must be uncached");
    }

    #[test]
    fn ring_overflow_drops() {
        let (mut mem, mut nic) = setup();
        for _ in 0..256 {
            nic.dma_rx_frame(0, &mut mem, 100, 0);
        }
        assert_eq!(nic.rx_outstanding(0), 256);
        assert!(!nic.dma_rx_frame(0, &mut mem, 100, 0));
        assert_eq!(nic.stats().rx_drops, 1);
        nic.reclaim_rx(0, 100);
        assert_eq!(nic.rx_outstanding(0), 156);
        nic.dma_rx_frame(0, &mut mem, 100, 0);
        assert_eq!(nic.stats().rx_drops, 1);
    }

    #[test]
    fn tx_dma_counts_completions() {
        let (mut mem, mut nic) = setup();
        let payload = mem.add_region("app.buf", 65536);
        let mut interrupts = 0;
        for i in 0..8 {
            if nic.dma_tx_frame(0, &mut mem, payload, i * 1448, 1448, 0) {
                interrupts += 1;
            }
        }
        assert_eq!(interrupts, 2);
        assert_eq!(nic.stats().tx_completions, 8);
    }

    #[test]
    fn tx_dma_does_not_evict_payload() {
        let (mut mem, mut nic) = setup();
        let payload = mem.add_region("app.buf", 4096);
        let cpu = CpuId::new(0);
        mem.data_touch(cpu, payload, 0, 4096, true); // app writes buffer
        nic.dma_tx_frame(0, &mut mem, payload, 0, 1448, 0);
        // Transmit DMA reads; payload stays cached for reuse (ttcp reuses
        // the same buffer every iteration — the paper's TX caching setup).
        assert_eq!(mem.data_touch(cpu, payload, 0, 1448, false).llc_misses, 0);
    }

    #[test]
    fn regions_are_distinct() {
        let (_, nic) = setup();
        assert_ne!(nic.rx_ring(0), nic.tx_ring(0));
        assert_ne!(nic.rx_ring(0), nic.rx_buffers(0));
        assert_eq!(nic.vector(0), IrqVector::new(0x19));
        assert_eq!(nic.id(), DeviceId::new(0));
        assert_eq!(nic.queues(), 1);
    }

    #[test]
    fn multi_queue_isolates_rings_and_vectors() {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(4));
        let vectors = [
            IrqVector::new(0x19),
            IrqVector::new(0x1a),
            IrqVector::new(0x1b),
            IrqVector::new(0x1d),
        ];
        let config = NicConfig {
            queues: 4,
            ..NicConfig::default()
        };
        let mut nic = Nic::new(DeviceId::new(0), &vectors, config, &mut mem);
        assert_eq!(nic.queues(), 4);
        for (q, &vector) in vectors.iter().enumerate() {
            assert_eq!(nic.vector(q), vector);
            for p in 0..4 {
                if p != q {
                    assert_ne!(nic.rx_ring(q), nic.rx_ring(p));
                    assert_ne!(nic.rx_buffers(q), nic.rx_buffers(p));
                }
            }
        }
        // Coalescing state is per queue: three frames on q0 leave its
        // batch open; a fourth on q1 does not close q0's batch.
        for _ in 0..3 {
            assert!(!nic.dma_rx_frame(0, &mut mem, 1500, 0));
        }
        assert!(!nic.dma_rx_frame(1, &mut mem, 1500, 0));
        assert!(nic.dma_rx_frame(0, &mut mem, 1500, 0));
        assert_eq!(nic.rx_outstanding(0), 4);
        assert_eq!(nic.rx_outstanding(1), 1);
        nic.reclaim_rx(0, 4);
        assert_eq!(nic.rx_outstanding(0), 0);
        assert_eq!(nic.rx_outstanding(1), 1);
    }

    #[test]
    fn adaptive_coalescer_exposes_timeout() {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let config = NicConfig {
            coalesce: CoalesceConfig::AdaptiveTimeout {
                min_events: 1,
                max_events: 16,
                idle_gap_cycles: 2_000,
                timeout_cycles: 6_000,
            },
            ..NicConfig::default()
        };
        let nic = Nic::new(DeviceId::new(0), &[IrqVector::new(0x19)], config, &mut mem);
        assert_eq!(nic.flush_timeout(0), Some(6_000));
        let fixed = setup().1;
        assert_eq!(fixed.flush_timeout(0), None);
    }

    #[test]
    fn polled_dma_never_interrupts() {
        let (mut mem, mut nic) = setup();
        let payload = mem.add_region("app.buf", 65536);
        for _ in 0..64 {
            nic.dma_rx_frame_polled(0, &mut mem, 1500);
        }
        for i in 0..8 {
            nic.dma_tx_frame_polled(0, &mut mem, payload, i * 1448, 1448);
        }
        assert_eq!(nic.stats().rx_frames, 64);
        assert_eq!(nic.stats().tx_completions, 8);
        assert_eq!(
            nic.stats().interrupts,
            0,
            "poll mode bypasses the coalescer"
        );
        assert_eq!(nic.stats().rx_drops, 0);
        // The coalescer holds no half-open batch either.
        assert!(!nic.flush_coalescing(0));
    }

    #[test]
    fn polled_rx_dma_still_evicts_payload() {
        let (mut mem, mut nic) = setup();
        let cpu = CpuId::new(0);
        mem.data_touch(cpu, nic.rx_buffers(0), 0, 2048, false);
        nic.dma_rx_frame_polled(0, &mut mem, 1500);
        let after = mem.data_touch(cpu, nic.rx_buffers(0), 0, 1500, false);
        assert!(after.llc_misses > 0, "polled DMA payload must be uncached");
    }

    #[test]
    fn reset_stats() {
        let (mut mem, mut nic) = setup();
        nic.dma_rx_frame(0, &mut mem, 100, 0);
        nic.reset_stats();
        assert_eq!(nic.stats(), NicStats::default());
    }
}
