//! The client stand-in.
//!
//! The paper's clients are four separate dual-Xeon machines running
//! `ttcp`; they are never the bottleneck. [`Peer`] reproduces their
//! observable behaviour at the SUT's NIC: it acknowledges transmitted
//! segments (delayed ACK, one per two data segments) and sources an
//! endless bulk stream for receive tests, with small deterministic
//! arrival jitter.

use serde::{Deserialize, Serialize};
use sim_core::{ConnectionId, SimRng};

use crate::wire::{Segment, DEFAULT_MSS};

/// Peer behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerConfig {
    /// Data segments per ACK (2 = RFC 1122 delayed ACK).
    pub ack_every: u32,
    /// MSS used for sourced data.
    pub mss: u32,
    /// Mean jitter, in cycles, added between sourced frames.
    pub jitter_cycles: f64,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            ack_every: 2,
            mss: DEFAULT_MSS,
            jitter_cycles: 200.0,
        }
    }
}

/// One remote endpoint (one per connection/NIC).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Peer {
    conn: ConnectionId,
    config: PeerConfig,
    unacked_segments: u32,
    acks_generated: u64,
    bytes_sourced: u64,
    rng: SimRng,
}

impl Peer {
    /// Creates a peer for `conn` with its own RNG stream.
    #[must_use]
    pub fn new(conn: ConnectionId, config: PeerConfig, rng: SimRng) -> Self {
        Peer {
            conn,
            config,
            unacked_segments: 0,
            acks_generated: 0,
            bytes_sourced: 0,
            rng,
        }
    }

    /// The connection this peer terminates.
    #[must_use]
    pub fn connection(&self) -> ConnectionId {
        self.conn
    }

    /// The SUT transmitted a data segment to this peer; returns an ACK
    /// segment if the delayed-ACK counter says one is due.
    pub fn on_data_segment(&mut self) -> Option<Segment> {
        self.unacked_segments += 1;
        if self.unacked_segments >= self.config.ack_every {
            self.unacked_segments = 0;
            self.acks_generated += 1;
            Some(Segment::ack())
        } else {
            None
        }
    }

    /// Flushes the delayed-ACK timer (end of a burst): returns an ACK if
    /// any segments are pending acknowledgment.
    pub fn flush_ack(&mut self) -> Option<Segment> {
        if self.unacked_segments > 0 {
            self.unacked_segments = 0;
            self.acks_generated += 1;
            Some(Segment::ack())
        } else {
            None
        }
    }

    /// Sources the next bulk-data frame for receive tests, together with
    /// the jittered cycle gap before its arrival.
    pub fn source_frame(&mut self) -> (Segment, u64) {
        self.bytes_sourced += u64::from(self.config.mss);
        let gap = self.rng.exponential(self.config.jitter_cycles) as u64;
        (Segment::data(self.config.mss), gap)
    }

    /// Total ACKs generated.
    #[must_use]
    pub fn acks_generated(&self) -> u64 {
        self.acks_generated
    }

    /// Total bytes sourced for RX tests.
    #[must_use]
    pub fn bytes_sourced(&self) -> u64 {
        self.bytes_sourced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer() -> Peer {
        Peer::new(ConnectionId::new(0), PeerConfig::default(), SimRng::new(7))
    }

    #[test]
    fn delayed_ack_every_two() {
        let mut p = peer();
        assert!(p.on_data_segment().is_none());
        let ack = p.on_data_segment().unwrap();
        assert!(ack.is_ack);
        assert!(p.on_data_segment().is_none());
        assert!(p.on_data_segment().is_some());
        assert_eq!(p.acks_generated(), 2);
    }

    #[test]
    fn flush_ack_covers_odd_tail() {
        let mut p = peer();
        p.on_data_segment();
        assert!(p.flush_ack().is_some());
        assert!(p.flush_ack().is_none());
    }

    #[test]
    fn source_frames_are_mss_sized_with_jitter() {
        let mut p = peer();
        let (seg, _gap) = p.source_frame();
        assert_eq!(seg.payload, DEFAULT_MSS);
        assert!(!seg.is_ack);
        let mut total_gap = 0u64;
        for _ in 0..100 {
            let (_, gap) = p.source_frame();
            total_gap += gap;
        }
        assert!(total_gap > 0, "jitter should be non-degenerate");
        assert_eq!(p.bytes_sourced(), 101 * u64::from(DEFAULT_MSS));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Peer::new(ConnectionId::new(1), PeerConfig::default(), SimRng::new(3));
        let mut b = Peer::new(ConnectionId::new(1), PeerConfig::default(), SimRng::new(3));
        for _ in 0..50 {
            assert_eq!(a.source_frame(), b.source_frame());
        }
    }

    #[test]
    fn connection_id_kept() {
        assert_eq!(peer().connection(), ConnectionId::new(0));
    }
}
