//! # sim-net
//!
//! Network-device substrate for the ISPASS 2005 affinity reproduction.
//!
//! The paper's testbed has eight gigabit NIC ports, each serving one
//! long-lived `ttcp` connection; its clients are separate machines that
//! source/sink the traffic. This crate models the pieces of that setup
//! that interact with affinity:
//!
//! * [`Nic`] — a device with per-queue RX/TX descriptor rings and a
//!   pluggable interrupt-moderation policy ([`CoalescePolicy`]). DMA
//!   goes through [`sim_mem::MemorySystem`], so arriving payload is
//!   *uncached* for whichever CPU copies it later (the paper's RX-copy
//!   observation) and transmit DMA forces writebacks. The paper-era
//!   device is a single queue with fixed packet-count coalescing
//!   ([`CoalesceConfig::FixedCount`]); multi-queue MSI-X configurations
//!   give each queue its own vector so steering policies can spread
//!   flows across CPUs within one port;
//! * [`wire`] — MTU segmentation arithmetic shared by the stack model
//!   and the workload generator;
//! * [`SpscRing`] / [`Mempool`] — the kernel-bypass dataplane's lockless
//!   single-producer/single-consumer descriptor rings and packet-buffer
//!   pool, consumed by busy-polling PMD cores instead of the interrupt
//!   path ([`Nic::dma_rx_frame_polled`] DMAs a frame without touching
//!   the coalescer or asserting a vector);
//! * [`Peer`] — a stand-in for the client machines: it acks transmitted
//!   data (delayed-ack style, one ACK per two segments) and sources bulk
//!   data for receive tests, with deterministic jitter.
//!
//! ## Example
//!
//! ```
//! use sim_core::{DeviceId, IrqVector, SimRng};
//! use sim_mem::{MemoryConfig, MemorySystem};
//! use sim_net::{Nic, NicConfig};
//!
//! let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
//! let vectors = [IrqVector::new(0x19)];
//! let mut nic = Nic::new(DeviceId::new(0), &vectors, NicConfig::default(), &mut mem);
//! // Four 1500-byte frames arrive on queue 0; coalescing raises one interrupt.
//! let mut raised = 0;
//! for _ in 0..4 {
//!     if nic.dma_rx_frame(0, &mut mem, 1500, 0) {
//!         raised += 1;
//!     }
//! }
//! assert_eq!(raised, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesce;
mod nic;
mod peer;
pub mod ring;
pub mod wire;

pub use coalesce::{AdaptiveTimeout, CoalesceConfig, CoalescePolicy, Coalescer, FixedCount};
pub use nic::{Nic, NicConfig, NicStats};
pub use peer::{Peer, PeerConfig};
pub use ring::{Mempool, RingStats, SpscRing};
