//! Lockless single-producer/single-consumer descriptor rings and the
//! packet-buffer mempool behind them — the kernel-bypass dataplane's
//! substrate.
//!
//! DPDK-style poll-mode drivers replace the kernel's interrupt-driven
//! descriptor handling with userspace rings: the device (or a peer core)
//! produces descriptors at the tail, a single busy-polling PMD core
//! consumes them at the head, and because there is exactly one producer
//! and one consumer, no atomics beyond two monotone cursors are needed —
//! no spinlock, no cache-line ping-pong on contended lock words. The
//! simulator models the *semantics* (bounded FIFO, full-drop behavior,
//! watermark back-pressure) and leaves the cycle cost of ring probes to
//! the PMD accounting layer.
//!
//! [`SpscRing`] is deliberately a plain sequential structure: the
//! simulator is single-threaded per machine, so the SPSC discipline is a
//! modeling contract (one producer site, one consumer site in the
//! machine's event loop), not a synchronization mechanism.

/// Counters for one ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Descriptors successfully enqueued.
    pub pushes: u64,
    /// Descriptors dequeued.
    pub pops: u64,
    /// Enqueue attempts rejected because the ring was full.
    pub full_rejects: u64,
    /// Enqueues that left occupancy at or above the high watermark.
    pub watermark_hits: u64,
    /// Highest occupancy ever observed.
    pub high_water: usize,
}

/// A bounded single-producer/single-consumer FIFO of descriptors.
///
/// Capacity is rounded up to a power of two (like DPDK's `rte_ring`) so
/// cursor arithmetic is a mask. `push` fails — returning the rejected
/// value — when the ring is full; the high watermark (3/4 of capacity)
/// marks the occupancy at which a real driver would start asserting
/// back-pressure.
#[derive(Debug, Clone)]
pub struct SpscRing<T> {
    slots: Vec<Option<T>>,
    mask: u64,
    head: u64, // consumer cursor: next slot to pop
    tail: u64, // producer cursor: next slot to fill
    watermark: usize,
    stats: RingStats,
}

impl<T> SpscRing<T> {
    /// Creates a ring holding at least `capacity` descriptors (rounded up
    /// to a power of two, minimum 2).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        SpscRing {
            slots,
            mask: (cap - 1) as u64,
            head: 0,
            tail: 0,
            watermark: cap - cap / 4,
            stats: RingStats::default(),
        }
    }

    /// Total descriptor slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Descriptors currently enqueued.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// True when nothing is enqueued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// True when no free slot remains.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Free slots remaining.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Occupancy at which back-pressure should engage (3/4 of capacity).
    #[must_use]
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// True while occupancy is at or above the watermark.
    #[must_use]
    pub fn above_watermark(&self) -> bool {
        self.len() >= self.watermark
    }

    /// Enqueues a descriptor at the tail. Returns the value back when the
    /// ring is full (the caller decides whether that is a drop or a
    /// retry).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.is_full() {
            self.stats.full_rejects += 1;
            return Err(value);
        }
        let slot = (self.tail & self.mask) as usize;
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(value);
        self.tail += 1;
        self.stats.pushes += 1;
        let len = self.len();
        if len >= self.watermark {
            self.stats.watermark_hits += 1;
        }
        if len > self.stats.high_water {
            self.stats.high_water = len;
        }
        Ok(())
    }

    /// Dequeues the head descriptor.
    pub fn pop(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let slot = (self.head & self.mask) as usize;
        let value = self.slots[slot].take();
        debug_assert!(value.is_some());
        self.head += 1;
        self.stats.pops += 1;
        value
    }

    /// The head descriptor, without consuming it.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        if self.is_empty() {
            return None;
        }
        self.slots[(self.head & self.mask) as usize].as_ref()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> RingStats {
        self.stats
    }
}

/// A fixed pool of packet buffers (DPDK `rte_mempool`): descriptors in
/// flight each pin one buffer; `try_alloc` fails when the pool is
/// exhausted, which in a real dataplane surfaces as rx drops at the
/// device.
#[derive(Debug, Clone)]
pub struct Mempool {
    capacity: usize,
    available: usize,
    allocs: u64,
    frees: u64,
    alloc_failures: u64,
}

impl Mempool {
    /// Creates a pool of `capacity` buffers, all free.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Mempool {
            capacity,
            available: capacity,
            allocs: 0,
            frees: 0,
            alloc_failures: 0,
        }
    }

    /// Total buffers in the pool.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffers currently free.
    #[must_use]
    pub fn available(&self) -> usize {
        self.available
    }

    /// Buffers currently pinned by in-flight descriptors.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.capacity - self.available
    }

    /// Takes one buffer; `false` (counted) when the pool is exhausted.
    pub fn try_alloc(&mut self) -> bool {
        if self.available == 0 {
            self.alloc_failures += 1;
            return false;
        }
        self.available -= 1;
        self.allocs += 1;
        true
    }

    /// Returns one buffer to the pool.
    ///
    /// # Panics
    /// Panics on a double free (more frees than outstanding allocs).
    pub fn free(&mut self) {
        assert!(
            self.available < self.capacity,
            "mempool double free: all {} buffers already available",
            self.capacity
        );
        self.available += 1;
        self.frees += 1;
    }

    /// Failed allocation attempts (pool exhausted).
    #[must_use]
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_len() {
        let mut ring = SpscRing::with_capacity(8);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.peek(), Some(&0));
        for i in 0..5 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert!(ring.pop().is_none());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(SpscRing::<u32>::with_capacity(5).capacity(), 8);
        assert_eq!(SpscRing::<u32>::with_capacity(8).capacity(), 8);
        assert_eq!(SpscRing::<u32>::with_capacity(0).capacity(), 2);
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let mut ring = SpscRing::with_capacity(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        assert!(ring.is_full());
        assert_eq!(ring.push(99), Err(99));
        assert_eq!(ring.stats().full_rejects, 1);
        assert_eq!(ring.pop(), Some(0));
        ring.push(4).unwrap();
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn watermark_engages_at_three_quarters() {
        let mut ring = SpscRing::with_capacity(8);
        assert_eq!(ring.watermark(), 6);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        assert!(!ring.above_watermark());
        ring.push(5).unwrap();
        assert!(ring.above_watermark());
        assert_eq!(ring.stats().watermark_hits, 1);
        assert_eq!(ring.stats().high_water, 6);
    }

    #[test]
    fn cursors_wrap_without_loss() {
        let mut ring = SpscRing::with_capacity(4);
        for round in 0u64..100 {
            ring.push(round).unwrap();
            assert_eq!(ring.pop(), Some(round));
        }
        assert_eq!(ring.stats().pushes, 100);
        assert_eq!(ring.stats().pops, 100);
    }

    #[test]
    fn mempool_exhaustion_and_refill() {
        let mut pool = Mempool::new(2);
        assert!(pool.try_alloc());
        assert!(pool.try_alloc());
        assert!(!pool.try_alloc());
        assert_eq!(pool.alloc_failures(), 1);
        assert_eq!(pool.in_use(), 2);
        pool.free();
        assert!(pool.try_alloc());
        assert_eq!(pool.available(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn mempool_double_free_panics() {
        let mut pool = Mempool::new(1);
        pool.free();
    }
}
