//! Interrupt-moderation (coalescing) policies.
//!
//! The paper-era e1000 moderates interrupts by *packet count*: raise one
//! interrupt per N events, with a hardware timer flushing partial
//! batches at the end of a burst. [`CoalescePolicy`] lifts that decision
//! into a per-queue policy object so the machine model can swap
//! moderation schemes without touching the DMA path: [`FixedCount`] is
//! the paper's scheme, [`AdaptiveTimeout`] is an `ethtool -C
//! adaptive-rx`-style variant that watches inter-arrival gaps and
//! batches aggressively only under load.
//!
//! Policies are deterministic state machines over event timestamps —
//! no wall clocks, no randomness — so simulation results stay
//! bit-reproducible at any worker count.

use serde::{Deserialize, Serialize};

/// Per-queue interrupt-moderation policy.
///
/// The device calls [`CoalescePolicy::on_event`] for every coalescable
/// event (an RX frame DMA'd or a TX completion written back) and raises
/// the queue's MSI-X vector when it returns `true`. The machine's
/// moderation timer calls [`CoalescePolicy::flush`] at the end of a
/// burst to drain partial batches.
pub trait CoalescePolicy: std::fmt::Debug {
    /// An event occurred at cycle `now`; returns `true` when an
    /// interrupt should be asserted for the accumulated batch.
    fn on_event(&mut self, now: u64) -> bool;

    /// The moderation timer fired: returns `true` when a partial batch
    /// was pending (and should raise an interrupt now).
    fn flush(&mut self) -> bool;

    /// Whether any events are pending (batched but not yet signalled).
    fn pending(&self) -> bool;

    /// Policy-specific moderation-timer period, or `None` to use the
    /// machine-level default (`Tunables::coalesce_flush_cycles`).
    fn timeout_cycles(&self) -> Option<u64> {
        None
    }
}

/// Serializable description of a coalescing policy (the configuration
/// counterpart of the [`CoalescePolicy`] state machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoalesceConfig {
    /// Raise one interrupt per `events` coalescable events — the
    /// packet-count moderation of the paper-era e1000 driver.
    FixedCount {
        /// Events per interrupt.
        events: u32,
    },
    /// Adaptive moderation: batch up to `max_events` while traffic is
    /// dense (inter-event gap below `idle_gap_cycles`), drop to
    /// `min_events` when traffic is sparse so a lone packet is not
    /// delayed, and flush partial batches after `timeout_cycles`.
    AdaptiveTimeout {
        /// Batch threshold when the queue looks latency-sensitive.
        min_events: u32,
        /// Batch threshold under sustained load.
        max_events: u32,
        /// Gap (cycles) above which traffic counts as sparse.
        idle_gap_cycles: u64,
        /// Moderation-timer period for partial batches.
        timeout_cycles: u64,
    },
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig::FixedCount { events: 4 }
    }
}

impl CoalesceConfig {
    /// Builds the runtime state machine for this configuration.
    #[must_use]
    pub fn build(self) -> Coalescer {
        match self {
            CoalesceConfig::FixedCount { events } => Coalescer::Fixed(FixedCount {
                events: events.max(1),
                pending: 0,
            }),
            CoalesceConfig::AdaptiveTimeout {
                min_events,
                max_events,
                idle_gap_cycles,
                timeout_cycles,
            } => Coalescer::Adaptive(AdaptiveTimeout {
                min_events: min_events.max(1),
                max_events: max_events.max(1),
                idle_gap_cycles,
                timeout_cycles,
                pending: 0,
                last_event: None,
            }),
        }
    }
}

/// Fixed packet-count moderation (the paper's e1000 scheme).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedCount {
    events: u32,
    pending: u32,
}

impl CoalescePolicy for FixedCount {
    fn on_event(&mut self, _now: u64) -> bool {
        self.pending += 1;
        if self.pending >= self.events {
            self.pending = 0;
            true
        } else {
            false
        }
    }

    fn flush(&mut self) -> bool {
        if self.pending > 0 {
            self.pending = 0;
            true
        } else {
            false
        }
    }

    fn pending(&self) -> bool {
        self.pending > 0
    }
}

/// Gap-watching adaptive moderation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveTimeout {
    min_events: u32,
    max_events: u32,
    idle_gap_cycles: u64,
    timeout_cycles: u64,
    pending: u32,
    last_event: Option<u64>,
}

impl CoalescePolicy for AdaptiveTimeout {
    fn on_event(&mut self, now: u64) -> bool {
        let sparse = match self.last_event {
            Some(last) => now.saturating_sub(last) > self.idle_gap_cycles,
            None => true,
        };
        self.last_event = Some(now);
        self.pending += 1;
        let threshold = if sparse {
            self.min_events
        } else {
            self.max_events
        };
        if self.pending >= threshold {
            self.pending = 0;
            true
        } else {
            false
        }
    }

    fn flush(&mut self) -> bool {
        if self.pending > 0 {
            self.pending = 0;
            true
        } else {
            false
        }
    }

    fn pending(&self) -> bool {
        self.pending > 0
    }

    fn timeout_cycles(&self) -> Option<u64> {
        Some(self.timeout_cycles)
    }
}

/// A concrete, cloneable coalescer (enum dispatch over the policy
/// implementations, so [`crate::Nic`] stays `Clone` and serializable).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Coalescer {
    /// Fixed packet-count moderation.
    Fixed(FixedCount),
    /// Adaptive gap-watching moderation.
    Adaptive(AdaptiveTimeout),
}

impl Coalescer {
    fn inner_mut(&mut self) -> &mut dyn CoalescePolicy {
        match self {
            Coalescer::Fixed(p) => p,
            Coalescer::Adaptive(p) => p,
        }
    }

    fn inner(&self) -> &dyn CoalescePolicy {
        match self {
            Coalescer::Fixed(p) => p,
            Coalescer::Adaptive(p) => p,
        }
    }
}

impl CoalescePolicy for Coalescer {
    fn on_event(&mut self, now: u64) -> bool {
        self.inner_mut().on_event(now)
    }

    fn flush(&mut self) -> bool {
        self.inner_mut().flush()
    }

    fn pending(&self) -> bool {
        self.inner().pending()
    }

    fn timeout_cycles(&self) -> Option<u64> {
        self.inner().timeout_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_count_matches_the_paper_scheme() {
        let mut c = CoalesceConfig::FixedCount { events: 4 }.build();
        let mut raised = 0;
        for i in 0..16 {
            if c.on_event(i * 100) {
                raised += 1;
            }
        }
        assert_eq!(raised, 4);
        assert!(!c.pending());
        assert!(!c.flush());
        assert_eq!(c.timeout_cycles(), None);
    }

    #[test]
    fn fixed_count_flush_drains_partial_batch() {
        let mut c = CoalesceConfig::FixedCount { events: 4 }.build();
        assert!(!c.on_event(0));
        assert!(c.pending());
        assert!(c.flush());
        assert!(!c.pending());
    }

    #[test]
    fn adaptive_batches_under_load_and_not_when_sparse() {
        let cfg = CoalesceConfig::AdaptiveTimeout {
            min_events: 1,
            max_events: 8,
            idle_gap_cycles: 1_000,
            timeout_cycles: 5_000,
        };
        let mut c = cfg.build();
        // First event after idle: latency-sensitive, fires immediately.
        assert!(c.on_event(0));
        // Dense burst: batches of eight.
        let mut raised = 0;
        for i in 0..16 {
            if c.on_event(100 + i * 10) {
                raised += 1;
            }
        }
        assert_eq!(raised, 2);
        // After a long gap the next event fires immediately again.
        assert!(c.on_event(1_000_000));
        assert_eq!(c.timeout_cycles(), Some(5_000));
    }

    #[test]
    fn adaptive_is_deterministic() {
        let cfg = CoalesceConfig::AdaptiveTimeout {
            min_events: 2,
            max_events: 6,
            idle_gap_cycles: 500,
            timeout_cycles: 3_000,
        };
        let stamps: Vec<u64> = (0..40).map(|i| i * 137 % 2_000).collect();
        let run =
            |mut c: Coalescer| -> Vec<bool> { stamps.iter().map(|&t| c.on_event(t)).collect() };
        assert_eq!(run(cfg.build()), run(cfg.build()));
    }
}
