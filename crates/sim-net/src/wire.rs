//! MTU segmentation arithmetic.
//!
//! `ttcp` writes application messages of 128 B … 64 KB; on the wire they
//! travel as MSS-sized TCP segments (1448 B of payload with standard
//! 1500-byte Ethernet MTU and timestamps). The segment count per message
//! drives how many descriptors, skbs and — through coalescing — how many
//! interrupts each message costs, which is why affinity matters more for
//! 64 KB transfers (44 segments) than for 128 B ones (1 segment).

use serde::{Deserialize, Serialize};

/// Standard Ethernet MTU.
pub const ETHERNET_MTU: u32 = 1500;

/// TCP maximum segment size with timestamps over Ethernet:
/// 1500 − 20 (IP) − 20 (TCP) − 12 (timestamp option).
pub const DEFAULT_MSS: u32 = 1448;

/// A TCP segment as seen by the driver/NIC boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// Payload bytes carried (≤ MSS; 0 for a pure ACK).
    pub payload: u32,
    /// Whether this is a pure acknowledgment.
    pub is_ack: bool,
}

impl Segment {
    /// A data segment carrying `payload` bytes.
    #[must_use]
    pub fn data(payload: u32) -> Self {
        Segment {
            payload,
            is_ack: false,
        }
    }

    /// A pure ACK.
    #[must_use]
    pub fn ack() -> Self {
        Segment {
            payload: 0,
            is_ack: true,
        }
    }

    /// Bytes occupied on the wire (headers + payload).
    #[must_use]
    pub fn wire_bytes(self) -> u32 {
        // 14 (Ethernet) + 20 (IP) + 20 (TCP) + 12 (options).
        self.payload + 66
    }
}

/// Number of MSS-sized segments needed for a `message_bytes` message.
///
/// # Panics
///
/// Panics if `mss` is zero.
#[must_use]
pub fn segment_count(message_bytes: u64, mss: u32) -> u64 {
    assert!(mss > 0, "mss must be positive");
    if message_bytes == 0 {
        return 0;
    }
    message_bytes.div_ceil(u64::from(mss))
}

/// Splits a message into segment payload sizes (all `mss` except a
/// possibly-short tail).
#[must_use]
pub fn segments_for(message_bytes: u64, mss: u32) -> Vec<u32> {
    let count = segment_count(message_bytes, mss);
    let mut out = Vec::with_capacity(count as usize);
    let mut remaining = message_bytes;
    for _ in 0..count {
        let take = remaining.min(u64::from(mss)) as u32;
        out.push(take);
        remaining -= u64::from(take);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_message_sizes() {
        // The paper's Figure 3 x-axis.
        assert_eq!(segment_count(128, DEFAULT_MSS), 1);
        assert_eq!(segment_count(256, DEFAULT_MSS), 1);
        assert_eq!(segment_count(1024, DEFAULT_MSS), 1);
        assert_eq!(segment_count(4096, DEFAULT_MSS), 3);
        assert_eq!(segment_count(8192, DEFAULT_MSS), 6);
        assert_eq!(segment_count(16384, DEFAULT_MSS), 12);
        assert_eq!(segment_count(65536, DEFAULT_MSS), 46);
    }

    #[test]
    fn zero_message_has_no_segments() {
        assert_eq!(segment_count(0, DEFAULT_MSS), 0);
        assert!(segments_for(0, DEFAULT_MSS).is_empty());
    }

    #[test]
    fn segments_sum_to_message() {
        for bytes in [1u64, 128, 1448, 1449, 65536, 100_000] {
            let segs = segments_for(bytes, DEFAULT_MSS);
            assert_eq!(segs.iter().map(|&s| u64::from(s)).sum::<u64>(), bytes);
            for (i, &s) in segs.iter().enumerate() {
                if i + 1 < segs.len() {
                    assert_eq!(s, DEFAULT_MSS);
                } else {
                    assert!(s > 0 && s <= DEFAULT_MSS);
                }
            }
        }
    }

    #[test]
    fn segment_wire_bytes() {
        assert_eq!(Segment::ack().wire_bytes(), 66);
        assert_eq!(Segment::data(1448).wire_bytes(), 1514);
        assert!(Segment::ack().is_ack);
        assert!(!Segment::data(10).is_ack);
    }

    #[test]
    #[should_panic(expected = "mss must be positive")]
    fn zero_mss_rejected() {
        let _ = segment_count(100, 0);
    }
}
