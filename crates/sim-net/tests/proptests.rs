//! Property-based tests for wire segmentation and NIC accounting.

use proptest::prelude::*;
use sim_core::{ConnectionId, DeviceId, IrqVector, SimRng};
use sim_mem::{MemoryConfig, MemorySystem};
use sim_net::wire::{segment_count, segments_for};
use sim_net::{CoalesceConfig, Nic, NicConfig, Peer, PeerConfig};

proptest! {
    /// Segmentation conserves bytes and respects the MSS for any
    /// message/MSS combination.
    #[test]
    fn segmentation_conserves_bytes(bytes in 0u64..1_000_000, mss in 1u32..9000) {
        let segs = segments_for(bytes, mss);
        prop_assert_eq!(segs.len() as u64, segment_count(bytes, mss));
        prop_assert_eq!(segs.iter().map(|&s| u64::from(s)).sum::<u64>(), bytes);
        for (i, &s) in segs.iter().enumerate() {
            prop_assert!(s > 0);
            prop_assert!(s <= mss);
            if i + 1 < segs.len() {
                prop_assert_eq!(s, mss, "only the tail may be short");
            }
        }
    }

    /// Coalescing: interrupts raised = floor(events / coalesce) plus at
    /// most one more from a final flush; never more than events.
    #[test]
    fn coalescing_interrupt_count(frames in 1u32..200, coalesce in 1u32..16) {
        let mut mem = MemorySystem::new(MemoryConfig::tiny(1));
        let config = NicConfig {
            coalesce: CoalesceConfig::FixedCount { events: coalesce },
            ..NicConfig::default()
        };
        let mut nic = Nic::new(DeviceId::new(0), &[IrqVector::new(0x19)], config, &mut mem);
        let mut raised = 0u32;
        for _ in 0..frames {
            if nic.dma_rx_frame(0, &mut mem, 64, 0) {
                raised += 1;
            }
            // Keep the ring from overflowing.
            nic.reclaim_rx(0, 1);
        }
        prop_assert_eq!(raised, frames / coalesce);
        if nic.flush_coalescing(0) {
            raised += 1;
        }
        prop_assert_eq!(u64::from(raised), nic.stats().interrupts);
        prop_assert!(raised >= frames / coalesce);
        prop_assert!(raised <= frames);
    }

    /// Ring occupancy never exceeds capacity, and drops are counted
    /// exactly for the overflow.
    #[test]
    fn ring_occupancy_bounded(frames in 0u32..600) {
        let mut mem = MemorySystem::new(MemoryConfig::tiny(1));
        let mut nic = Nic::new(
            DeviceId::new(0),
            &[IrqVector::new(0x19)],
            NicConfig::default(),
            &mut mem,
        );
        for _ in 0..frames {
            nic.dma_rx_frame(0, &mut mem, 64, 0);
            prop_assert!(nic.rx_outstanding(0) <= nic.config().ring_entries);
        }
        let expected_drops = frames.saturating_sub(nic.config().ring_entries);
        prop_assert_eq!(nic.stats().rx_drops, u64::from(expected_drops));
        prop_assert_eq!(
            nic.stats().rx_frames,
            u64::from(frames - expected_drops)
        );
    }

    /// Delayed ACK: over any number of segments, ACKs generated (plus a
    /// final flush) account for every segment at the configured ratio.
    #[test]
    fn peer_ack_accounting(segments in 0u32..500, ack_every in 1u32..8, seed: u64) {
        let config = PeerConfig {
            ack_every,
            ..PeerConfig::default()
        };
        let mut peer = Peer::new(ConnectionId::new(0), config, SimRng::new(seed));
        let mut acks = 0u64;
        for _ in 0..segments {
            if peer.on_data_segment().is_some() {
                acks += 1;
            }
        }
        prop_assert_eq!(acks, u64::from(segments / ack_every));
        let flushed = peer.flush_ack().is_some();
        prop_assert_eq!(flushed, segments % ack_every != 0);
    }
}
