//! Property-based tests for wire segmentation, NIC accounting, and the
//! poll-mode dataplane's SPSC ring/mempool substrate.

use proptest::prelude::*;
use sim_core::{ConnectionId, DeviceId, IrqVector, SimRng};
use sim_mem::{MemoryConfig, MemorySystem};
use sim_net::wire::{segment_count, segments_for};
use sim_net::{
    CoalesceConfig, CoalescePolicy, Mempool, Nic, NicConfig, Peer, PeerConfig, SpscRing,
};
use std::collections::VecDeque;

proptest! {
    /// Segmentation conserves bytes and respects the MSS for any
    /// message/MSS combination.
    #[test]
    fn segmentation_conserves_bytes(bytes in 0u64..1_000_000, mss in 1u32..9000) {
        let segs = segments_for(bytes, mss);
        prop_assert_eq!(segs.len() as u64, segment_count(bytes, mss));
        prop_assert_eq!(segs.iter().map(|&s| u64::from(s)).sum::<u64>(), bytes);
        for (i, &s) in segs.iter().enumerate() {
            prop_assert!(s > 0);
            prop_assert!(s <= mss);
            if i + 1 < segs.len() {
                prop_assert_eq!(s, mss, "only the tail may be short");
            }
        }
    }

    /// Coalescing: interrupts raised = floor(events / coalesce) plus at
    /// most one more from a final flush; never more than events.
    #[test]
    fn coalescing_interrupt_count(frames in 1u32..200, coalesce in 1u32..16) {
        let mut mem = MemorySystem::new(MemoryConfig::tiny(1));
        let config = NicConfig {
            coalesce: CoalesceConfig::FixedCount { events: coalesce },
            ..NicConfig::default()
        };
        let mut nic = Nic::new(DeviceId::new(0), &[IrqVector::new(0x19)], config, &mut mem);
        let mut raised = 0u32;
        for _ in 0..frames {
            if nic.dma_rx_frame(0, &mut mem, 64, 0) {
                raised += 1;
            }
            // Keep the ring from overflowing.
            nic.reclaim_rx(0, 1);
        }
        prop_assert_eq!(raised, frames / coalesce);
        if nic.flush_coalescing(0) {
            raised += 1;
        }
        prop_assert_eq!(u64::from(raised), nic.stats().interrupts);
        prop_assert!(raised >= frames / coalesce);
        prop_assert!(raised <= frames);
    }

    /// Ring occupancy never exceeds capacity, and drops are counted
    /// exactly for the overflow.
    #[test]
    fn ring_occupancy_bounded(frames in 0u32..600) {
        let mut mem = MemorySystem::new(MemoryConfig::tiny(1));
        let mut nic = Nic::new(
            DeviceId::new(0),
            &[IrqVector::new(0x19)],
            NicConfig::default(),
            &mut mem,
        );
        for _ in 0..frames {
            nic.dma_rx_frame(0, &mut mem, 64, 0);
            prop_assert!(nic.rx_outstanding(0) <= nic.config().ring_entries);
        }
        let expected_drops = frames.saturating_sub(nic.config().ring_entries);
        prop_assert_eq!(nic.stats().rx_drops, u64::from(expected_drops));
        prop_assert_eq!(
            nic.stats().rx_frames,
            u64::from(frames - expected_drops)
        );
    }

    /// Delayed ACK: over any number of segments, ACKs generated (plus a
    /// final flush) account for every segment at the configured ratio.
    #[test]
    fn peer_ack_accounting(segments in 0u32..500, ack_every in 1u32..8, seed: u64) {
        let config = PeerConfig {
            ack_every,
            ..PeerConfig::default()
        };
        let mut peer = Peer::new(ConnectionId::new(0), config, SimRng::new(seed));
        let mut acks = 0u64;
        for _ in 0..segments {
            if peer.on_data_segment().is_some() {
                acks += 1;
            }
        }
        prop_assert_eq!(acks, u64::from(segments / ack_every));
        let flushed = peer.flush_ack().is_some();
        prop_assert_eq!(flushed, segments % ack_every != 0);
    }

    /// The SPSC ring against a VecDeque model: any interleaving of
    /// pushes and pops loses nothing, duplicates nothing, preserves FIFO
    /// order, and rejects a push exactly when the ring is full. The
    /// stats stay consistent with the model throughout: occupancy
    /// equals pushes minus pops, the high watermark tracks the peak,
    /// and draining at the end returns every surviving value in order.
    #[test]
    fn spsc_ring_matches_fifo_model(capacity in 1usize..70, ops in 0u32..600, seed: u64) {
        let mut ring: SpscRing<u32> = SpscRing::with_capacity(capacity);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut rng = SimRng::new(seed);
        let mut next_value = 0u32;
        let mut peak = 0usize;
        for _ in 0..ops {
            if rng.chance(0.55) {
                let full_before = model.len() == ring.capacity();
                let rejects_before = ring.stats().full_rejects;
                match ring.push(next_value) {
                    Ok(()) => {
                        prop_assert!(!full_before, "push succeeded on a full ring");
                        model.push_back(next_value);
                    }
                    Err(v) => {
                        prop_assert!(full_before, "push rejected on a non-full ring");
                        prop_assert_eq!(v, next_value, "rejected value came back changed");
                        prop_assert_eq!(ring.stats().full_rejects, rejects_before + 1);
                    }
                }
                next_value += 1;
            } else {
                prop_assert_eq!(ring.peek().copied(), model.front().copied());
                prop_assert_eq!(ring.pop(), model.pop_front());
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.is_empty(), model.is_empty());
            prop_assert_eq!(ring.free(), ring.capacity() - model.len());
            prop_assert_eq!(ring.above_watermark(), model.len() >= ring.watermark());
            peak = peak.max(model.len());
        }
        let stats = ring.stats();
        prop_assert_eq!(stats.pushes - stats.pops, model.len() as u64);
        prop_assert_eq!(stats.high_water, peak);
        // Drain: everything pushed but not yet popped comes out FIFO.
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(ring.pop(), Some(want));
        }
        prop_assert!(ring.is_empty());
        prop_assert_eq!(ring.pop(), None);
    }

    /// Watermark behavior: hits are counted exactly for the pushes that
    /// leave occupancy at or above the 3/4 watermark, and the watermark
    /// itself always sits strictly between half and full capacity.
    #[test]
    fn spsc_ring_watermark_counts_every_engaging_push(capacity in 1usize..200, fill in 0usize..256) {
        let mut ring: SpscRing<usize> = SpscRing::with_capacity(capacity);
        let cap = ring.capacity();
        prop_assert!(ring.watermark() > cap / 2);
        prop_assert!(ring.watermark() <= cap);
        let mut expected_hits = 0u64;
        for i in 0..fill.min(cap) {
            ring.push(i).unwrap();
            if i + 1 >= ring.watermark() {
                expected_hits += 1;
            }
        }
        prop_assert_eq!(ring.stats().watermark_hits, expected_hits);
        prop_assert_eq!(ring.above_watermark(), fill.min(cap) >= ring.watermark());
    }

    /// The mempool conserves buffers under any alloc/free interleaving:
    /// in-use plus available always equals capacity, allocation fails
    /// exactly when nothing is available, and the counters never drift
    /// from the model.
    #[test]
    fn mempool_conserves_buffers(capacity in 0usize..40, ops in 0u32..400, seed: u64) {
        let mut pool = Mempool::new(capacity);
        let mut in_use = 0usize;
        let mut failures = 0u64;
        let mut rng = SimRng::new(seed);
        for _ in 0..ops {
            if rng.chance(0.6) {
                let ok = pool.try_alloc();
                prop_assert_eq!(ok, in_use < capacity, "alloc outcome disagrees with model");
                if ok {
                    in_use += 1;
                } else {
                    failures += 1;
                }
            } else if in_use > 0 {
                pool.free();
                in_use -= 1;
            }
            prop_assert_eq!(pool.in_use(), in_use);
            prop_assert_eq!(pool.available(), capacity - in_use);
            prop_assert_eq!(pool.alloc_failures(), failures);
        }
    }

    /// Adaptive moderation bounds: over any event-timestamp sequence,
    /// every batch closes within `max_events`, so total interrupts
    /// (including the final flush) land in
    /// `[ceil(n / max_events), n]` — the coalescer can neither starve a
    /// batch forever nor fire more than once per event.
    #[test]
    fn adaptive_timeout_batches_within_bounds(
        events in 1u32..300,
        min_events in 1u32..8,
        extra in 0u32..8,
        idle_gap in 1u64..5_000,
        seed: u64,
    ) {
        let max_events = min_events + extra;
        let mut c = CoalesceConfig::AdaptiveTimeout {
            min_events,
            max_events,
            idle_gap_cycles: idle_gap,
            timeout_cycles: 10_000,
        }
        .build();
        let mut rng = SimRng::new(seed);
        let mut now = 0u64;
        let mut fired = 0u32;
        let mut batch = 0u32;
        for _ in 0..events {
            // Mix dense and sparse inter-arrival gaps around the knee.
            now += rng.range(0, 2 * idle_gap + 2);
            batch += 1;
            if c.on_event(now) {
                prop_assert!(batch <= max_events, "a batch exceeded max_events");
                fired += 1;
                batch = 0;
            }
            prop_assert_eq!(c.pending(), batch > 0);
        }
        if c.flush() {
            prop_assert!(batch > 0, "flush fired with nothing pending");
            fired += 1;
        }
        prop_assert!(!c.pending());
        prop_assert!(fired >= events.div_ceil(max_events));
        prop_assert!(fired <= events);
    }

    /// With every gap wider than the idle knee the coalescer is in its
    /// latency-sensitive regime: batches close at exactly `min_events`.
    #[test]
    fn adaptive_timeout_sparse_traffic_uses_min_batches(events in 1u32..200, min_events in 1u32..6) {
        let mut c = CoalesceConfig::AdaptiveTimeout {
            min_events,
            max_events: 64,
            idle_gap_cycles: 100,
            timeout_cycles: 10_000,
        }
        .build();
        let mut fired = 0u32;
        for i in 0..u64::from(events) {
            if c.on_event(i * 1_000) {
                fired += 1;
            }
        }
        prop_assert_eq!(fired, events / min_events);
    }
}
