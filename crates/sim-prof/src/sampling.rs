//! Statistical event sampling — Oprofile's actual measurement process.
//!
//! The exact `(cpu × function)` matrix in [`crate::Profiler`] is ground
//! truth the real tool never sees: Oprofile takes one sample every *N*
//! occurrences of an event, and the sample lands a few instructions past
//! the triggering one ("skid"), sometimes in the *next* function. This
//! module simulates that process on top of the exact counts, so the
//! reproduction can also quantify how far the measurement layer itself
//! distorts the paper's tables (the paper discusses exactly this caveat
//! for machine clears caused by interrupts).

use serde::{Deserialize, Serialize};
use sim_core::{CpuId, SimRng};
use sim_cpu::HwEvent;

use crate::profiler::Profiler;
use crate::registry::{FuncId, FunctionRegistry};

/// Configuration of the simulated sampling process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Events per sample (Oprofile's `--count`).
    pub interval: u64,
    /// Probability that a sample skids out of the function that incurred
    /// the event into the *following* one (by registration order on the
    /// same CPU — a stand-in for "whatever ran next").
    pub skid_probability: f64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            interval: 1000,
            skid_probability: 0.05,
        }
    }
}

/// One function's sampled profile on one CPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampledRow {
    /// The function.
    pub func: FuncId,
    /// Samples attributed to it.
    pub samples: u64,
}

/// Draws a sampled per-function profile for `event` on `cpu` from the
/// exact counts in `profiler`, simulating interval sampling with skid.
///
/// The expected number of samples for a function equals
/// `count / interval`; the remainder is resolved by a Bernoulli draw so
/// totals are unbiased, and each sample then skids with the configured
/// probability. Deterministic given `rng`.
#[must_use]
pub fn sample_profile(
    profiler: &Profiler,
    registry: &FunctionRegistry,
    cpu: CpuId,
    event: HwEvent,
    config: SamplingConfig,
    rng: &mut SimRng,
) -> Vec<SampledRow> {
    assert!(config.interval > 0, "sampling interval must be positive");
    let n = registry.len();
    let mut samples = vec![0u64; n];
    for (func, counters) in profiler.nonzero_on(cpu) {
        let count = counters.get(event);
        if count == 0 {
            continue;
        }
        let whole = count / config.interval;
        let fraction = (count % config.interval) as f64 / config.interval as f64;
        let drawn = whole + u64::from(rng.chance(fraction));
        for _ in 0..drawn {
            let skid = rng.chance(config.skid_probability);
            let idx = if skid {
                (func.index() + 1) % n.max(1)
            } else {
                func.index()
            };
            if idx < n {
                samples[idx] += 1;
            }
        }
    }
    registry
        .iter()
        .filter(|(id, _)| samples[id.index()] > 0)
        .map(|(id, _)| SampledRow {
            func: id,
            samples: samples[id.index()],
        })
        .collect()
}

/// Total-variation distance between the sampled distribution and the
/// exact count distribution for `event` on `cpu` — a measure of how much
/// the measurement layer distorts attribution (0 = perfect).
#[must_use]
pub fn sampling_distortion(
    profiler: &Profiler,
    registry: &FunctionRegistry,
    cpu: CpuId,
    event: HwEvent,
    rows: &[SampledRow],
) -> f64 {
    let exact_total = profiler.cpu_total(cpu).get(event);
    let sample_total: u64 = rows.iter().map(|r| r.samples).sum();
    if exact_total == 0 || sample_total == 0 {
        return 0.0;
    }
    let mut tv = 0.0;
    for (id, _) in registry.iter() {
        let exact = profiler.counters(cpu, id).get(event) as f64 / exact_total as f64;
        let sampled = rows
            .iter()
            .find(|r| r.func == id)
            .map_or(0.0, |r| r.samples as f64 / sample_total as f64);
        tv += (exact - sampled).abs();
    }
    tv / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::PerfCounters;

    fn setup() -> (FunctionRegistry, Profiler) {
        let mut reg = FunctionRegistry::new();
        let a = reg.register("hot", "Engine");
        let b = reg.register("warm", "Copies");
        let _c = reg.register("cold", "Timers");
        let mut prof = Profiler::new(1);
        let mut d = PerfCounters::default();
        d.bump(HwEvent::Cycles, 100_000);
        prof.record(CpuId::new(0), a, &d);
        let mut d = PerfCounters::default();
        d.bump(HwEvent::Cycles, 10_000);
        prof.record(CpuId::new(0), b, &d);
        (reg, prof)
    }

    #[test]
    fn expected_sample_counts() {
        let (reg, prof) = setup();
        let mut rng = SimRng::new(5);
        let rows = sample_profile(
            &prof,
            &reg,
            CpuId::new(0),
            HwEvent::Cycles,
            SamplingConfig {
                interval: 1000,
                skid_probability: 0.0,
            },
            &mut rng,
        );
        let hot = rows.iter().find(|r| reg.name(r.func) == "hot").unwrap();
        assert_eq!(hot.samples, 100);
        let warm = rows.iter().find(|r| reg.name(r.func) == "warm").unwrap();
        assert_eq!(warm.samples, 10);
        assert!(rows.iter().all(|r| reg.name(r.func) != "cold"));
    }

    #[test]
    fn skid_moves_some_samples() {
        let (reg, prof) = setup();
        let mut rng = SimRng::new(5);
        let rows = sample_profile(
            &prof,
            &reg,
            CpuId::new(0),
            HwEvent::Cycles,
            SamplingConfig {
                interval: 100,
                skid_probability: 0.5,
            },
            &mut rng,
        );
        // "warm" follows "hot" in registration order: it should receive
        // skidded samples well beyond its own 100.
        let warm = rows.iter().find(|r| reg.name(r.func) == "warm").unwrap();
        assert!(warm.samples > 200, "warm got {}", warm.samples);
    }

    #[test]
    fn distortion_zero_without_skid_and_high_interval_noise() {
        let (reg, prof) = setup();
        let mut rng = SimRng::new(7);
        let precise = sample_profile(
            &prof,
            &reg,
            CpuId::new(0),
            HwEvent::Cycles,
            SamplingConfig {
                interval: 10,
                skid_probability: 0.0,
            },
            &mut rng,
        );
        let d0 = sampling_distortion(&prof, &reg, CpuId::new(0), HwEvent::Cycles, &precise);
        assert!(d0 < 0.01, "precise sampling distortion {d0}");

        let skiddy = sample_profile(
            &prof,
            &reg,
            CpuId::new(0),
            HwEvent::Cycles,
            SamplingConfig {
                interval: 10,
                skid_probability: 0.5,
            },
            &mut rng,
        );
        let d1 = sampling_distortion(&prof, &reg, CpuId::new(0), HwEvent::Cycles, &skiddy);
        assert!(d1 > d0, "skid must distort: {d1} vs {d0}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (reg, prof) = setup();
        let config = SamplingConfig::default();
        let mut r1 = SimRng::new(11);
        let mut r2 = SimRng::new(11);
        let a = sample_profile(&prof, &reg, CpuId::new(0), HwEvent::Cycles, config, &mut r1);
        let b = sample_profile(&prof, &reg, CpuId::new(0), HwEvent::Cycles, config, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_profile_yields_no_samples() {
        let reg = FunctionRegistry::new();
        let prof = Profiler::new(1);
        let mut rng = SimRng::new(1);
        let rows = sample_profile(
            &prof,
            &reg,
            CpuId::new(0),
            HwEvent::Cycles,
            SamplingConfig::default(),
            &mut rng,
        );
        assert!(rows.is_empty());
        assert_eq!(
            sampling_distortion(&prof, &reg, CpuId::new(0), HwEvent::Cycles, &rows),
            0.0
        );
    }
}
