//! # sim-prof
//!
//! The measurement layer of the reproduction: an Oprofile-like profiler
//! over the simulated machine.
//!
//! The paper's data (Tables 1, 3, 4) is Oprofile output: event counts
//! attributed to kernel functions, optionally split per CPU, with the
//! functions then grouped into seven functional bins. This crate provides
//!
//! * [`FunctionRegistry`] — the symbol table: every modelled kernel
//!   function registered with its name and its functional *group* (bin);
//! * [`Profiler`] — a dense `(cpu × function)` matrix of
//!   [`sim_cpu::PerfCounters`], filled in by the execution layers;
//! * [`SampleView`] — converts exact counts into Oprofile-style sample
//!   counts (one sample per *N* events) so reproduced tables can be
//!   rendered in the same units as the paper's;
//! * [`symbol_report`] — "functions with the most samples" reports like
//!   the paper's Table 4.
//!
//! Unlike real Oprofile the underlying counts are exact; sampling noise is
//! not modelled, but attribution *skid* is — the execution layers decide
//! which function an interrupt-caused machine clear lands in, mirroring
//! how skid attributes flush cost to the interrupted code.
//!
//! ## Example
//!
//! ```
//! use sim_core::CpuId;
//! use sim_cpu::{HwEvent, PerfCounters};
//! use sim_prof::{FunctionRegistry, Profiler};
//!
//! let mut registry = FunctionRegistry::new();
//! let f = registry.register("tcp_sendmsg", "Engine");
//! let mut prof = Profiler::new(2);
//! let mut delta = PerfCounters::default();
//! delta.bump(HwEvent::Cycles, 100);
//! prof.record(CpuId::new(0), f, &delta);
//! assert_eq!(prof.counters(CpuId::new(0), f).cycles, 100);
//! assert_eq!(prof.group_total(&registry, "Engine").cycles, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod profiler;
mod registry;
mod report;
mod sampling;

pub use counters::{PollCounters, SteerCounters};
pub use profiler::{ProfScratch, Profiler};
pub use registry::{FuncId, FunctionMeta, FunctionRegistry};
pub use report::{region_map_report, symbol_report, SampleView, SymbolRow};
pub use sampling::{sample_profile, sampling_distortion, SampledRow, SamplingConfig};
