//! The symbol table of modelled kernel functions.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Handle to a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(u32);

impl FuncId {
    /// Raw index into the registry.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

pub(crate) fn funcid_from_index(i: usize) -> FuncId {
    FuncId(i as u32)
}

/// Metadata for one registered function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionMeta {
    /// Symbol name as it would appear in an Oprofile report
    /// (`tcp_sendmsg`, `IRQ0x19_interrupt`, …).
    pub name: String,
    /// Functional group — the paper's bin (`Engine`, `Copies`, …).
    pub group: String,
}

/// Registry mapping function names to ids and functional groups.
///
/// Registration is idempotent per name: registering an existing name
/// returns the existing id (the group must match).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FunctionRegistry {
    entries: Vec<FunctionMeta>,
    by_name: HashMap<String, FuncId>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Registers `name` under `group`, or returns the existing id.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered under a *different* group —
    /// a function cannot belong to two bins.
    pub fn register(&mut self, name: impl Into<String>, group: impl Into<String>) -> FuncId {
        let name = name.into();
        let group = group.into();
        if let Some(&id) = self.by_name.get(&name) {
            assert_eq!(
                self.entries[id.index()].group,
                group,
                "function {name} re-registered under a different group"
            );
            return id;
        }
        let id = FuncId(self.entries.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.entries.push(FunctionMeta { name, group });
        id
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Metadata for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry.
    #[must_use]
    pub fn meta(&self, id: FuncId) -> &FunctionMeta {
        &self.entries[id.index()]
    }

    /// Symbol name for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry.
    #[must_use]
    pub fn name(&self, id: FuncId) -> &str {
        &self.entries[id.index()].name
    }

    /// Group (bin) for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this registry.
    #[must_use]
    pub fn group(&self, id: FuncId) -> &str {
        &self.entries[id.index()].group
    }

    /// Number of registered functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, meta)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &FunctionMeta)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, m)| (FuncId(i as u32), m))
    }

    /// The distinct group names, in first-seen order.
    #[must_use]
    pub fn groups(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for m in &self.entries {
            if !seen.contains(&m.group.as_str()) {
                seen.push(m.group.as_str());
            }
        }
        seen
    }

    /// Ids of every function in `group`.
    #[must_use]
    pub fn functions_in(&self, group: &str) -> Vec<FuncId> {
        self.iter()
            .filter(|(_, m)| m.group == group)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = FunctionRegistry::new();
        let a = r.register("tcp_sendmsg", "Engine");
        let b = r.register("__copy_user", "Copies");
        assert_ne!(a, b);
        assert_eq!(r.lookup("tcp_sendmsg"), Some(a));
        assert_eq!(r.lookup("nope"), None);
        assert_eq!(r.name(a), "tcp_sendmsg");
        assert_eq!(r.group(b), "Copies");
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn idempotent_registration() {
        let mut r = FunctionRegistry::new();
        let a = r.register("f", "G");
        let b = r.register("f", "G");
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different group")]
    fn conflicting_group_rejected() {
        let mut r = FunctionRegistry::new();
        r.register("f", "G1");
        r.register("f", "G2");
    }

    #[test]
    fn groups_in_first_seen_order() {
        let mut r = FunctionRegistry::new();
        r.register("a", "Engine");
        r.register("b", "Copies");
        r.register("c", "Engine");
        assert_eq!(r.groups(), ["Engine", "Copies"]);
        assert_eq!(r.functions_in("Engine").len(), 2);
        assert_eq!(r.functions_in("Timers").len(), 0);
    }
}
