//! Steering-subsystem counters.
//!
//! Dynamic steering policies (Flow Director / aRFS) change where a
//! flow's interrupts land while traffic is in flight. These counters
//! capture the observable side effects of that movement: how often the
//! hardware filter re-targeted a vector, how often the bounded filter
//! table turned an insertion away, and — the signature Wu et al. report
//! for Flow Director — how many frames completed on a different CPU
//! than the immediately preceding frames of the same flow (a proxy for
//! packet reordering when a flow migrates mid-window).

use serde::{Deserialize, Serialize};

/// Counters maintained by the interrupt-steering path.
///
/// Kept separate from `RunMetrics` so golden snapshots of the paper
/// matrix (where all of these are zero by construction) are unaffected
/// by steering experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteerCounters {
    /// Vector re-targets performed by a dynamic steering policy (each
    /// models one `IoApic` reprogram chasing the consuming core).
    pub resteers: u64,
    /// Flow-table insertions rejected because the bounded re-target
    /// table was full (those flows stay on their static placement).
    pub table_rejects: u64,
    /// Frames whose bottom half ran on a different CPU than the previous
    /// batch of the same flow — the out-of-order-completion signature of
    /// directed steering migrating a flow mid-window.
    pub ooo_completions: u64,
}

impl SteerCounters {
    /// Adds `other` into `self` (for aggregating across runs).
    pub fn merge(&mut self, other: &SteerCounters) {
        self.resteers += other.resteers;
        self.table_rejects += other.table_rejects;
        self.ooo_completions += other.ooo_completions;
    }
}

/// Counters maintained per busy-polling PMD core by the kernel-bypass
/// dataplane.
///
/// Kept separate from `RunMetrics` (like [`SteerCounters`]) so golden
/// snapshots of the interrupt-mode matrix — where the poll path never
/// runs — are unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PollCounters {
    /// Poll iterations that found at least one descriptor.
    pub polls: u64,
    /// Poll iterations that found every owned ring empty (each one burns
    /// `empty_poll_cycles` for nothing — the cost of forgoing HLT).
    pub empty_polls: u64,
    /// Data frames drained by rx bursts.
    pub rx_frames: u64,
    /// Segments handed to the tx descriptor ring.
    pub tx_frames: u64,
    /// Cycles burned on empty polls (mirrors `Core::spin_cycles`).
    pub spin_cycles: u64,
    /// Cycles spent in run-to-completion protocol + app processing.
    pub work_cycles: u64,
}

impl PollCounters {
    /// Adds `other` into `self` (for aggregating across cores or runs).
    pub fn merge(&mut self, other: &PollCounters) {
        self.polls += other.polls;
        self.empty_polls += other.empty_polls;
        self.rx_frames += other.rx_frames;
        self.tx_frames += other.tx_frames;
        self.spin_cycles += other.spin_cycles;
        self.work_cycles += other.work_cycles;
    }

    /// Fraction of busy cycles burned spinning (0 when nothing ran).
    #[must_use]
    pub fn spin_fraction(&self) -> f64 {
        let total = self.spin_cycles + self.work_cycles;
        if total == 0 {
            return 0.0;
        }
        self.spin_cycles as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_merge_and_spin_fraction() {
        let mut a = PollCounters {
            polls: 1,
            empty_polls: 2,
            rx_frames: 3,
            tx_frames: 4,
            spin_cycles: 30,
            work_cycles: 10,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.polls, 2);
        assert_eq!(a.spin_cycles, 60);
        assert!((a.spin_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(PollCounters::default().spin_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SteerCounters {
            resteers: 1,
            table_rejects: 2,
            ooo_completions: 3,
        };
        let b = SteerCounters {
            resteers: 10,
            table_rejects: 20,
            ooo_completions: 30,
        };
        a.merge(&b);
        assert_eq!(
            a,
            SteerCounters {
                resteers: 11,
                table_rejects: 22,
                ooo_completions: 33,
            }
        );
        assert_eq!(SteerCounters::default().resteers, 0);
    }
}
