//! Steering-subsystem counters.
//!
//! Dynamic steering policies (Flow Director / aRFS) change where a
//! flow's interrupts land while traffic is in flight. These counters
//! capture the observable side effects of that movement: how often the
//! hardware filter re-targeted a vector, how often the bounded filter
//! table turned an insertion away, and — the signature Wu et al. report
//! for Flow Director — how many frames completed on a different CPU
//! than the immediately preceding frames of the same flow (a proxy for
//! packet reordering when a flow migrates mid-window).

use serde::{Deserialize, Serialize};

/// Counters maintained by the interrupt-steering path.
///
/// Kept separate from `RunMetrics` so golden snapshots of the paper
/// matrix (where all of these are zero by construction) are unaffected
/// by steering experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteerCounters {
    /// Vector re-targets performed by a dynamic steering policy (each
    /// models one `IoApic` reprogram chasing the consuming core).
    pub resteers: u64,
    /// Flow-table insertions rejected because the bounded re-target
    /// table was full (those flows stay on their static placement).
    pub table_rejects: u64,
    /// Frames whose bottom half ran on a different CPU than the previous
    /// batch of the same flow — the out-of-order-completion signature of
    /// directed steering migrating a flow mid-window.
    pub ooo_completions: u64,
}

impl SteerCounters {
    /// Adds `other` into `self` (for aggregating across runs).
    pub fn merge(&mut self, other: &SteerCounters) {
        self.resteers += other.resteers;
        self.table_rejects += other.table_rejects;
        self.ooo_completions += other.ooo_completions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SteerCounters {
            resteers: 1,
            table_rejects: 2,
            ooo_completions: 3,
        };
        let b = SteerCounters {
            resteers: 10,
            table_rejects: 20,
            ooo_completions: 30,
        };
        a.merge(&b);
        assert_eq!(
            a,
            SteerCounters {
                resteers: 11,
                table_rejects: 22,
                ooo_completions: 33,
            }
        );
        assert_eq!(SteerCounters::default().resteers, 0);
    }
}
