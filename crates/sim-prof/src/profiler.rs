//! The `(cpu × function)` event matrix.

use serde::{Deserialize, Serialize};
use sim_core::CpuId;
use sim_cpu::PerfCounters;

use crate::registry::{FuncId, FunctionRegistry};

/// Dense per-CPU, per-function event accounting.
///
/// The execution layers call [`record`](Profiler::record) after every
/// function execution (and after every machine-clear attribution); the
/// analysis layer then slices the matrix by CPU, by function or by
/// functional group to regenerate the paper's tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Profiler {
    cpus: usize,
    /// `matrix[cpu][func]`, grown on demand as functions register.
    matrix: Vec<Vec<PerfCounters>>,
    /// Running per-CPU cycle totals, maintained by [`Profiler::record`] so
    /// hot callers (machine-clear attribution draws every interrupt) don't
    /// re-sum a whole matrix row.
    cycles_on: Vec<u64>,
}

impl Profiler {
    /// Creates a profiler for `cpus` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    #[must_use]
    pub fn new(cpus: usize) -> Self {
        assert!(cpus > 0, "need at least one cpu");
        Profiler {
            cpus,
            matrix: vec![Vec::new(); cpus],
            cycles_on: vec![0; cpus],
        }
    }

    /// Number of CPUs this profiler tracks.
    #[must_use]
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    fn slot(&mut self, cpu: CpuId, func: FuncId) -> &mut PerfCounters {
        let row = &mut self.matrix[cpu.index()];
        if row.len() <= func.index() {
            row.resize(func.index() + 1, PerfCounters::default());
        }
        &mut row[func.index()]
    }

    /// Adds `delta` to the counters of `func` on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn record(&mut self, cpu: CpuId, func: FuncId, delta: &PerfCounters) {
        self.cycles_on[cpu.index()] += delta.cycles;
        *self.slot(cpu, func) += *delta;
    }

    /// Total cycles recorded on `cpu` — equal to
    /// `cpu_total(cpu).cycles`, but O(1).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn cpu_cycles(&self, cpu: CpuId) -> u64 {
        self.cycles_on[cpu.index()]
    }

    /// Counters for `func` on `cpu` (zero if never recorded).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn counters(&self, cpu: CpuId, func: FuncId) -> PerfCounters {
        self.matrix[cpu.index()]
            .get(func.index())
            .copied()
            .unwrap_or_default()
    }

    /// Counters for `func` summed over all CPUs.
    #[must_use]
    pub fn func_total(&self, func: FuncId) -> PerfCounters {
        self.matrix
            .iter()
            .filter_map(|row| row.get(func.index()))
            .copied()
            .sum()
    }

    /// Counters summed over every function on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn cpu_total(&self, cpu: CpuId) -> PerfCounters {
        self.matrix[cpu.index()].iter().copied().sum()
    }

    /// Counters summed over the whole machine.
    #[must_use]
    pub fn total(&self) -> PerfCounters {
        self.matrix.iter().flatten().copied().sum()
    }

    /// Counters summed over every function in `group` (all CPUs).
    #[must_use]
    pub fn group_total(&self, registry: &FunctionRegistry, group: &str) -> PerfCounters {
        registry
            .functions_in(group)
            .into_iter()
            .map(|f| self.func_total(f))
            .sum()
    }

    /// Counters summed over every function in `group` on one CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn group_total_on(
        &self,
        registry: &FunctionRegistry,
        group: &str,
        cpu: CpuId,
    ) -> PerfCounters {
        registry
            .functions_in(group)
            .into_iter()
            .map(|f| self.counters(cpu, f))
            .sum()
    }

    /// Functions with non-zero counters on `cpu`, as `(func, counters)`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn nonzero_on(&self, cpu: CpuId) -> impl Iterator<Item = (FuncId, PerfCounters)> + '_ {
        self.matrix[cpu.index()]
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, c)| (crate::registry::funcid_from_index(i), *c))
    }

    /// Zeroes every counter (discard warm-up).
    pub fn reset(&mut self) {
        for row in &mut self.matrix {
            for c in row.iter_mut() {
                *c = PerfCounters::default();
            }
        }
        self.cycles_on.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::HwEvent;

    fn delta(cycles: u64, llc: u64) -> PerfCounters {
        let mut d = PerfCounters::default();
        d.bump(HwEvent::Cycles, cycles);
        d.bump(HwEvent::LlcMiss, llc);
        d
    }

    #[test]
    fn record_and_slice() {
        let mut reg = FunctionRegistry::new();
        let f0 = reg.register("tcp_sendmsg", "Engine");
        let f1 = reg.register("alloc_skb", "Buf Mgmt");
        let f2 = reg.register("tcp_v4_rcv", "Engine");
        let mut p = Profiler::new(2);
        let (c0, c1) = (CpuId::new(0), CpuId::new(1));
        p.record(c0, f0, &delta(100, 1));
        p.record(c0, f1, &delta(50, 0));
        p.record(c1, f0, &delta(30, 2));
        p.record(c1, f2, &delta(20, 0));

        assert_eq!(p.counters(c0, f0).cycles, 100);
        assert_eq!(p.counters(c1, f1).cycles, 0);
        assert_eq!(p.func_total(f0).cycles, 130);
        assert_eq!(p.cpu_total(c0).cycles, 150);
        assert_eq!(p.cpu_cycles(c0), p.cpu_total(c0).cycles);
        assert_eq!(p.cpu_cycles(c1), p.cpu_total(c1).cycles);
        assert_eq!(p.total().cycles, 200);
        assert_eq!(p.total().llc_misses, 3);
        assert_eq!(p.group_total(&reg, "Engine").cycles, 150);
        assert_eq!(p.group_total_on(&reg, "Engine", c1).cycles, 50);
    }

    #[test]
    fn record_accumulates() {
        let mut reg = FunctionRegistry::new();
        let f = reg.register("f", "G");
        let mut p = Profiler::new(1);
        p.record(CpuId::new(0), f, &delta(10, 0));
        p.record(CpuId::new(0), f, &delta(15, 1));
        assert_eq!(p.counters(CpuId::new(0), f).cycles, 25);
        assert_eq!(p.counters(CpuId::new(0), f).llc_misses, 1);
    }

    #[test]
    fn unknown_function_reads_zero() {
        let mut reg = FunctionRegistry::new();
        let _ = reg.register("a", "G");
        let late = {
            let mut other = FunctionRegistry::new();
            other.register("a", "G");
            other.register("b", "G")
        };
        let p = Profiler::new(1);
        assert!(p.counters(CpuId::new(0), late).is_empty());
    }

    #[test]
    fn nonzero_on_skips_empty() {
        let mut reg = FunctionRegistry::new();
        let f0 = reg.register("a", "G");
        let f1 = reg.register("b", "G");
        let mut p = Profiler::new(1);
        p.record(CpuId::new(0), f1, &delta(5, 0));
        let v: Vec<_> = p.nonzero_on(CpuId::new(0)).collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, f1);
        assert_ne!(v[0].0, f0);
    }

    #[test]
    fn reset_zeroes() {
        let mut reg = FunctionRegistry::new();
        let f = reg.register("a", "G");
        let mut p = Profiler::new(1);
        p.record(CpuId::new(0), f, &delta(5, 0));
        p.reset();
        assert!(p.total().is_empty());
        assert_eq!(p.cpu_cycles(CpuId::new(0)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one cpu")]
    fn zero_cpus_rejected() {
        let _ = Profiler::new(0);
    }
}
