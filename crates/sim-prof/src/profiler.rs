//! The `(cpu × function)` event matrix.

use serde::{Deserialize, Serialize};
use sim_core::CpuId;
use sim_cpu::PerfCounters;

use crate::registry::{funcid_from_index, FuncId, FunctionRegistry};

/// Dense per-CPU, per-function event accounting.
///
/// The execution layers call [`record`](Profiler::record) after every
/// function execution (and after every machine-clear attribution); the
/// analysis layer then slices the matrix by CPU, by function or by
/// functional group to regenerate the paper's tables.
///
/// Storage is one flat `cpus × stride` array of counter banks (cpu-major)
/// plus a per-CPU bitset of ever-touched functions, so the common "walk
/// the profile of one CPU" pattern ([`nonzero_on`](Profiler::nonzero_on),
/// drawn on every interrupt for machine-clear attribution) skips the
/// untouched bulk of the row without scanning it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Profiler {
    cpus: usize,
    /// Function slots allocated per CPU row (grown on demand).
    stride: usize,
    /// `matrix[cpu * stride + func]`.
    matrix: Vec<PerfCounters>,
    /// One bit per matrix slot, same layout, `stride` padded to whole
    /// words per CPU: set when the slot has ever been recorded to.
    touched: Vec<u64>,
    /// Running per-CPU cycle totals, maintained by [`Profiler::record`] so
    /// hot callers (machine-clear attribution draws every interrupt) don't
    /// re-sum a whole matrix row.
    cycles_on: Vec<u64>,
}

impl Profiler {
    /// Creates a profiler for `cpus` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    #[must_use]
    pub fn new(cpus: usize) -> Self {
        assert!(cpus > 0, "need at least one cpu");
        let stride = 64;
        Profiler {
            cpus,
            stride,
            matrix: vec![PerfCounters::default(); cpus * stride],
            touched: vec![0; cpus * stride.div_ceil(64)],
            cycles_on: vec![0; cpus],
        }
    }

    /// Number of CPUs this profiler tracks.
    #[must_use]
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    fn words_per_cpu(&self) -> usize {
        self.stride.div_ceil(64)
    }

    /// Re-lays the matrix out with a wider stride so `func` fits.
    fn grow(&mut self, func: FuncId) {
        let new_stride = (func.index() + 1).next_power_of_two().max(64);
        let new_words = new_stride.div_ceil(64);
        let mut matrix = vec![PerfCounters::default(); self.cpus * new_stride];
        let mut touched = vec![0u64; self.cpus * new_words];
        for cpu in 0..self.cpus {
            let old_row = &self.matrix[cpu * self.stride..(cpu + 1) * self.stride];
            matrix[cpu * new_stride..cpu * new_stride + self.stride].copy_from_slice(old_row);
            let old_bits = &self.touched[cpu * self.words_per_cpu()..];
            touched[cpu * new_words..cpu * new_words + self.words_per_cpu()]
                .copy_from_slice(&old_bits[..self.words_per_cpu()]);
        }
        self.stride = new_stride;
        self.matrix = matrix;
        self.touched = touched;
    }

    /// Adds `delta` to the counters of `func` on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn record(&mut self, cpu: CpuId, func: FuncId, delta: &PerfCounters) {
        let c = cpu.index();
        self.cycles_on[c] += delta.cycles;
        let f = func.index();
        if f >= self.stride {
            self.grow(func);
        }
        let words = self.words_per_cpu();
        self.touched[c * words + f / 64] |= 1 << (f % 64);
        self.matrix[c * self.stride + f] += *delta;
    }

    /// Total cycles recorded on `cpu` — equal to
    /// `cpu_total(cpu).cycles`, but O(1).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn cpu_cycles(&self, cpu: CpuId) -> u64 {
        self.cycles_on[cpu.index()]
    }

    /// Counters for `func` on `cpu` (zero if never recorded).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn counters(&self, cpu: CpuId, func: FuncId) -> PerfCounters {
        if func.index() >= self.stride {
            return PerfCounters::default();
        }
        self.matrix[cpu.index() * self.stride + func.index()]
    }

    /// Counters for `func` summed over all CPUs.
    #[must_use]
    pub fn func_total(&self, func: FuncId) -> PerfCounters {
        (0..self.cpus)
            .map(|c| self.counters(CpuId::new(c as u32), func))
            .sum()
    }

    /// Counters summed over every function on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn cpu_total(&self, cpu: CpuId) -> PerfCounters {
        self.nonzero_on(cpu).map(|(_, c)| c).sum()
    }

    /// Counters summed over the whole machine.
    #[must_use]
    pub fn total(&self) -> PerfCounters {
        (0..self.cpus)
            .map(|c| self.cpu_total(CpuId::new(c as u32)))
            .sum()
    }

    /// Counters summed over every function in `group` (all CPUs).
    #[must_use]
    pub fn group_total(&self, registry: &FunctionRegistry, group: &str) -> PerfCounters {
        registry
            .functions_in(group)
            .into_iter()
            .map(|f| self.func_total(f))
            .sum()
    }

    /// Counters summed over every function in `group` on one CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn group_total_on(
        &self,
        registry: &FunctionRegistry,
        group: &str,
        cpu: CpuId,
    ) -> PerfCounters {
        registry
            .functions_in(group)
            .into_iter()
            .map(|f| self.counters(cpu, f))
            .sum()
    }

    /// Functions with non-zero counters on `cpu`, as `(func, counters)`,
    /// in ascending function order. Walks set bits of the touched-set
    /// rather than the whole row.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn nonzero_on(&self, cpu: CpuId) -> impl Iterator<Item = (FuncId, PerfCounters)> + '_ {
        let c = cpu.index();
        let words = self.words_per_cpu();
        let row = &self.matrix[c * self.stride..(c + 1) * self.stride];
        self.touched[c * words..(c + 1) * words]
            .iter()
            .enumerate()
            .flat_map(move |(w, &bits)| {
                let mut rest = bits;
                std::iter::from_fn(move || {
                    if rest == 0 {
                        return None;
                    }
                    let bit = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(w * 64 + bit)
                })
            })
            .filter(move |&i| !row[i].is_empty())
            .map(move |i| (funcid_from_index(i), row[i]))
    }

    /// Zeroes every counter (discard warm-up).
    pub fn reset(&mut self) {
        self.matrix.fill(PerfCounters::default());
        self.touched.fill(0);
        self.cycles_on.fill(0);
    }
}

/// A small scratch of per-function counter deltas, batched on one CPU.
///
/// Execution layers that charge many function executions back-to-back
/// (one TCP episode runs a dozen modelled functions, some of them once
/// per segment) accumulate the deltas here and [`flush`](ProfScratch::flush)
/// them into the [`Profiler`] once, at the function-exit/context-switch
/// boundary, instead of writing a full counter bank into the big matrix
/// per call. Merging is by linear scan — the working set of one episode
/// is far smaller than [`ProfScratch::CAPACITY`]; if it ever overflows
/// the scratch flushes itself and keeps going.
///
/// Flushing only ever *adds* `u64` counters into matrix slots, so the
/// batching is observably identical to eager recording provided every
/// profiler read happens after the flush. Embedding the scratch in the
/// executor's context object (which holds `&mut Profiler`) makes the
/// borrow checker enforce exactly that.
#[derive(Debug)]
pub struct ProfScratch {
    cpu: CpuId,
    len: usize,
    entries: [(FuncId, PerfCounters); ProfScratch::CAPACITY],
}

impl ProfScratch {
    /// Distinct functions the scratch holds before self-flushing.
    pub const CAPACITY: usize = 16;

    /// An empty scratch attributing to `cpu`.
    #[must_use]
    pub fn new(cpu: CpuId) -> Self {
        ProfScratch {
            cpu,
            len: 0,
            entries: [(funcid_from_index(0), PerfCounters::default()); ProfScratch::CAPACITY],
        }
    }

    /// Accumulates `delta` for `func`, spilling to `prof` on overflow.
    pub fn note(&mut self, prof: &mut Profiler, func: FuncId, delta: &PerfCounters) {
        for (f, c) in &mut self.entries[..self.len] {
            if *f == func {
                *c += *delta;
                return;
            }
        }
        if self.len == ProfScratch::CAPACITY {
            self.flush(prof);
        }
        self.entries[self.len] = (func, *delta);
        self.len += 1;
    }

    /// Drains every accumulated delta into `prof`.
    pub fn flush(&mut self, prof: &mut Profiler) {
        for (f, c) in &self.entries[..self.len] {
            prof.record(self.cpu, *f, c);
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::HwEvent;

    fn delta(cycles: u64, llc: u64) -> PerfCounters {
        let mut d = PerfCounters::default();
        d.bump(HwEvent::Cycles, cycles);
        d.bump(HwEvent::LlcMiss, llc);
        d
    }

    #[test]
    fn record_and_slice() {
        let mut reg = FunctionRegistry::new();
        let f0 = reg.register("tcp_sendmsg", "Engine");
        let f1 = reg.register("alloc_skb", "Buf Mgmt");
        let f2 = reg.register("tcp_v4_rcv", "Engine");
        let mut p = Profiler::new(2);
        let (c0, c1) = (CpuId::new(0), CpuId::new(1));
        p.record(c0, f0, &delta(100, 1));
        p.record(c0, f1, &delta(50, 0));
        p.record(c1, f0, &delta(30, 2));
        p.record(c1, f2, &delta(20, 0));

        assert_eq!(p.counters(c0, f0).cycles, 100);
        assert_eq!(p.counters(c1, f1).cycles, 0);
        assert_eq!(p.func_total(f0).cycles, 130);
        assert_eq!(p.cpu_total(c0).cycles, 150);
        assert_eq!(p.cpu_cycles(c0), p.cpu_total(c0).cycles);
        assert_eq!(p.cpu_cycles(c1), p.cpu_total(c1).cycles);
        assert_eq!(p.total().cycles, 200);
        assert_eq!(p.total().llc_misses, 3);
        assert_eq!(p.group_total(&reg, "Engine").cycles, 150);
        assert_eq!(p.group_total_on(&reg, "Engine", c1).cycles, 50);
    }

    #[test]
    fn record_accumulates() {
        let mut reg = FunctionRegistry::new();
        let f = reg.register("f", "G");
        let mut p = Profiler::new(1);
        p.record(CpuId::new(0), f, &delta(10, 0));
        p.record(CpuId::new(0), f, &delta(15, 1));
        assert_eq!(p.counters(CpuId::new(0), f).cycles, 25);
        assert_eq!(p.counters(CpuId::new(0), f).llc_misses, 1);
    }

    #[test]
    fn unknown_function_reads_zero() {
        let mut reg = FunctionRegistry::new();
        let _ = reg.register("a", "G");
        let late = {
            let mut other = FunctionRegistry::new();
            other.register("a", "G");
            other.register("b", "G")
        };
        let p = Profiler::new(1);
        assert!(p.counters(CpuId::new(0), late).is_empty());
    }

    #[test]
    fn nonzero_on_skips_empty() {
        let mut reg = FunctionRegistry::new();
        let f0 = reg.register("a", "G");
        let f1 = reg.register("b", "G");
        let mut p = Profiler::new(1);
        p.record(CpuId::new(0), f1, &delta(5, 0));
        let v: Vec<_> = p.nonzero_on(CpuId::new(0)).collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, f1);
        assert_ne!(v[0].0, f0);
    }

    #[test]
    fn nonzero_on_is_ascending_across_words() {
        let mut reg = FunctionRegistry::new();
        let funcs: Vec<_> = (0..200)
            .map(|i| reg.register(&format!("f{i}"), "G"))
            .collect();
        let mut p = Profiler::new(1);
        // Record out of order, spanning several 64-bit words and a grow.
        for &i in &[150usize, 3, 64, 199, 65, 0] {
            p.record(CpuId::new(0), funcs[i], &delta(i as u64 + 1, 0));
        }
        let seen: Vec<usize> = p
            .nonzero_on(CpuId::new(0))
            .map(|(f, _)| f.index())
            .collect();
        assert_eq!(seen, vec![0, 3, 64, 65, 150, 199]);
        assert_eq!(
            p.cpu_total(CpuId::new(0)).cycles,
            151 + 4 + 65 + 200 + 66 + 1
        );
    }

    #[test]
    fn growth_preserves_earlier_records() {
        let mut reg = FunctionRegistry::new();
        let first = reg.register("first", "G");
        let mut p = Profiler::new(2);
        p.record(CpuId::new(1), first, &delta(7, 1));
        // Force several stride growths.
        for i in 1..300 {
            let f = reg.register(&format!("f{i}"), "G");
            p.record(CpuId::new(0), f, &delta(1, 0));
        }
        assert_eq!(p.counters(CpuId::new(1), first).cycles, 7);
        assert_eq!(p.counters(CpuId::new(1), first).llc_misses, 1);
        assert_eq!(p.cpu_total(CpuId::new(0)).cycles, 299);
    }

    #[test]
    fn reset_zeroes() {
        let mut reg = FunctionRegistry::new();
        let f = reg.register("a", "G");
        let mut p = Profiler::new(1);
        p.record(CpuId::new(0), f, &delta(5, 0));
        p.reset();
        assert!(p.total().is_empty());
        assert_eq!(p.cpu_cycles(CpuId::new(0)), 0);
    }

    #[test]
    fn scratch_merges_and_flushes() {
        let mut reg = FunctionRegistry::new();
        let f0 = reg.register("a", "G");
        let f1 = reg.register("b", "G");
        let mut p = Profiler::new(1);
        let mut s = ProfScratch::new(CpuId::new(0));
        s.note(&mut p, f0, &delta(10, 1));
        s.note(&mut p, f1, &delta(5, 0));
        s.note(&mut p, f0, &delta(10, 0));
        // Nothing visible until the flush...
        assert_eq!(p.total().cycles, 0);
        s.flush(&mut p);
        // ...then everything, merged.
        assert_eq!(p.counters(CpuId::new(0), f0).cycles, 20);
        assert_eq!(p.counters(CpuId::new(0), f0).llc_misses, 1);
        assert_eq!(p.counters(CpuId::new(0), f1).cycles, 5);
        assert_eq!(p.cpu_cycles(CpuId::new(0)), 25);
        // A drained scratch flushes to nothing.
        s.flush(&mut p);
        assert_eq!(p.total().cycles, 25);
    }

    #[test]
    fn scratch_overflow_spills_to_profiler() {
        let mut reg = FunctionRegistry::new();
        let funcs: Vec<_> = (0..ProfScratch::CAPACITY + 4)
            .map(|i| reg.register(&format!("f{i}"), "G"))
            .collect();
        let mut p = Profiler::new(1);
        let mut s = ProfScratch::new(CpuId::new(0));
        for f in &funcs {
            s.note(&mut p, *f, &delta(1, 0));
        }
        s.flush(&mut p);
        assert_eq!(p.cpu_total(CpuId::new(0)).cycles, funcs.len() as u64);
        for f in &funcs {
            assert_eq!(p.counters(CpuId::new(0), *f).cycles, 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one cpu")]
    fn zero_cpus_rejected() {
        let _ = Profiler::new(0);
    }
}
