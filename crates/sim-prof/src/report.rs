//! Oprofile-style report rendering.

use serde::{Deserialize, Serialize};
use sim_core::CpuId;
use sim_cpu::HwEvent;

use crate::profiler::Profiler;
use crate::registry::FunctionRegistry;

/// Converts exact event counts into Oprofile-style *sample* counts.
///
/// Oprofile records one sample every `interval` occurrences of the
/// monitored event; over a long steady-state run the sample distribution
/// converges to the count distribution. The view exposes both so tables
/// can be rendered in the same units as the paper's (samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleView {
    /// Events per sample.
    pub interval: u64,
}

impl SampleView {
    /// Creates a view sampling once every `interval` events.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        SampleView { interval }
    }

    /// Sample count corresponding to an exact event count.
    #[must_use]
    pub fn samples(&self, count: u64) -> u64 {
        count / self.interval
    }
}

impl Default for SampleView {
    /// Oprofile's typical machine-clear sampling setup in the paper's
    /// timeframe used small intervals for rare events; 1000 is a neutral
    /// default.
    fn default() -> Self {
        SampleView::new(1000)
    }
}

/// One row of a symbol report: a function and its share of an event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolRow {
    /// Symbol name.
    pub symbol: String,
    /// Functional group (bin).
    pub group: String,
    /// Exact event count.
    pub count: u64,
    /// Sampled count under the report's view.
    pub samples: u64,
    /// Percentage of the CPU's total for the event.
    pub percent: f64,
}

/// Builds a per-CPU "functions with the most `event`" report, sorted by
/// descending count — the shape of the paper's Table 4.
///
/// Only functions with a non-zero count appear. `limit` truncates the
/// list (use `usize::MAX` for all).
#[must_use]
pub fn symbol_report(
    profiler: &Profiler,
    registry: &FunctionRegistry,
    cpu: CpuId,
    event: HwEvent,
    view: SampleView,
    limit: usize,
) -> Vec<SymbolRow> {
    let total = profiler.cpu_total(cpu).get(event);
    let mut rows: Vec<SymbolRow> = profiler
        .nonzero_on(cpu)
        .filter(|(_, c)| c.get(event) > 0)
        .map(|(f, c)| {
            let count = c.get(event);
            SymbolRow {
                symbol: registry.name(f).to_string(),
                group: registry.group(f).to_string(),
                count,
                samples: view.samples(count),
                percent: if total == 0 {
                    0.0
                } else {
                    100.0 * count as f64 / total as f64
                },
            }
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.symbol.cmp(&b.symbol)));
    rows.truncate(limit);
    rows
}

/// Renders the report's "memory map" section: one row per region in
/// allocation order — base address, size, and the region's name.
///
/// Names are stored interned ([`sim_mem::RegionName`]) since the bulk
/// provisioning path landed; this is the report surface that resolves
/// them, and the rendering is defined to be byte-identical to the eager
/// `String` names the pre-interning code built (`conn3.tcp_ctx` and
/// friends). A golden snapshot over a per-flow slab pins that promise.
///
/// `limit` truncates the listing (use `usize::MAX` for all); truncation
/// is reported in the header so a clipped map never reads as complete.
#[must_use]
pub fn region_map_report(regions: &sim_mem::RegionTable, limit: usize) -> String {
    let shown = regions.len().min(limit);
    let mut out = format!(
        "memory map: {} regions, {} bytes{}\n{:>12} {:>10}  region\n",
        regions.len(),
        regions.footprint(),
        if shown < regions.len() {
            format!(" (first {shown} shown)")
        } else {
            String::new()
        },
        "base",
        "bytes",
    );
    for (_, r) in regions.iter().take(limit) {
        out.push_str(&format!(
            "{:#012x} {:>10}  {}\n",
            r.base(),
            r.size(),
            r.raw_name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::PerfCounters;

    #[test]
    fn sample_view_floor_division() {
        let v = SampleView::new(100);
        assert_eq!(v.samples(0), 0);
        assert_eq!(v.samples(99), 0);
        assert_eq!(v.samples(100), 1);
        assert_eq!(v.samples(250), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = SampleView::new(0);
    }

    #[test]
    fn report_sorts_and_percentages() {
        let mut reg = FunctionRegistry::new();
        let f0 = reg.register("tcp_sendmsg", "Engine");
        let f1 = reg.register("IRQ0x19_interrupt", "Driver");
        let f2 = reg.register("alloc_skb", "Buf Mgmt");
        let mut p = Profiler::new(1);
        let cpu = CpuId::new(0);
        let mut d = PerfCounters::default();
        d.bump(HwEvent::MachineClear, 60);
        p.record(cpu, f0, &d);
        let mut d = PerfCounters::default();
        d.bump(HwEvent::MachineClear, 40);
        p.record(cpu, f1, &d);
        // f2 has cycles but no clears: must not appear.
        let mut d = PerfCounters::default();
        d.bump(HwEvent::Cycles, 1000);
        p.record(cpu, f2, &d);

        let rows = symbol_report(
            &p,
            &reg,
            cpu,
            HwEvent::MachineClear,
            SampleView::new(10),
            10,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].symbol, "tcp_sendmsg");
        assert_eq!(rows[0].count, 60);
        assert_eq!(rows[0].samples, 6);
        assert!((rows[0].percent - 60.0).abs() < 1e-9);
        assert_eq!(rows[1].symbol, "IRQ0x19_interrupt");
        assert_eq!(rows[1].group, "Driver");
    }

    #[test]
    fn report_limit_truncates() {
        let mut reg = FunctionRegistry::new();
        let mut p = Profiler::new(1);
        let cpu = CpuId::new(0);
        for i in 0..5 {
            let f = reg.register(format!("f{i}"), "G");
            let mut d = PerfCounters::default();
            d.bump(HwEvent::Cycles, 10 * (i + 1));
            p.record(cpu, f, &d);
        }
        let rows = symbol_report(&p, &reg, cpu, HwEvent::Cycles, SampleView::default(), 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].symbol, "f4");
    }

    #[test]
    fn report_empty_cpu() {
        let reg = FunctionRegistry::new();
        let p = Profiler::new(2);
        let rows = symbol_report(
            &p,
            &reg,
            CpuId::new(1),
            HwEvent::Cycles,
            SampleView::default(),
            10,
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn region_map_resolves_interned_names_like_eager_strings() {
        use sim_mem::{RegionName, RegionTable};
        let mut interned = RegionTable::new(4096);
        let mut eager = RegionTable::new(4096);
        for flow in 0..3u32 {
            for (suffix, size) in [("tcp_ctx", 1344), ("sock", 1472), ("skb_data", 65536)] {
                interned.add(RegionName::indexed("conn", flow, suffix), size);
                eager.add(format!("conn{flow}.{suffix}"), size);
            }
        }
        let a = region_map_report(&interned, usize::MAX);
        let b = region_map_report(&eager, usize::MAX);
        assert_eq!(a, b, "interned names must render like the eager strings");
        assert!(a.contains("conn2.skb_data"));
        assert!(a.starts_with("memory map: 9 regions"));
    }

    #[test]
    fn region_map_reports_truncation() {
        use sim_mem::RegionTable;
        let mut t = RegionTable::new(4096);
        for i in 0..4u32 {
            t.add(format!("r{i}"), 64);
        }
        let clipped = region_map_report(&t, 2);
        assert!(clipped.contains("(first 2 shown)"));
        assert_eq!(clipped.lines().count(), 4);
        assert!(!region_map_report(&t, 8).contains("shown"));
    }

    #[test]
    fn ties_break_by_name() {
        let mut reg = FunctionRegistry::new();
        let fb = reg.register("bbb", "G");
        let fa = reg.register("aaa", "G");
        let mut p = Profiler::new(1);
        let cpu = CpuId::new(0);
        let mut d = PerfCounters::default();
        d.bump(HwEvent::Cycles, 10);
        p.record(cpu, fb, &d);
        p.record(cpu, fa, &d);
        let rows = symbol_report(&p, &reg, cpu, HwEvent::Cycles, SampleView::default(), 10);
        assert_eq!(rows[0].symbol, "aaa");
        assert_eq!(rows[1].symbol, "bbb");
    }
}
