//! Property-based tests for the OS model's invariants.

use proptest::prelude::*;
use sim_core::{CpuId, SimRng, SimTime, TaskId};
use sim_os::{CpuMask, Scheduler, SchedulerConfig, SpinLock, TimerWheel};
use std::collections::HashSet;

proptest! {
    /// CpuMask behaves like a set of small integers.
    #[test]
    fn cpumask_matches_reference_set(cpus in prop::collection::vec(0u32..64, 0..64)) {
        let mut mask = CpuMask::EMPTY;
        let mut reference = HashSet::new();
        for &c in &cpus {
            mask = mask.with(CpuId::new(c));
            reference.insert(c);
        }
        prop_assert_eq!(mask.count() as usize, reference.len());
        for c in 0..64u32 {
            prop_assert_eq!(mask.contains(CpuId::new(c)), reference.contains(&c));
        }
        let collected: Vec<u32> = mask.iter().map(|c| c.raw()).collect();
        let mut sorted: Vec<u32> = reference.into_iter().collect();
        sorted.sort_unstable();
        prop_assert_eq!(collected, sorted);
    }

    /// Mask set operations distribute like bitwise ops.
    #[test]
    fn cpumask_set_algebra(a: u64, b: u64) {
        let (ma, mb) = (CpuMask::from_bits(a), CpuMask::from_bits(b));
        prop_assert_eq!(ma.and(mb).bits(), a & b);
        prop_assert_eq!(ma.or(mb).bits(), a | b);
        prop_assert_eq!(ma.and(mb).count() + ma.or(mb).count(), ma.count() + mb.count());
    }

    /// Wakeups always place tasks inside their affinity mask, and tasks
    /// are conserved (queued+running+blocked == spawned).
    #[test]
    fn scheduler_respects_affinity_and_conserves_tasks(
        masks in prop::collection::vec(1u64..16, 1..12),
        ops in prop::collection::vec((0usize..12, 0u32..4, any::<bool>()), 0..200),
    ) {
        let cpus = 4;
        let mut s = Scheduler::new(SchedulerConfig::new(cpus));
        let tasks: Vec<TaskId> = masks
            .iter()
            .enumerate()
            .map(|(i, &m)| s.spawn(format!("t{i}"), CpuMask::from_bits(m)).unwrap())
            .collect();
        for (ti, cpu, affine) in ops {
            let task = tasks[ti % tasks.len()];
            let from = CpuId::new(cpu);
            let placement = s.wake(task, from, affine).unwrap();
            let mask = s.task(task).unwrap().affinity;
            prop_assert!(
                mask.contains(placement.cpu),
                "task placed outside its mask"
            );
            // Drain sometimes to exercise pick/block.
            if affine {
                if s.current(from).is_none() && s.pick_next(from).is_some() {
                    s.block_current(from);
                }
            }
        }
        // Conservation: every task is exactly one of queued/running/blocked.
        let queued_running: usize = (0..cpus)
            .map(|c| s.load(CpuId::new(c as u32)))
            .sum();
        let blocked = s
            .tasks()
            .filter(|t| t.state == sim_os::TaskState::Blocked)
            .count();
        prop_assert_eq!(queued_running + blocked, tasks.len());
    }

    /// Stealing never violates affinity.
    #[test]
    fn steal_respects_affinity(masks in prop::collection::vec(1u64..4, 2..10)) {
        let mut s = Scheduler::new(SchedulerConfig::new(2));
        for (i, &m) in masks.iter().enumerate() {
            let t = s.spawn(format!("t{i}"), CpuMask::from_bits(m)).unwrap();
            s.wake(t, CpuId::new(0), false).unwrap();
        }
        let thief = CpuId::new(1);
        while s.pick_next(thief).is_some() {
            s.block_current(thief);
        }
        if let Some(stolen) = s.steal_into(thief) {
            prop_assert!(s.task(stolen).unwrap().affinity.contains(thief));
        }
    }

    /// Timers fire in deadline order and cancelled timers never fire.
    #[test]
    fn timer_wheel_ordering_and_cancellation(
        deadlines in prop::collection::vec(0u64..1000, 1..100),
        cancel_every in 1usize..5,
    ) {
        let mut w = TimerWheel::new();
        let mut cancelled = HashSet::new();
        let ids: Vec<_> = deadlines
            .iter()
            .enumerate()
            .map(|(i, &d)| (i, w.arm(SimTime::from_cycles(d), i)))
            .collect();
        for &(i, id) in &ids {
            if i % cancel_every == 0 {
                w.cancel(id);
                cancelled.insert(i);
            }
        }
        let fired = w.expire(SimTime::from_cycles(1_000_000));
        let mut last = 0u64;
        for &payload in &fired {
            prop_assert!(!cancelled.contains(&payload), "cancelled timer fired");
            let d = deadlines[payload];
            prop_assert!(d >= last, "fired out of order");
            last = d;
        }
        prop_assert_eq!(fired.len(), deadlines.len() - cancelled.len());
    }

    /// Spinlock accounting identities for arbitrary contention patterns.
    #[test]
    fn spinlock_accounting(seed: u64, pattern in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut lock = SpinLock::new("l");
        let mut rng = SimRng::new(seed);
        let mut contended_n = 0u64;
        for &contended in &pattern {
            let a = lock.acquire(contended, &mut rng);
            prop_assert!(a.instructions >= 2);
            prop_assert!(a.branches >= 1);
            prop_assert!(a.mispredicts <= a.branches);
            if contended {
                contended_n += 1;
                prop_assert!(a.spin_iterations > 0);
            } else {
                prop_assert_eq!(a.spin_iterations, 0);
            }
        }
        let s = lock.stats();
        prop_assert_eq!(s.acquisitions, pattern.len() as u64);
        prop_assert_eq!(s.contended, contended_n);
    }
}
