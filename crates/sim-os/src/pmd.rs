//! Busy-polling poll-mode-driver (PMD) cores.
//!
//! Under the kernel-bypass dataplane there is no IRQ, no softirq and no
//! scheduler involvement: each CPU is dedicated to a PMD loop that owns a
//! fixed set of NIC queues and spins on their descriptor rings — rx burst
//! → protocol → tx, run to completion, all core-local. The price is that
//! a PMD core burns cycles even when its rings are empty; [`PmdCore`]
//! turns idle wall-time gaps into whole empty-poll iterations so that
//! cost can be charged (and priced in GHz/Gbps) instead of vanishing the
//! way a halted interrupt-mode core's idle time does.

use sim_core::CpuId;

/// Knobs for the busy-poll loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmdConfig {
    /// Maximum descriptors drained from one queue per poll iteration
    /// (DPDK's `rx_burst` size).
    pub burst: u32,
    /// Cycles one empty poll iteration costs: the ring-tail probe (an
    /// LLC-resident load once the line settles) plus the `pause`-loop
    /// overhead around it.
    pub empty_poll_cycles: u64,
}

impl Default for PmdConfig {
    fn default() -> Self {
        PmdConfig {
            burst: 32,
            empty_poll_cycles: 120,
        }
    }
}

/// One busy-polling core: the CPU it occupies and the NIC queues it owns.
///
/// Queue ownership is static for the lifetime of a run (the steering
/// policy's `vector_home` decides it up front), which is what makes the
/// rx rings single-consumer.
#[derive(Debug, Clone)]
pub struct PmdCore {
    cpu: CpuId,
    queues: Vec<usize>,
}

impl PmdCore {
    /// Creates a PMD core on `cpu` owning no queues yet.
    #[must_use]
    pub fn new(cpu: CpuId) -> Self {
        PmdCore {
            cpu,
            queues: Vec::new(),
        }
    }

    /// The CPU this core occupies.
    #[must_use]
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// Assigns global queue index `queue` to this core's poll set.
    pub fn assign(&mut self, queue: usize) {
        self.queues.push(queue);
    }

    /// The queues this core polls, in assignment order.
    #[must_use]
    pub fn queues(&self) -> &[usize] {
        &self.queues
    }

    /// Converts an idle gap of `gap` cycles into the number of empty poll
    /// iterations the core spun through (at least one for any nonzero
    /// gap: even a partial iteration probed the rings once).
    #[must_use]
    pub fn empty_polls_for_gap(gap: u64, empty_poll_cycles: u64) -> u64 {
        if gap == 0 {
            return 0;
        }
        gap.div_ceil(empty_poll_cycles.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_assignment_is_ordered() {
        let mut core = PmdCore::new(CpuId::new(3));
        core.assign(7);
        core.assign(2);
        assert_eq!(core.cpu(), CpuId::new(3));
        assert_eq!(core.queues(), &[7, 2]);
    }

    #[test]
    fn empty_poll_accounting_rounds_up() {
        assert_eq!(PmdCore::empty_polls_for_gap(0, 120), 0);
        assert_eq!(PmdCore::empty_polls_for_gap(1, 120), 1);
        assert_eq!(PmdCore::empty_polls_for_gap(120, 120), 1);
        assert_eq!(PmdCore::empty_polls_for_gap(121, 120), 2);
        assert_eq!(PmdCore::empty_polls_for_gap(1200, 120), 10);
        // Degenerate config never divides by zero.
        assert_eq!(PmdCore::empty_polls_for_gap(10, 0), 10);
    }
}
