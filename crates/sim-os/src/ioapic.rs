//! IO-APIC interrupt routing.
//!
//! Linux 2.4 (and Windows NT) in their default SMP configuration deliver
//! every device interrupt to CPU0; the paper's "IRQ affinity" mode writes
//! per-vector bitmasks into `/proc/irq/<n>/smp_affinity` to split the 8
//! NIC vectors between the processors. [`IoApic`] models exactly that
//! static routing table: each vector delivers to the lowest-numbered CPU
//! in its mask.

use serde::{Deserialize, Serialize};
use sim_core::{CpuId, IrqVector, Result, SimError};

use crate::cpumask::CpuMask;

/// The interrupt router.
///
/// # Example
///
/// ```
/// use sim_core::{CpuId, IrqVector};
/// use sim_os::{CpuMask, IoApic};
///
/// let mut apic = IoApic::new(2);
/// let vec = IrqVector::new(0x19);
/// assert_eq!(apic.route(vec), CpuId::new(0)); // default: everything to CPU0
/// apic.set_affinity(vec, CpuMask::single(CpuId::new(1)))?;
/// assert_eq!(apic.route(vec), CpuId::new(1));
/// # Ok::<(), sim_core::SimError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IoApic {
    cpus: usize,
    /// Programmed routes, indexed by `IrqVector::index()` (vectors are
    /// small integers, so a dense table makes `route` — which sits on the
    /// interrupt-delivery and event-scheduling hot paths — a single
    /// array load). Each entry caches the mask's lowest CPU; `None`
    /// means unprogrammed (defaults to CPU0).
    table: Vec<Option<(CpuMask, CpuId)>>,
    /// Delivery counters, indexed like `table`.
    delivered: Vec<u64>,
    retargets: u64,
}

impl IoApic {
    /// Creates a router for a machine with `cpus` CPUs. All vectors
    /// default to CPU0.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    #[must_use]
    pub fn new(cpus: usize) -> Self {
        assert!(cpus > 0, "need at least one cpu");
        IoApic {
            cpus,
            table: Vec::new(),
            delivered: Vec::new(),
            retargets: 0,
        }
    }

    /// Sets the `smp_affinity` mask for `vector`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyAffinityMask`] if the mask selects no CPU
    /// present on this machine (Linux rejects such writes too).
    pub fn set_affinity(&mut self, vector: IrqVector, mask: CpuMask) -> Result<()> {
        let effective = mask.and(CpuMask::all(self.cpus));
        if effective.is_empty() {
            return Err(SimError::EmptyAffinityMask);
        }
        let i = vector.index();
        if self.table.len() <= i {
            self.table.resize(i + 1, None);
        }
        let lowest = effective.first().expect("checked non-empty");
        self.table[i] = Some((effective, lowest));
        Ok(())
    }

    /// The mask currently programmed for `vector` (default: CPU0 only).
    #[must_use]
    pub fn affinity(&self, vector: IrqVector) -> CpuMask {
        match self.table.get(vector.index()) {
            Some(&Some((mask, _))) => mask,
            _ => CpuMask::single(CpuId::new(0)),
        }
    }

    /// Target CPU for a delivery of `vector`: the lowest-numbered CPU in
    /// its mask (static IO-APIC mode — no rotation).
    #[must_use]
    #[inline]
    pub fn route(&self, vector: IrqVector) -> CpuId {
        match self.table.get(vector.index()) {
            Some(&Some((_, lowest))) => lowest,
            _ => CpuId::new(0),
        }
    }

    /// Routes and records a delivery (for `/proc/interrupts`-style
    /// accounting).
    pub fn deliver(&mut self, vector: IrqVector) -> CpuId {
        let cpu = self.route(vector);
        let i = vector.index();
        if self.delivered.len() <= i {
            self.delivered.resize(i + 1, 0);
        }
        self.delivered[i] += 1;
        cpu
    }

    /// Re-programs `vector` to deliver to exactly `cpu` — the dynamic
    /// counterpart of [`IoApic::set_affinity`], used by directed-steering
    /// policies (Flow Director / aRFS) chasing a flow's consuming core.
    /// Counted separately from static affinity writes so experiments can
    /// report re-steering rates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyAffinityMask`] if `cpu` is not present on
    /// this machine.
    pub fn retarget(&mut self, vector: IrqVector, cpu: CpuId) -> Result<()> {
        self.set_affinity(vector, CpuMask::single(cpu))?;
        self.retargets += 1;
        Ok(())
    }

    /// Number of dynamic re-targets performed since the last stats reset.
    #[must_use]
    pub fn retargets(&self) -> u64 {
        self.retargets
    }

    /// Number of deliveries recorded for `vector`.
    #[must_use]
    pub fn delivery_count(&self, vector: IrqVector) -> u64 {
        self.delivered.get(vector.index()).copied().unwrap_or(0)
    }

    /// Total deliveries across all vectors.
    #[must_use]
    pub fn total_deliveries(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// Resets delivery and re-target counters (keeps routing).
    pub fn reset_stats(&mut self) {
        self.delivered.fill(0);
        self.retargets = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_routes_to_cpu0() {
        let apic = IoApic::new(2);
        for v in [0x19u32, 0x1a, 0x27] {
            assert_eq!(apic.route(IrqVector::new(v)), CpuId::new(0));
        }
    }

    #[test]
    fn affinity_redirects() {
        let mut apic = IoApic::new(2);
        let v = IrqVector::new(0x1b);
        apic.set_affinity(v, CpuMask::single(CpuId::new(1)))
            .unwrap();
        assert_eq!(apic.route(v), CpuId::new(1));
        // Others unaffected.
        assert_eq!(apic.route(IrqVector::new(0x19)), CpuId::new(0));
    }

    #[test]
    fn multi_cpu_mask_routes_to_lowest() {
        let mut apic = IoApic::new(4);
        let v = IrqVector::new(0x20);
        apic.set_affinity(v, CpuMask::from_bits(0b1100)).unwrap();
        assert_eq!(apic.route(v), CpuId::new(2));
    }

    #[test]
    fn rejects_offline_cpu_mask() {
        let mut apic = IoApic::new(2);
        let err = apic.set_affinity(IrqVector::new(0x19), CpuMask::single(CpuId::new(7)));
        assert_eq!(err.unwrap_err(), SimError::EmptyAffinityMask);
    }

    #[test]
    fn retarget_redirects_and_counts() {
        let mut apic = IoApic::new(4);
        let v = IrqVector::new(0x19);
        assert_eq!(apic.route(v), CpuId::new(0));
        apic.retarget(v, CpuId::new(3)).unwrap();
        assert_eq!(apic.route(v), CpuId::new(3));
        assert_eq!(apic.retargets(), 1);
        assert!(apic.retarget(v, CpuId::new(9)).is_err());
        assert_eq!(apic.retargets(), 1, "failed retargets are not counted");
        apic.reset_stats();
        assert_eq!(apic.retargets(), 0);
        assert_eq!(apic.route(v), CpuId::new(3), "routing survives reset");
    }

    #[test]
    fn delivery_accounting() {
        let mut apic = IoApic::new(2);
        let v = IrqVector::new(0x19);
        apic.deliver(v);
        apic.deliver(v);
        apic.deliver(IrqVector::new(0x1a));
        assert_eq!(apic.delivery_count(v), 2);
        assert_eq!(apic.total_deliveries(), 3);
        apic.reset_stats();
        assert_eq!(apic.total_deliveries(), 0);
        assert_eq!(apic.route(v), CpuId::new(0));
    }
}
