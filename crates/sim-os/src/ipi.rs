//! Inter-processor interrupts.
//!
//! When execution of the stack spans two CPUs — interrupts and the lower
//! stack layers on CPU0, the process on CPU1 — CPU0 must interrupt CPU1
//! to schedule the continuation. Each IPI flushes the target's pipeline:
//! the machine-clear source the paper identifies as affinity's second
//! major factor. The fabric here records who interrupted whom and why;
//! the CPU model charges the actual clear penalty.

use serde::{Deserialize, Serialize};
use sim_core::CpuId;

/// Why an IPI was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IpiKind {
    /// Kick a remote CPU to reschedule (cross-CPU wakeup).
    Reschedule,
    /// Generic function-call IPI (TLB shootdowns, etc.).
    FunctionCall,
}

impl IpiKind {
    fn index(self) -> usize {
        match self {
            IpiKind::Reschedule => 0,
            IpiKind::FunctionCall => 1,
        }
    }
}

/// Records IPI traffic between CPUs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpiFabric {
    cpus: usize,
    /// `sent[from][to][kind]`.
    sent: Vec<Vec<[u64; 2]>>,
}

impl IpiFabric {
    /// Creates a fabric for `cpus` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    #[must_use]
    pub fn new(cpus: usize) -> Self {
        assert!(cpus > 0, "need at least one cpu");
        IpiFabric {
            cpus,
            sent: vec![vec![[0; 2]; cpus]; cpus],
        }
    }

    /// Records an IPI from `from` to `to`. Self-IPIs are legal but
    /// pointless; they are counted so bugs show up in the numbers.
    ///
    /// # Panics
    ///
    /// Panics if either CPU is out of range.
    pub fn send(&mut self, from: CpuId, to: CpuId, kind: IpiKind) {
        self.sent[from.index()][to.index()][kind.index()] += 1;
    }

    /// IPIs of `kind` received by `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    #[must_use]
    pub fn received(&self, to: CpuId, kind: IpiKind) -> u64 {
        self.sent
            .iter()
            .map(|row| row[to.index()][kind.index()])
            .sum()
    }

    /// All IPIs received by `to`, any kind.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    #[must_use]
    pub fn received_total(&self, to: CpuId) -> u64 {
        self.received(to, IpiKind::Reschedule) + self.received(to, IpiKind::FunctionCall)
    }

    /// Total IPIs in the system.
    #[must_use]
    pub fn total(&self) -> u64 {
        (0..self.cpus)
            .map(|c| self.received_total(CpuId::new(c as u32)))
            .sum()
    }

    /// Resets all counters.
    pub fn reset_stats(&mut self) {
        for row in &mut self.sent {
            for cell in row.iter_mut() {
                *cell = [0; 2];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let mut f = IpiFabric::new(2);
        let (c0, c1) = (CpuId::new(0), CpuId::new(1));
        f.send(c0, c1, IpiKind::Reschedule);
        f.send(c0, c1, IpiKind::Reschedule);
        f.send(c1, c0, IpiKind::FunctionCall);
        assert_eq!(f.received(c1, IpiKind::Reschedule), 2);
        assert_eq!(f.received(c1, IpiKind::FunctionCall), 0);
        assert_eq!(f.received(c0, IpiKind::FunctionCall), 1);
        assert_eq!(f.received_total(c1), 2);
        assert_eq!(f.total(), 3);
    }

    #[test]
    fn reset() {
        let mut f = IpiFabric::new(2);
        f.send(CpuId::new(0), CpuId::new(1), IpiKind::Reschedule);
        f.reset_stats();
        assert_eq!(f.total(), 0);
    }

    #[test]
    fn self_ipi_counted() {
        let mut f = IpiFabric::new(1);
        f.send(CpuId::new(0), CpuId::new(0), IpiKind::Reschedule);
        assert_eq!(f.received_total(CpuId::new(0)), 1);
    }
}
