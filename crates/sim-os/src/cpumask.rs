//! CPU affinity bitmasks.

use std::fmt;

use serde::{Deserialize, Serialize};
use sim_core::CpuId;

/// A set of CPUs, as used for process affinity (`sys_sched_setaffinity`)
/// and interrupt affinity (`/proc/irq/*/smp_affinity`).
///
/// Supports up to 64 CPUs — far beyond the paper's 2P/4P systems.
///
/// # Example
///
/// ```
/// use sim_core::CpuId;
/// use sim_os::CpuMask;
///
/// let mask = CpuMask::single(CpuId::new(1));
/// assert!(mask.contains(CpuId::new(1)));
/// assert!(!mask.contains(CpuId::new(0)));
/// assert_eq!(mask.count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuMask(u64);

impl CpuMask {
    /// The empty mask (invalid as an affinity; useful as an accumulator).
    pub const EMPTY: CpuMask = CpuMask(0);

    /// A mask containing CPUs `0..cpus`.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` exceeds 64.
    #[must_use]
    pub fn all(cpus: usize) -> Self {
        assert!(cpus <= 64, "at most 64 cpus supported");
        if cpus == 64 {
            CpuMask(u64::MAX)
        } else {
            CpuMask((1u64 << cpus) - 1)
        }
    }

    /// A mask containing exactly one CPU.
    ///
    /// # Panics
    ///
    /// Panics if the CPU index is 64 or more.
    #[must_use]
    pub fn single(cpu: CpuId) -> Self {
        assert!(cpu.index() < 64, "at most 64 cpus supported");
        CpuMask(1u64 << cpu.index())
    }

    /// Builds a mask from raw bits (bit *i* = CPU *i*).
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        CpuMask(bits)
    }

    /// The raw bits.
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Whether `cpu` is in the mask.
    #[must_use]
    pub fn contains(self, cpu: CpuId) -> bool {
        cpu.index() < 64 && self.0 & (1u64 << cpu.index()) != 0
    }

    /// Returns the mask with `cpu` added.
    #[must_use]
    pub fn with(self, cpu: CpuId) -> Self {
        CpuMask(self.0 | CpuMask::single(cpu).0)
    }

    /// Returns the mask with `cpu` removed.
    #[must_use]
    pub fn without(self, cpu: CpuId) -> Self {
        CpuMask(self.0 & !CpuMask::single(cpu).0)
    }

    /// Set intersection.
    #[must_use]
    pub fn and(self, other: CpuMask) -> Self {
        CpuMask(self.0 & other.0)
    }

    /// Set union.
    #[must_use]
    pub fn or(self, other: CpuMask) -> Self {
        CpuMask(self.0 | other.0)
    }

    /// True if no CPU is in the mask.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of CPUs in the mask.
    #[must_use]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Lowest-numbered CPU in the mask, if any — the CPU a Linux 2.4
    /// IO-APIC in static mode delivers to.
    #[must_use]
    pub fn first(self) -> Option<CpuId> {
        if self.0 == 0 {
            None
        } else {
            Some(CpuId::new(self.0.trailing_zeros()))
        }
    }

    /// Iterates over member CPUs in ascending order.
    pub fn iter(self) -> impl Iterator<Item = CpuId> {
        (0..64)
            .filter(move |i| self.0 & (1u64 << i) != 0)
            .map(CpuId::new)
    }
}

impl Default for CpuMask {
    /// Defaults to "any CPU" on a 64-CPU universe; schedulers intersect
    /// with the actual CPU count.
    fn default() -> Self {
        CpuMask(u64::MAX)
    }
}

impl fmt::Display for CpuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl FromIterator<CpuId> for CpuMask {
    fn from_iter<I: IntoIterator<Item = CpuId>>(iter: I) -> Self {
        iter.into_iter()
            .fold(CpuMask::EMPTY, |mask, cpu| mask.with(cpu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_single() {
        let m = CpuMask::all(2);
        assert!(m.contains(CpuId::new(0)));
        assert!(m.contains(CpuId::new(1)));
        assert!(!m.contains(CpuId::new(2)));
        assert_eq!(m.count(), 2);
        let s = CpuMask::single(CpuId::new(3));
        assert_eq!(s.count(), 1);
        assert_eq!(s.first(), Some(CpuId::new(3)));
    }

    #[test]
    fn with_without() {
        let m = CpuMask::EMPTY.with(CpuId::new(0)).with(CpuId::new(2));
        assert_eq!(m.count(), 2);
        assert!(!m.without(CpuId::new(0)).contains(CpuId::new(0)));
        assert!(m.without(CpuId::new(0)).contains(CpuId::new(2)));
    }

    #[test]
    fn set_ops() {
        let a = CpuMask::from_bits(0b0011);
        let b = CpuMask::from_bits(0b0110);
        assert_eq!(a.and(b).bits(), 0b0010);
        assert_eq!(a.or(b).bits(), 0b0111);
        assert!(CpuMask::EMPTY.is_empty());
        assert_eq!(CpuMask::EMPTY.first(), None);
    }

    #[test]
    fn iter_ascending() {
        let m = CpuMask::from_bits(0b1010);
        let v: Vec<usize> = m.iter().map(|c| c.index()).collect();
        assert_eq!(v, [1, 3]);
    }

    #[test]
    fn from_iterator() {
        let m: CpuMask = [CpuId::new(0), CpuId::new(5)].into_iter().collect();
        assert_eq!(m.bits(), 0b100001);
    }

    #[test]
    fn sixty_four_cpus() {
        let m = CpuMask::all(64);
        assert_eq!(m.count(), 64);
        assert!(m.contains(CpuId::new(63)));
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_cpus() {
        let _ = CpuMask::all(65);
    }

    #[test]
    fn display_hex() {
        assert_eq!(CpuMask::from_bits(0xff).to_string(), "0xff");
    }
}
