//! # sim-os
//!
//! Operating-system model for the ISPASS 2005 affinity reproduction.
//!
//! The paper's affinity knobs are Linux 2.4 mechanisms: `/proc/irq/*/
//! smp_affinity` bitmasks steering device interrupts, and
//! `sys_sched_setaffinity` pinning processes. The performance story runs
//! through the scheduler ("the scheduler tries to schedule a process onto
//! the same processor it previously ran on; bottom halves are usually
//! scheduled on the same processor where their top halves ran"), through
//! inter-processor interrupts (cross-CPU wakeups), and through spinlock
//! contention. This crate models each of those mechanisms:
//!
//! * [`CpuMask`] — affinity bitmasks (process masks and IRQ
//!   `smp_affinity` masks);
//! * [`Scheduler`] — per-CPU runqueues with a cache-affinity wakeup
//!   policy, optional periodic load balancing, and migration accounting;
//! * [`IoApic`] — static interrupt routing honouring per-vector masks
//!   (defaulting, like Linux 2.4 and NT, to delivering everything to
//!   CPU0);
//! * [`IpiFabric`] — counts and classifies inter-processor interrupts
//!   (rescheduling, generic); the CPU model charges the machine clear;
//! * [`SpinLock`] — the paper's Table 2 spinlock: an atomic
//!   decrement-and-jump acquire path and a `cmpb; repz nop; jle` spin
//!   loop, with instruction/branch/mispredict accounting that collapses
//!   when contention disappears under full affinity;
//! * [`SoftirqQueue`] — per-CPU bottom-half work queues ("the bottom half
//!   follows the top half's CPU");
//! * [`TimerWheel`] — deadline bookkeeping for protocol timers;
//! * [`PmdCore`] — the anti-model: a kernel-bypass busy-poll core that
//!   uses *none* of the above (no IRQ routing, no scheduler, no IPIs),
//!   against which the interrupt stack's affinity costs are measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpumask;
mod ioapic;
mod ipi;
mod pmd;
mod scheduler;
mod softirq;
mod spinlock;
mod task;
mod timer;

pub use cpumask::CpuMask;
pub use ioapic::IoApic;
pub use ipi::{IpiFabric, IpiKind};
pub use pmd::{PmdConfig, PmdCore};
pub use scheduler::{Scheduler, SchedulerConfig, SchedulerStats, WakePlacement};
pub use softirq::SoftirqQueue;
pub use spinlock::{LockAcquisition, SpinLock, SpinLockStats};
pub use task::{Task, TaskState};
pub use timer::TimerWheel;
