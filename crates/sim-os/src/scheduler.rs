//! An O(1)-style SMP scheduler with cache-affinity wakeups and periodic
//! load balancing.
//!
//! The policy distils what the paper relies on from Linux 2.4/2.6:
//!
//! * **Cache affinity**: on wakeup, prefer the CPU the task last ran on,
//!   unless that CPU is noticeably busier than the least-loaded allowed
//!   CPU ("to reduce cache interference, the scheduler tries as much as
//!   possible to schedule a process onto the same processor that it was
//!   previously running on").
//! * **Waker locality**: a task with no history wakes on the waking CPU
//!   when allowed — this is how interrupt affinity *indirectly* produces
//!   process affinity (the bottom half runs on the interrupt's CPU and
//!   wakes the consumer there).
//! * **Load balancing**: runnable tasks migrate from the busiest to the
//!   least-loaded CPU when the imbalance exceeds a threshold, unless
//!   their affinity mask forbids it ("the scheduler will always attempt
//!   to load balance, moving processes from processors with heavier loads
//!   to those with lighter loads").
//! * **Reschedule IPIs**: waking a task onto a *different* CPU than the
//!   waker requires an inter-processor interrupt — the machine-clear
//!   source the paper identifies in the TCP engine.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sim_core::{CpuId, Result, SimError, TaskId};

use crate::cpumask::CpuMask;
use crate::task::{Task, TaskState};

/// Tunables for the scheduler policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Number of CPUs.
    pub cpus: usize,
    /// How much busier (in runnable tasks) the last-run CPU may be than
    /// the least-loaded CPU before a wakeup abandons cache affinity.
    pub wake_imbalance_tolerance: usize,
    /// Minimum queue-length difference for the load balancer to migrate.
    pub balance_threshold: usize,
}

impl SchedulerConfig {
    /// Defaults matching the reproduction's 2P runs.
    #[must_use]
    pub fn new(cpus: usize) -> Self {
        SchedulerConfig {
            cpus,
            wake_imbalance_tolerance: 1,
            balance_threshold: 2,
        }
    }
}

/// Where a wakeup placed a task, and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WakePlacement {
    /// CPU whose runqueue received the task.
    pub cpu: CpuId,
    /// The placement differs from the waking CPU, so a reschedule IPI
    /// must be sent (charged as a machine clear on the target).
    pub needs_resched_ipi: bool,
    /// The task will run on a different CPU than it last ran on.
    pub cold_cache: bool,
}

/// Counters exposed for analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Total wakeups processed.
    pub wakeups: u64,
    /// Wakeups placed away from the task's previous CPU.
    pub wake_migrations: u64,
    /// Tasks moved by the periodic load balancer.
    pub balance_migrations: u64,
    /// Reschedule IPIs required by cross-CPU wakeups.
    pub resched_ipis: u64,
}

/// The SMP scheduler.
///
/// # Example
///
/// ```
/// use sim_core::CpuId;
/// use sim_os::{CpuMask, Scheduler, SchedulerConfig};
///
/// let mut sched = Scheduler::new(SchedulerConfig::new(2));
/// let t = sched.spawn("ttcp0", CpuMask::all(2))?;
/// let placement = sched.wake(t, CpuId::new(0), false)?;
/// assert_eq!(placement.cpu, CpuId::new(0)); // waker locality
/// assert_eq!(sched.pick_next(CpuId::new(0)), Some(t));
/// # Ok::<(), sim_core::SimError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scheduler {
    config: SchedulerConfig,
    tasks: Vec<Task>,
    runqueues: Vec<VecDeque<TaskId>>,
    running: Vec<Option<TaskId>>,
    /// Extra placement weight per CPU for load that is invisible to the
    /// runqueues — interrupt/softirq work. A CPU saturated with
    /// interrupt processing should not attract wakeups just because its
    /// runqueue happens to be empty (the paper's CPU0 pathology).
    pressure: Vec<usize>,
    stats: SchedulerStats,
    /// Bumped by every operation that can change which CPUs have
    /// runnable work (`running`, the runqueues, or a task's affinity).
    /// Lets callers cache derived views — the run loop's ready-CPU set —
    /// and revalidate with one integer compare instead of rescanning
    /// every runqueue per iteration.
    generation: u64,
}

impl Scheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero CPUs.
    #[must_use]
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.cpus > 0, "need at least one cpu");
        Scheduler {
            tasks: Vec::new(),
            runqueues: vec![VecDeque::new(); config.cpus],
            running: vec![None; config.cpus],
            pressure: vec![0; config.cpus],
            stats: SchedulerStats::default(),
            generation: 0,
            config,
        }
    }

    /// The current runnability generation (see the field docs). Any
    /// change to this value invalidates cached ready-CPU views; an
    /// unchanged value guarantees no CPU gained or lost runnable work.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Creates a new (blocked) task with the given affinity.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyAffinityMask`] if the mask selects none of
    /// this machine's CPUs.
    pub fn spawn(&mut self, name: impl Into<String>, affinity: CpuMask) -> Result<TaskId> {
        self.generation += 1;
        let effective = affinity.and(CpuMask::all(self.config.cpus));
        if effective.is_empty() {
            return Err(SimError::EmptyAffinityMask);
        }
        let id = TaskId::new(self.tasks.len() as u32);
        self.tasks.push(Task::new(id, name, effective));
        Ok(id)
    }

    /// Changes a task's affinity (the `sys_sched_setaffinity` model).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyAffinityMask`] for a mask with no CPUs of
    /// this machine, or [`SimError::UnknownId`] for a bad task id.
    pub fn set_affinity(&mut self, task: TaskId, affinity: CpuMask) -> Result<()> {
        self.generation += 1;
        let effective = affinity.and(CpuMask::all(self.config.cpus));
        if effective.is_empty() {
            return Err(SimError::EmptyAffinityMask);
        }
        let t = self.task_mut(task)?;
        t.affinity = effective;
        Ok(())
    }

    /// Immutable access to a task.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad id.
    pub fn task(&self, id: TaskId) -> Result<&Task> {
        self.tasks.get(id.index()).ok_or(SimError::UnknownId {
            kind: "task",
            index: id.index(),
        })
    }

    fn task_mut(&mut self, id: TaskId) -> Result<&mut Task> {
        self.tasks.get_mut(id.index()).ok_or(SimError::UnknownId {
            kind: "task",
            index: id.index(),
        })
    }

    /// Number of runnable tasks queued or running on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn load(&self, cpu: CpuId) -> usize {
        self.runqueues[cpu.index()].len() + usize::from(self.running[cpu.index()].is_some())
    }

    /// Sets the non-runqueue load weight for `cpu` (e.g. interrupt
    /// work). Affects wakeup placement comparisons only.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn set_pressure(&mut self, cpu: CpuId, pressure: usize) {
        self.pressure[cpu.index()] = pressure;
    }

    /// Load as seen by placement decisions: runnable tasks plus the
    /// external pressure weight.
    fn placement_load(&self, cpu: CpuId) -> usize {
        self.load(cpu) + self.pressure[cpu.index()]
    }

    fn least_loaded(&self, allowed: CpuMask) -> CpuId {
        allowed
            .iter()
            .filter(|c| c.index() < self.config.cpus)
            .min_by_key(|&c| (self.placement_load(c), c.index()))
            .expect("allowed mask validated non-empty")
    }

    /// Wakes `task`, choosing a CPU per the policy described in the
    /// the module docs. `from_cpu` is the CPU executing the wakeup
    /// (the bottom half's CPU for socket wakeups).
    ///
    /// With `wake_affine` set — the bottom-half hand-off case — an *idle*
    /// waking CPU claims the task even if it last ran elsewhere: the
    /// woken consumer can run immediately where its data just arrived.
    /// This is the channel through which interrupt affinity "indirectly
    /// leads to process affinity" in the paper's words.
    ///
    /// Waking an already-runnable or running task is a no-op that reports
    /// the task's current placement without an IPI.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownId`] for a bad task id.
    pub fn wake(
        &mut self,
        task: TaskId,
        from_cpu: CpuId,
        wake_affine: bool,
    ) -> Result<WakePlacement> {
        self.generation += 1;
        let (state, last_cpu, affinity) = {
            let t = self.task(task)?;
            (t.state, t.last_cpu, t.affinity)
        };
        if state != TaskState::Blocked {
            // Already runnable/running: report where it is (or would
            // legally run) without moving it.
            let cpu = last_cpu
                .filter(|&c| affinity.contains(c))
                .or_else(|| affinity.contains(from_cpu).then_some(from_cpu))
                .or_else(|| affinity.first())
                .expect("mask validated non-empty");
            return Ok(WakePlacement {
                cpu,
                needs_resched_ipi: false,
                cold_cache: false,
            });
        }

        self.stats.wakeups += 1;
        let least = self.least_loaded(affinity);
        let affine_ok = wake_affine
            && affinity.contains(from_cpu)
            && self.placement_load(from_cpu)
                <= self.placement_load(self.least_loaded(affinity))
                    + self.config.wake_imbalance_tolerance;
        let preferred = if affine_ok {
            from_cpu
        } else {
            match last_cpu {
                Some(prev) if affinity.contains(prev) => prev,
                _ if affinity.contains(from_cpu) => from_cpu,
                _ => least,
            }
        };
        let cpu = if self.placement_load(preferred)
            <= self.placement_load(least) + self.config.wake_imbalance_tolerance
        {
            preferred
        } else {
            least
        };

        let cold_cache = last_cpu.is_some_and(|prev| prev != cpu);
        if cold_cache {
            self.stats.wake_migrations += 1;
        }
        let needs_resched_ipi = cpu != from_cpu;
        if needs_resched_ipi {
            self.stats.resched_ipis += 1;
        }

        let t = self.task_mut(task)?;
        t.state = TaskState::Runnable;
        t.wakeups += 1;
        self.runqueues[cpu.index()].push_back(task);
        Ok(WakePlacement {
            cpu,
            needs_resched_ipi,
            cold_cache,
        })
    }

    /// Dequeues the next task for `cpu` and marks it running there.
    /// Returns `None` when the runqueue is empty (CPU idles).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range or if `cpu` already has a running
    /// task (callers must `yield`/`block` first).
    pub fn pick_next(&mut self, cpu: CpuId) -> Option<TaskId> {
        self.generation += 1;
        assert!(
            self.running[cpu.index()].is_none(),
            "{cpu} already has a running task"
        );
        let task = self.runqueues[cpu.index()].pop_front()?;
        let t = &mut self.tasks[task.index()];
        t.begin_running(cpu);
        self.running[cpu.index()] = Some(task);
        Some(task)
    }

    /// The task currently running on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn current(&self, cpu: CpuId) -> Option<TaskId> {
        self.running[cpu.index()]
    }

    /// Preempts the running task on `cpu` (timeslice expiry): it returns
    /// to the back of the same CPU's runqueue.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn yield_current(&mut self, cpu: CpuId) {
        self.generation += 1;
        if let Some(task) = self.running[cpu.index()].take() {
            self.tasks[task.index()].state = TaskState::Runnable;
            self.runqueues[cpu.index()].push_back(task);
        }
    }

    /// Preempts the running task on `cpu` with Linux 2.4 *global
    /// runqueue* semantics: the expired task becomes runnable on the
    /// least-loaded CPU its affinity allows (ties keep it where it is).
    /// With every device interrupt routed to CPU0, CPU0's effective task
    /// capacity shrinks, so expired tasks continuously drain toward the
    /// other CPUs and back — the migration churn behind the paper's
    /// no-affinity cache behaviour. Pinned tasks never move.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn yield_current_global(&mut self, cpu: CpuId) {
        self.generation += 1;
        let Some(task) = self.running[cpu.index()].take() else {
            return;
        };
        self.tasks[task.index()].state = TaskState::Runnable;
        let affinity = self.tasks[task.index()].affinity;
        let target = affinity
            .iter()
            .filter(|c| c.index() < self.config.cpus)
            .min_by_key(|&c| {
                let tie_break = usize::from(c != cpu); // prefer staying
                (self.placement_load(c), tie_break, c.index())
            })
            .expect("mask validated non-empty");
        if target != cpu {
            self.stats.balance_migrations += 1;
        }
        self.runqueues[target.index()].push_back(task);
    }

    /// Blocks the running task on `cpu` (e.g. `read()` with no data).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn block_current(&mut self, cpu: CpuId) -> Option<TaskId> {
        self.generation += 1;
        let task = self.running[cpu.index()].take()?;
        self.tasks[task.index()].state = TaskState::Blocked;
        Some(task)
    }

    /// Adds cycles to the running task's accounting.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn charge_current(&mut self, cpu: CpuId, cycles: u64) {
        if let Some(task) = self.running[cpu.index()] {
            self.tasks[task.index()].run_cycles += cycles;
        }
    }

    /// Whether [`steal_into`](Self::steal_into) would find a task for
    /// `cpu`: some other runqueue holds a task whose affinity allows it.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn can_steal_into(&self, cpu: CpuId) -> bool {
        if !self.runqueues[cpu.index()].is_empty() {
            return false;
        }
        (0..self.config.cpus).any(|o| {
            o != cpu.index()
                && self.runqueues[o]
                    .iter()
                    .any(|&t| self.tasks[t.index()].affinity.contains(cpu))
        })
    }

    /// Linux 2.4-style idle stealing: an idle `cpu` pulls one runnable
    /// task (affinity permitting) from the busiest other runqueue into
    /// its own. Returns the stolen task, which the caller should then
    /// obtain via [`pick_next`](Self::pick_next).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn steal_into(&mut self, cpu: CpuId) -> Option<TaskId> {
        self.generation += 1;
        if !self.runqueues[cpu.index()].is_empty() {
            return None; // not actually idle
        }
        let busiest = (0..self.config.cpus as u32)
            .map(CpuId::new)
            .filter(|&c| c != cpu)
            .max_by_key(|&c| (self.runqueues[c.index()].len(), c.index()))?;
        if self.runqueues[busiest.index()].is_empty() {
            return None;
        }
        let queue = &mut self.runqueues[busiest.index()];
        let pos = queue
            .iter()
            .rposition(|&t| self.tasks[t.index()].affinity.contains(cpu))?;
        let task = queue.remove(pos).expect("position valid");
        self.runqueues[cpu.index()].push_back(task);
        self.stats.balance_migrations += 1;
        Some(task)
    }

    /// One round of load balancing: repeatedly move a runnable task from
    /// the busiest to the least-loaded CPU while the difference is at
    /// least [`SchedulerConfig::balance_threshold`] and affinity allows.
    /// Returns the migrations performed as `(task, from, to)`.
    pub fn load_balance(&mut self) -> Vec<(TaskId, CpuId, CpuId)> {
        self.generation += 1;
        let mut moves = Vec::new();
        loop {
            let busiest = (0..self.config.cpus as u32)
                .map(CpuId::new)
                .max_by_key(|&c| (self.load(c), c.index()))
                .expect("cpus > 0");
            let idlest = (0..self.config.cpus as u32)
                .map(CpuId::new)
                .min_by_key(|&c| (self.load(c), c.index()))
                .expect("cpus > 0");
            // A move only reduces imbalance if the gap is at least 2
            // (moving across a gap of 1 just swaps the imbalance and
            // would oscillate forever), so clamp the threshold.
            if self.load(busiest) < self.load(idlest) + self.config.balance_threshold.max(2) {
                break;
            }
            // Pull from the back (least-recently queued => coldest cache).
            let queue = &mut self.runqueues[busiest.index()];
            let candidate = queue
                .iter()
                .rposition(|&t| self.tasks[t.index()].affinity.contains(idlest));
            let Some(pos) = candidate else {
                break; // every queued task is pinned away from idlest
            };
            let task = queue.remove(pos).expect("position valid");
            self.runqueues[idlest.index()].push_back(task);
            self.stats.balance_migrations += 1;
            moves.push((task, busiest, idlest));
        }
        moves
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Number of tasks spawned.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Iterates over all tasks.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Resets counters (not task state).
    pub fn reset_stats(&mut self) {
        self.stats = SchedulerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CPU0: CpuId = CpuId::new(0);
    const CPU1: CpuId = CpuId::new(1);

    fn sched2() -> Scheduler {
        Scheduler::new(SchedulerConfig::new(2))
    }

    #[test]
    fn spawn_rejects_empty_mask() {
        let mut s = sched2();
        // Mask selects only CPU 5, which doesn't exist on a 2P machine.
        let err = s.spawn("t", CpuMask::single(CpuId::new(5)));
        assert_eq!(err.unwrap_err(), SimError::EmptyAffinityMask);
    }

    #[test]
    fn wake_prefers_waker_cpu_for_fresh_task() {
        let mut s = sched2();
        let t = s.spawn("t", CpuMask::all(2)).unwrap();
        let p = s.wake(t, CPU1, false).unwrap();
        assert_eq!(p.cpu, CPU1);
        assert!(!p.needs_resched_ipi);
        assert!(!p.cold_cache);
    }

    #[test]
    fn wake_prefers_last_cpu_for_cache_affinity() {
        let mut s = sched2();
        let t = s.spawn("t", CpuMask::all(2)).unwrap();
        s.wake(t, CPU1, false).unwrap();
        assert_eq!(s.pick_next(CPU1), Some(t));
        s.block_current(CPU1);
        // Woken from CPU0, but last ran on CPU1: stays on CPU1 (IPI needed).
        let p = s.wake(t, CPU0, false).unwrap();
        assert_eq!(p.cpu, CPU1);
        assert!(p.needs_resched_ipi);
        assert!(!p.cold_cache);
        assert_eq!(s.stats().resched_ipis, 1);
    }

    #[test]
    fn wake_abandons_cache_affinity_under_imbalance() {
        let mut s = sched2();
        let t = s.spawn("t", CpuMask::all(2)).unwrap();
        s.wake(t, CPU0, false).unwrap();
        s.pick_next(CPU0);
        s.block_current(CPU0);
        // Pile 3 other runnable tasks onto CPU0.
        for i in 0..3 {
            let other = s.spawn(format!("o{i}"), CpuMask::single(CPU0)).unwrap();
            s.wake(other, CPU0, false).unwrap();
        }
        // t last ran on CPU0 but CPU0 is 3 deep vs CPU1 at 0: move.
        let p = s.wake(t, CPU0, false).unwrap();
        assert_eq!(p.cpu, CPU1);
        assert!(p.cold_cache);
        assert_eq!(s.stats().wake_migrations, 1);
    }

    #[test]
    fn wake_respects_affinity_mask() {
        let mut s = sched2();
        let t = s.spawn("pinned", CpuMask::single(CPU1)).unwrap();
        let p = s.wake(t, CPU0, false).unwrap();
        assert_eq!(p.cpu, CPU1);
        assert!(p.needs_resched_ipi);
    }

    #[test]
    fn double_wake_is_noop() {
        let mut s = sched2();
        let t = s.spawn("t", CpuMask::all(2)).unwrap();
        s.wake(t, CPU0, false).unwrap();
        let p = s.wake(t, CPU0, false).unwrap();
        assert!(!p.needs_resched_ipi);
        assert_eq!(s.stats().wakeups, 1);
        assert_eq!(s.load(CPU0), 1, "no duplicate enqueue");
    }

    #[test]
    fn pick_block_yield_cycle() {
        let mut s = sched2();
        let a = s.spawn("a", CpuMask::all(2)).unwrap();
        let b = s.spawn("b", CpuMask::all(2)).unwrap();
        s.wake(a, CPU0, false).unwrap();
        s.wake(b, CPU0, false).unwrap();
        assert_eq!(s.pick_next(CPU0), Some(a));
        assert_eq!(s.current(CPU0), Some(a));
        s.yield_current(CPU0);
        assert_eq!(s.pick_next(CPU0), Some(b));
        s.block_current(CPU0);
        assert_eq!(s.pick_next(CPU0), Some(a));
        assert_eq!(s.task(b).unwrap().state, TaskState::Blocked);
    }

    #[test]
    fn pick_next_empty_is_none() {
        let mut s = sched2();
        assert_eq!(s.pick_next(CPU0), None);
    }

    #[test]
    #[should_panic(expected = "already has a running task")]
    fn double_pick_panics() {
        let mut s = sched2();
        let a = s.spawn("a", CpuMask::all(2)).unwrap();
        let b = s.spawn("b", CpuMask::all(2)).unwrap();
        s.wake(a, CPU0, false).unwrap();
        s.wake(b, CPU0, false).unwrap();
        s.pick_next(CPU0);
        s.pick_next(CPU0);
    }

    #[test]
    fn load_balance_moves_from_busiest() {
        let mut s = sched2();
        for i in 0..4 {
            let t = s.spawn(format!("t{i}"), CpuMask::all(2)).unwrap();
            // Force all onto CPU0 by waking from CPU0 before any history.
            s.wake(t, CPU0, false).unwrap();
        }
        // Wake-time balancing tolerates 1 difference, so CPU1 may have some.
        let before0 = s.load(CPU0);
        let before1 = s.load(CPU1);
        let moves = s.load_balance();
        let after0 = s.load(CPU0);
        let after1 = s.load(CPU1);
        assert!(after0.abs_diff(after1) < s.config().balance_threshold);
        assert_eq!(before0 + before1, after0 + after1);
        assert_eq!(s.stats().balance_migrations as usize, moves.len());
    }

    #[test]
    fn load_balance_respects_pinning() {
        let mut s = sched2();
        for i in 0..4 {
            let t = s.spawn(format!("p{i}"), CpuMask::single(CPU0)).unwrap();
            s.wake(t, CPU0, false).unwrap();
        }
        let moves = s.load_balance();
        assert!(moves.is_empty(), "pinned tasks must not migrate");
        assert_eq!(s.load(CPU0), 4);
    }

    #[test]
    fn set_affinity_validates() {
        let mut s = sched2();
        let t = s.spawn("t", CpuMask::all(2)).unwrap();
        assert!(s.set_affinity(t, CpuMask::single(CpuId::new(9))).is_err());
        s.set_affinity(t, CpuMask::single(CPU1)).unwrap();
        assert_eq!(s.task(t).unwrap().affinity, CpuMask::single(CPU1));
    }

    #[test]
    fn charge_current_accumulates() {
        let mut s = sched2();
        let t = s.spawn("t", CpuMask::all(2)).unwrap();
        s.wake(t, CPU0, false).unwrap();
        s.pick_next(CPU0);
        s.charge_current(CPU0, 100);
        s.charge_current(CPU0, 50);
        assert_eq!(s.task(t).unwrap().run_cycles, 150);
    }

    #[test]
    fn wake_affine_pulls_task_to_idle_waker() {
        let mut s = sched2();
        let t = s.spawn("t", CpuMask::all(2)).unwrap();
        s.wake(t, CPU0, false).unwrap();
        s.pick_next(CPU0);
        s.block_current(CPU0);
        // Bottom half on idle CPU1 wakes the task: affine hand-off wins
        // over cache affinity.
        let p = s.wake(t, CPU1, true).unwrap();
        assert_eq!(p.cpu, CPU1);
        assert!(p.cold_cache);
        assert!(!p.needs_resched_ipi);
    }

    #[test]
    fn wake_affine_ignored_when_waker_busy() {
        let mut s = sched2();
        let t = s.spawn("t", CpuMask::all(2)).unwrap();
        s.wake(t, CPU0, false).unwrap();
        s.pick_next(CPU0);
        s.block_current(CPU0);
        // Make CPU1 clearly busier than idle CPU0 (beyond the wake
        // imbalance tolerance): one running plus one queued task.
        for name in ["o1", "o2"] {
            let other = s.spawn(name, CpuMask::single(CPU1)).unwrap();
            s.wake(other, CPU1, false).unwrap();
        }
        s.pick_next(CPU1);
        let p = s.wake(t, CPU1, true).unwrap();
        assert_eq!(p.cpu, CPU0, "busy waker: cache affinity wins");
    }

    #[test]
    fn wake_affine_respects_pinning() {
        let mut s = sched2();
        let t = s.spawn("pinned", CpuMask::single(CPU0)).unwrap();
        let p = s.wake(t, CPU1, true).unwrap();
        assert_eq!(p.cpu, CPU0);
    }

    #[test]
    fn steal_into_moves_from_busiest() {
        let mut s = sched2();
        for i in 0..3 {
            let t = s.spawn(format!("t{i}"), CpuMask::all(2)).unwrap();
            s.wake(t, CPU0, false).unwrap();
        }
        // CPU0 has queued work (wake tolerance may have spread some);
        // drain CPU1 and steal.
        while s.pick_next(CPU1).is_some() {
            s.block_current(CPU1);
        }
        let before = s.load(CPU0);
        if before > 0 {
            let stolen = s.steal_into(CPU1);
            assert!(stolen.is_some());
            assert_eq!(s.load(CPU0), before - 1);
            assert_eq!(s.pick_next(CPU1), stolen);
        }
    }

    #[test]
    fn steal_into_nothing_to_steal() {
        let mut s = sched2();
        assert_eq!(s.steal_into(CPU0), None);
        // Pinned-away tasks cannot be stolen.
        let t = s.spawn("pinned", CpuMask::single(CPU0)).unwrap();
        s.wake(t, CPU0, false).unwrap();
        assert_eq!(s.steal_into(CPU1), None);
    }

    #[test]
    fn steal_into_noop_when_not_idle() {
        let mut s = sched2();
        let a = s.spawn("a", CpuMask::all(2)).unwrap();
        let b = s.spawn("b", CpuMask::single(CPU0)).unwrap();
        s.wake(a, CPU1, false).unwrap();
        s.wake(b, CPU0, false).unwrap();
        // CPU1 has its own queued task: no stealing.
        assert_eq!(s.steal_into(CPU1), None);
    }

    #[test]
    fn unknown_task_errors() {
        let mut s = sched2();
        let bogus = TaskId::new(42);
        assert!(matches!(
            s.wake(bogus, CPU0, false),
            Err(SimError::UnknownId { kind: "task", .. })
        ));
        assert!(s.task(bogus).is_err());
    }
}
