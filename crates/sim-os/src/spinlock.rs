//! The Linux 2.4 spinlock model (paper Table 2).
//!
//! ```text
//! c02bd319:  lock decb 0x2c(%ebx)    ; atomic decrement, lock=1 when free
//!            js .text.lock.tcp       ; taken only when already held
//!            ...                     ; got it: continue in caller
//! .text.lock.tcp:
//!            cmpb $0x0,0x2c(%ebx)    ; spin: check lock byte
//!            repz nop                ; PAUSE
//!            jle .text.lock.tcp      ; still held: spin again
//!            jmp c02bd319            ; free: retry the atomic acquire
//! ```
//!
//! The paper's observation: under full affinity there is almost no
//! contention, so an acquisition is just `lock decb; js` — two
//! instructions, one (well-predicted) branch. Under no affinity the
//! processor spins, executing three instructions and a branch per
//! iteration, and eats one mispredict on the loop exit. The *ratio* of
//! mispredicted branches therefore looks worse under full affinity (few
//! branches, so the rare mispredict weighs heavily) even though the
//! absolute numbers collapse — exactly the Table 1 "Locks" anomaly.

use serde::{Deserialize, Serialize};
use sim_core::SimRng;

/// Cost model for one acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpinLockCosts {
    /// Cycles for the `lock decb` bus-locked atomic.
    pub atomic_cycles: u64,
    /// Cycles per spin iteration (PAUSE delay plus the compare/branch,
    /// plus the coherence traffic of polling a remotely-held line).
    pub spin_iter_cycles: u64,
    /// Minimum spin iterations when contended.
    pub min_spin: u64,
    /// Maximum spin iterations when contended (exclusive).
    pub max_spin: u64,
    /// Probability that an *uncontended* acquire's `js` branch
    /// mispredicts (cold predictor state / aliasing). Rare, but with only
    /// one branch per acquire each occurrence weighs heavily on the
    /// ratio — the paper's Table 1 "Locks" anomaly.
    pub uncontended_mispredict_rate: f64,
}

impl Default for SpinLockCosts {
    fn default() -> Self {
        SpinLockCosts {
            atomic_cycles: 24,
            spin_iter_cycles: 40,
            min_spin: 50,
            max_spin: 400,
            uncontended_mispredict_rate: 0.03,
        }
    }
}

/// Event accounting for one lock acquisition, to be folded into the
/// "Locks" bin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockAcquisition {
    /// Instructions retired.
    pub instructions: u64,
    /// Branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Whether the lock was contended.
    pub contended: bool,
    /// Spin iterations executed (0 when uncontended).
    pub spin_iterations: u64,
}

/// Cumulative statistics for one lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpinLockStats {
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held.
    pub contended: u64,
    /// Total spin iterations across all acquisitions.
    pub spin_iterations: u64,
}

impl SpinLockStats {
    /// Fraction of acquisitions that were contended.
    #[must_use]
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

/// A modelled spinlock.
///
/// Whether an acquisition is contended is the *caller's* decision — in
/// the machine model it depends on whether another CPU is concurrently
/// inside the same connection's critical sections. The lock turns that
/// decision into instruction/branch/cycle accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpinLock {
    name: String,
    costs: SpinLockCosts,
    stats: SpinLockStats,
}

impl SpinLock {
    /// Creates a lock with default costs.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SpinLock::with_costs(name, SpinLockCosts::default())
    }

    /// Creates a lock with explicit costs.
    ///
    /// # Panics
    ///
    /// Panics if `min_spin >= max_spin`.
    #[must_use]
    pub fn with_costs(name: impl Into<String>, costs: SpinLockCosts) -> Self {
        assert!(costs.min_spin < costs.max_spin, "empty spin range");
        SpinLock {
            name: name.into(),
            costs,
            stats: SpinLockStats::default(),
        }
    }

    /// Lock name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Performs one acquisition.
    ///
    /// `contended` says whether another CPU currently holds the lock;
    /// `rng` draws the spin length when it does. The returned accounting
    /// covers the full acquire (spin included).
    pub fn acquire(&mut self, contended: bool, rng: &mut SimRng) -> LockAcquisition {
        self.stats.acquisitions += 1;
        if !contended {
            // lock decb; js (not taken, almost always predicted).
            let mispredicts = u64::from(rng.chance(self.costs.uncontended_mispredict_rate));
            return LockAcquisition {
                instructions: 2,
                branches: 1,
                mispredicts,
                cycles: self.costs.atomic_cycles + mispredicts * 20,
                contended: false,
                spin_iterations: 0,
            };
        }
        self.stats.contended += 1;
        let iters = rng.range(self.costs.min_spin, self.costs.max_spin);
        self.stats.spin_iterations += iters;
        // Entry: lock decb; js (taken, mispredicted — the uncommon path).
        // Each iteration: cmpb; repz nop; jle (taken).
        // Exit: jle falls through (mispredicted), jmp, retry lock decb; js.
        let instructions = 2 + iters * 3 + 1 + 2;
        let branches = 1 + iters + 1; // js + per-iter jle + jmp (retry js folded)
        let mispredicts = 2; // the js-taken entry and the jle exit
        let cycles = self.costs.atomic_cycles * 2 + iters * self.costs.spin_iter_cycles;
        LockAcquisition {
            instructions,
            branches,
            mispredicts,
            cycles,
            contended: true,
            spin_iterations: iters,
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> SpinLockStats {
        self.stats
    }

    /// Resets counters.
    pub fn reset_stats(&mut self) {
        self.stats = SpinLockStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_is_two_instructions() {
        let mut lock = SpinLock::new("sk_lock");
        let mut rng = SimRng::new(1);
        let a = lock.acquire(false, &mut rng);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.branches, 1);
        assert!(a.mispredicts <= 1);
        assert!(a.cycles >= 24);
        assert!(!a.contended);
    }

    #[test]
    fn contended_scales_with_spin() {
        let mut lock = SpinLock::new("sk_lock");
        let mut rng = SimRng::new(2);
        let a = lock.acquire(true, &mut rng);
        assert!(a.contended);
        assert!(a.spin_iterations >= 50 && a.spin_iterations < 400);
        assert_eq!(a.instructions, 2 + a.spin_iterations * 3 + 3);
        assert_eq!(a.branches, 2 + a.spin_iterations);
        assert_eq!(a.mispredicts, 2);
        assert!(a.cycles > 24);
    }

    #[test]
    fn paper_table1_locks_anomaly_reproduced() {
        // Contended (no affinity) vs uncontended (full affinity): the
        // contended case has far more branches but a *lower* mispredict
        // ratio; the uncontended case has few branches so one mispredict
        // weighs heavily.
        let mut lock = SpinLock::new("l");
        let mut rng = SimRng::new(3);
        let mut no_aff = LockAcquisition::default();
        let mut full_aff = LockAcquisition::default();
        for _ in 0..1000 {
            let c = lock.acquire(true, &mut rng);
            no_aff.instructions += c.instructions;
            no_aff.branches += c.branches;
            no_aff.mispredicts += c.mispredicts;
            let u = lock.acquire(false, &mut rng);
            full_aff.instructions += u.instructions;
            full_aff.branches += u.branches;
            full_aff.mispredicts += u.mispredicts;
        }
        assert!(
            full_aff.instructions * 10 < no_aff.instructions,
            "full-affinity instruction count should be <10% of no-affinity"
        );
        let ratio_no = no_aff.mispredicts as f64 / no_aff.branches as f64;
        let ratio_full = full_aff.mispredicts as f64 / full_aff.branches as f64;
        assert!(
            ratio_full > ratio_no,
            "mispredict *ratio* should look worse under full affinity"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut lock = SpinLock::new("l");
        let mut rng = SimRng::new(4);
        lock.acquire(false, &mut rng);
        lock.acquire(true, &mut rng);
        lock.acquire(true, &mut rng);
        let s = lock.stats();
        assert_eq!(s.acquisitions, 3);
        assert_eq!(s.contended, 2);
        assert!(s.spin_iterations >= 8);
        assert!((s.contention_ratio() - 2.0 / 3.0).abs() < 1e-12);
        lock.reset_stats();
        assert_eq!(lock.stats().acquisitions, 0);
        assert_eq!(SpinLockStats::default().contention_ratio(), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut l1 = SpinLock::new("a");
        let mut l2 = SpinLock::new("a");
        let mut r1 = SimRng::new(9);
        let mut r2 = SimRng::new(9);
        for _ in 0..50 {
            assert_eq!(l1.acquire(true, &mut r1), l2.acquire(true, &mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "empty spin range")]
    fn bad_costs_rejected() {
        let costs = SpinLockCosts {
            min_spin: 5,
            max_spin: 5,
            ..SpinLockCosts::default()
        };
        let _ = SpinLock::with_costs("l", costs);
    }
}
