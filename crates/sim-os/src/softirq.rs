//! Per-CPU bottom-half (softirq) queues.
//!
//! A NIC interrupt's *top half* acknowledges the device and queues the
//! real packet processing as a bottom half; Linux runs that bottom half
//! on the same CPU where the top half executed. That affinity between
//! top and bottom halves is load-bearing for the paper: it is the channel
//! through which IRQ affinity drags the rest of the stack (and then the
//! woken process) onto the interrupt's CPU.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sim_core::CpuId;

/// Per-CPU FIFO queues of deferred work.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoftirqQueue<T> {
    queues: Vec<VecDeque<T>>,
    raised: u64,
    executed: u64,
}

impl<T> SoftirqQueue<T> {
    /// Creates queues for `cpus` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    #[must_use]
    pub fn new(cpus: usize) -> Self {
        assert!(cpus > 0, "need at least one cpu");
        SoftirqQueue {
            queues: (0..cpus).map(|_| VecDeque::new()).collect(),
            raised: 0,
            executed: 0,
        }
    }

    /// Queues `work` on `cpu` (the top half's CPU).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn raise(&mut self, cpu: CpuId, work: T) {
        self.queues[cpu.index()].push_back(work);
        self.raised += 1;
    }

    /// Dequeues the next pending work item for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn take(&mut self, cpu: CpuId) -> Option<T> {
        let work = self.queues[cpu.index()].pop_front();
        if work.is_some() {
            self.executed += 1;
        }
        work
    }

    /// Pending items on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn pending(&self, cpu: CpuId) -> usize {
        self.queues[cpu.index()].len()
    }

    /// Pending items across all CPUs.
    #[must_use]
    pub fn pending_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Total items ever raised.
    #[must_use]
    pub fn raised(&self) -> u64 {
        self.raised
    }

    /// Total items ever executed.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_cpu() {
        let mut q: SoftirqQueue<u32> = SoftirqQueue::new(2);
        let (c0, c1) = (CpuId::new(0), CpuId::new(1));
        q.raise(c0, 1);
        q.raise(c0, 2);
        q.raise(c1, 10);
        assert_eq!(q.pending(c0), 2);
        assert_eq!(q.pending_total(), 3);
        assert_eq!(q.take(c0), Some(1));
        assert_eq!(q.take(c0), Some(2));
        assert_eq!(q.take(c0), None);
        assert_eq!(q.take(c1), Some(10));
        assert_eq!(q.raised(), 3);
        assert_eq!(q.executed(), 3);
    }

    #[test]
    fn bottom_half_stays_on_raising_cpu() {
        let mut q: SoftirqQueue<&str> = SoftirqQueue::new(2);
        q.raise(CpuId::new(1), "rx");
        assert_eq!(q.pending(CpuId::new(0)), 0);
        assert_eq!(q.take(CpuId::new(1)), Some("rx"));
    }

    #[test]
    #[should_panic(expected = "at least one cpu")]
    fn zero_cpus_rejected() {
        let _: SoftirqQueue<()> = SoftirqQueue::new(0);
    }
}
