//! Schedulable tasks.

use serde::{Deserialize, Serialize};
use sim_core::{CpuId, TaskId};

use crate::cpumask::CpuMask;

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Waiting on a runqueue.
    Runnable,
    /// Currently executing on [`Task::last_cpu`].
    Running,
    /// Blocked (e.g. in `read()` waiting for socket data).
    Blocked,
}

/// A schedulable entity — one `ttcp` process in the paper's workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    name: String,
    /// Affinity mask, as set by `sys_sched_setaffinity`.
    pub affinity: CpuMask,
    /// Current state.
    pub state: TaskState,
    /// CPU the task last ran on (cache-affinity hint), if it ever ran.
    pub last_cpu: Option<CpuId>,
    /// Times the task started running on a different CPU than its
    /// previous one (each migration costs cache warmth).
    pub migrations: u64,
    /// Times the task was woken.
    pub wakeups: u64,
    /// Total cycles the task has executed.
    pub run_cycles: u64,
}

impl Task {
    /// Creates a blocked task with the given affinity.
    #[must_use]
    pub fn new(id: TaskId, name: impl Into<String>, affinity: CpuMask) -> Self {
        Task {
            id,
            name: name.into(),
            affinity,
            state: TaskState::Blocked,
            last_cpu: None,
            migrations: 0,
            wakeups: 0,
            run_cycles: 0,
        }
    }

    /// Task id.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Task name (e.g. `ttcp3`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records that the task begins running on `cpu`, counting a
    /// migration if it last ran elsewhere. Returns `true` on migration.
    pub fn begin_running(&mut self, cpu: CpuId) -> bool {
        let migrated = self.last_cpu.is_some_and(|prev| prev != cpu);
        if migrated {
            self.migrations += 1;
        }
        self.last_cpu = Some(cpu);
        self.state = TaskState::Running;
        migrated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_task_is_blocked() {
        let t = Task::new(TaskId::new(0), "ttcp0", CpuMask::all(2));
        assert_eq!(t.state, TaskState::Blocked);
        assert_eq!(t.last_cpu, None);
        assert_eq!(t.name(), "ttcp0");
        assert_eq!(t.id(), TaskId::new(0));
    }

    #[test]
    fn migration_counting() {
        let mut t = Task::new(TaskId::new(0), "t", CpuMask::all(2));
        assert!(!t.begin_running(CpuId::new(0))); // first run: no migration
        assert!(!t.begin_running(CpuId::new(0)));
        assert!(t.begin_running(CpuId::new(1)));
        assert_eq!(t.migrations, 1);
        assert_eq!(t.last_cpu, Some(CpuId::new(1)));
        assert_eq!(t.state, TaskState::Running);
    }
}
