//! Protocol timer bookkeeping.
//!
//! TCP arms retransmit and delayed-ack timers on every transfer; on the
//! paper's lossless fast path they are almost always *cancelled* before
//! expiry, but arming/cancelling them is real work (the "Timers" bin).
//! [`TimerWheel`] provides deadline storage with O(log n) arm/expire and
//! lazily-deleted cancellation.

use std::collections::{BinaryHeap, HashSet};

use serde::{Deserialize, Serialize};
use sim_core::{ScheduledEvent, SimTime};

/// Handle to an armed timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimerId(u64);

/// A deadline queue with cancellation.
///
/// # Example
///
/// ```
/// use sim_core::SimTime;
/// use sim_os::TimerWheel;
///
/// let mut wheel = TimerWheel::new();
/// let id = wheel.arm(SimTime::from_cycles(100), "retransmit");
/// wheel.arm(SimTime::from_cycles(50), "delack");
/// wheel.cancel(id);
/// let fired = wheel.expire(SimTime::from_cycles(200));
/// assert_eq!(fired, vec!["delack"]); // the cancelled timer never fires
/// ```
#[derive(Debug, Clone)]
pub struct TimerWheel<T> {
    heap: BinaryHeap<ScheduledEvent<(TimerId, T)>>,
    cancelled: HashSet<TimerId>,
    next_id: u64,
    armed: u64,
    fired: u64,
    cancelled_count: u64,
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel.
    #[must_use]
    pub fn new() -> Self {
        TimerWheel {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            armed: 0,
            fired: 0,
            cancelled_count: 0,
        }
    }

    /// Arms a timer to fire at `deadline` with `payload`.
    pub fn arm(&mut self, deadline: SimTime, payload: T) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        self.armed += 1;
        self.heap.push(ScheduledEvent {
            time: deadline,
            seq: id.0,
            event: (id, payload),
        });
        id
    }

    /// Cancels a timer. Returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if id.0 >= self.next_id || self.cancelled.contains(&id) {
            return false;
        }
        // A fired timer's id is no longer in the heap; detect lazily by
        // inserting and letting expire() skip it — but report accurately
        // by scanning for liveness (heaps are small: per-connection
        // timer counts).
        let live = self.heap.iter().any(|ev| ev.event.0 == id);
        if live {
            self.cancelled.insert(id);
            self.cancelled_count += 1;
        }
        live
    }

    /// Pops every timer with `deadline <= now`, in deadline order,
    /// skipping cancelled ones.
    pub fn expire(&mut self, now: SimTime) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(ev) = self.heap.peek() {
            if ev.time > now {
                break;
            }
            let ev = self.heap.pop().expect("peeked");
            let (id, payload) = ev.event;
            if self.cancelled.remove(&id) {
                continue;
            }
            self.fired += 1;
            out.push(payload);
        }
        out
    }

    /// Deadline of the earliest live timer.
    #[must_use]
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|ev| !self.cancelled.contains(&ev.event.0))
            .map(|ev| ev.time)
            .min()
    }

    /// Number of live (armed, not cancelled, not fired) timers.
    #[must_use]
    pub fn live(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `(armed, fired, cancelled)` lifetime counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.armed, self.fired, self.cancelled_count)
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.arm(SimTime::from_cycles(30), 3);
        w.arm(SimTime::from_cycles(10), 1);
        w.arm(SimTime::from_cycles(20), 2);
        assert_eq!(w.expire(SimTime::from_cycles(25)), vec![1, 2]);
        assert_eq!(w.expire(SimTime::from_cycles(100)), vec![3]);
        assert_eq!(w.expire(SimTime::from_cycles(200)), Vec::<i32>::new());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut w = TimerWheel::new();
        let a = w.arm(SimTime::from_cycles(10), "a");
        w.arm(SimTime::from_cycles(10), "b");
        assert!(w.cancel(a));
        assert_eq!(w.expire(SimTime::from_cycles(10)), vec!["b"]);
        assert!(!w.cancel(a), "double cancel reports false");
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut w = TimerWheel::new();
        let a = w.arm(SimTime::from_cycles(5), ());
        w.expire(SimTime::from_cycles(5));
        assert!(!w.cancel(a));
    }

    #[test]
    fn next_deadline_skips_cancelled() {
        let mut w = TimerWheel::new();
        let a = w.arm(SimTime::from_cycles(5), ());
        w.arm(SimTime::from_cycles(9), ());
        w.cancel(a);
        assert_eq!(w.next_deadline(), Some(SimTime::from_cycles(9)));
        assert_eq!(w.live(), 1);
    }

    #[test]
    fn stats_track_lifecycle() {
        let mut w = TimerWheel::new();
        let a = w.arm(SimTime::from_cycles(1), ());
        w.arm(SimTime::from_cycles(2), ());
        w.cancel(a);
        w.expire(SimTime::from_cycles(5));
        assert_eq!(w.stats(), (2, 1, 1));
    }

    #[test]
    fn same_deadline_fifo() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_cycles(7);
        for i in 0..10 {
            w.arm(t, i);
        }
        assert_eq!(w.expire(t), (0..10).collect::<Vec<_>>());
    }
}
