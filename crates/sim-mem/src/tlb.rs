//! Translation lookaside buffers.
//!
//! The Pentium 4's ITLB and DTLB are small fully-associative structures;
//! we model a fully-associative LRU array over page numbers. TLB misses
//! trigger page walks whose cycle penalties are charged by the CPU model
//! (Figure 5 uses 30 cycles for ITLB and 36 for DTLB walks).

use serde::{Deserialize, Serialize};

/// Hit/miss counters for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations served from the TLB.
    pub hits: u64,
    /// Translations that required a page walk.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio over all translations (0 when idle).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A fully-associative, LRU translation buffer over page numbers.
///
/// Pages and LRU stamps live in parallel arrays (`pages[i]` pairs with
/// `lru[i]`) so the fully-associative hit scan streams over a dense `u64`
/// array instead of striding over tuples — at 64 entries that scan is the
/// single hottest loop the TLB runs.
///
/// # Example
///
/// ```
/// use sim_mem::Tlb;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.access(10)); // cold miss
/// assert!(tlb.access(10)); // hit
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    pages: Vec<u64>,
    lru: Vec<u64>,
    capacity: usize,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with room for `entries` translations.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "tlb needs at least one entry");
        Tlb {
            pages: Vec::with_capacity(entries),
            lru: Vec::with_capacity(entries),
            capacity: entries,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates `page`, returning `true` on a hit. A miss installs the
    /// translation (evicting the least recently used entry if full).
    pub fn access(&mut self, page: u64) -> bool {
        self.access_n(page, 1)
    }

    /// Translates `page` `n` times in a row, returning `true` when the
    /// first probe hits.
    ///
    /// Bookkeeping is exactly that of `n` sequential [`Tlb::access`] calls
    /// to the same page: the LRU clock advances by `n`, the entry ends up
    /// most recently used, a hit counts `n` hits, and a miss installs the
    /// translation and counts one miss plus `n - 1` trailing hits (the
    /// repeat probes hit the just-installed entry). This lets callers
    /// probe once per *page* when touching a run of lines without any
    /// observable difference from per-line probing.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn access_n(&mut self, page: u64, n: u64) -> bool {
        assert!(n > 0, "access_n needs at least one probe");
        // Hot entries are kept at the back (hits move them there), so the
        // reverse scan usually stops on the first probe. Entry order is
        // free to change: the match is unique, and eviction goes by the
        // LRU stamps, which are distinct clock values.
        if let Some(i) = self.pages.iter().rposition(|&p| p == page) {
            self.clock += n;
            self.stats.hits += n;
            let last = self.pages.len() - 1;
            self.pages.swap(i, last);
            self.lru.swap(i, last);
            self.lru[last] = self.clock;
            return true;
        }
        self.install(page, n);
        false
    }

    /// Miss path of [`Tlb::access_n`]: evict the LRU entry if full and
    /// install the translation.
    #[inline(never)]
    fn install(&mut self, page: u64, n: u64) {
        self.stats.misses += 1;
        self.stats.hits += n - 1;
        if self.pages.len() == self.capacity {
            // The eviction choice only depends on the relative LRU order,
            // which the clock advance cannot change.
            let lru_idx = (0..self.lru.len())
                .min_by_key(|&i| self.lru[i])
                .expect("capacity > 0");
            self.pages.swap_remove(lru_idx);
            self.lru.swap_remove(lru_idx);
        }
        self.clock += n;
        self.pages.push(page);
        self.lru.push(self.clock);
    }

    /// Drops every translation (context switch with address-space change).
    pub fn flush(&mut self) {
        self.pages.clear();
        self.lru.clear();
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets counters, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Number of resident translations.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert!(!t.access(1));
        assert!(t.access(1));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.access(1); // 2 is now LRU
        t.access(3); // evicts 2
        assert!(t.access(1));
        assert!(!t.access(2));
    }

    #[test]
    fn flush_clears() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.flush();
        assert_eq!(t.resident(), 0);
        assert!(!t.access(1));
    }

    #[test]
    fn stats_ratio_and_reset() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(1);
        assert!((t.stats().miss_ratio() - 0.5).abs() < 1e-12);
        t.reset_stats();
        assert_eq!(t.stats().hits, 0);
        assert_eq!(TlbStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn capacity_respected() {
        let mut t = Tlb::new(3);
        for p in 0..10 {
            t.access(p);
        }
        assert_eq!(t.resident(), 3);
    }

    /// `access_n(p, n)` must be indistinguishable from `n` sequential
    /// `access(p)` calls: same stats, same contents, same future behavior.
    fn assert_batched_matches_sequential(capacity: usize, script: &[(u64, u64)]) {
        let mut batched = Tlb::new(capacity);
        let mut sequential = Tlb::new(capacity);
        for &(page, n) in script {
            let b = batched.access_n(page, n);
            let mut first = None;
            for _ in 0..n {
                let hit = sequential.access(page);
                first.get_or_insert(hit);
            }
            assert_eq!(Some(b), first, "first-probe outcome for page {page} x{n}");
            assert_eq!(batched.stats(), sequential.stats());
            assert_eq!(batched.pages, sequential.pages);
            assert_eq!(batched.lru, sequential.lru);
            assert_eq!(batched.clock, sequential.clock);
        }
    }

    #[test]
    fn batched_probes_match_sequential_probes() {
        assert_batched_matches_sequential(
            2,
            &[(1, 3), (2, 1), (1, 2), (3, 4), (2, 1), (1, 1), (1, 5)],
        );
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probe_batch_rejected() {
        let mut t = Tlb::new(2);
        let _ = t.access_n(1, 0);
    }

    proptest::proptest! {
        #[test]
        fn batched_equivalence_holds_for_random_scripts(
            capacity in 1usize..6,
            script in proptest::collection::vec((0u64..8, 1u64..70), 0..40),
        ) {
            assert_batched_matches_sequential(capacity, &script);
        }
    }
}
