//! Translation lookaside buffers.
//!
//! The Pentium 4's ITLB and DTLB are small fully-associative structures;
//! we model a fully-associative LRU array over page numbers. TLB misses
//! trigger page walks whose cycle penalties are charged by the CPU model
//! (Figure 5 uses 30 cycles for ITLB and 36 for DTLB walks).

use serde::{Deserialize, Serialize};

/// Hit/miss counters for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations served from the TLB.
    pub hits: u64,
    /// Translations that required a page walk.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio over all translations (0 when idle).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A fully-associative, LRU translation buffer over page numbers.
///
/// # Example
///
/// ```
/// use sim_mem::Tlb;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.access(10)); // cold miss
/// assert!(tlb.access(10)); // hit
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page, lru)
    capacity: usize,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with room for `entries` translations.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "tlb needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(entries),
            capacity: entries,
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates `page`, returning `true` on a hit. A miss installs the
    /// translation (evicting the least recently used entry if full).
    pub fn access(&mut self, page: u64) -> bool {
        self.clock += 1;
        if let Some(entry) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            entry.1 = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let lru_idx = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.entries.swap_remove(lru_idx);
        }
        self.entries.push((page, self.clock));
        false
    }

    /// Drops every translation (context switch with address-space change).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets counters, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Number of resident translations.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert!(!t.access(1));
        assert!(t.access(1));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.access(1); // 2 is now LRU
        t.access(3); // evicts 2
        assert!(t.access(1));
        assert!(!t.access(2));
    }

    #[test]
    fn flush_clears() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.flush();
        assert_eq!(t.resident(), 0);
        assert!(!t.access(1));
    }

    #[test]
    fn stats_ratio_and_reset() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(1);
        assert!((t.stats().miss_ratio() - 0.5).abs() < 1e-12);
        t.reset_stats();
        assert_eq!(t.stats().hits, 0);
        assert_eq!(TlbStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn capacity_respected() {
        let mut t = Tlb::new(3);
        for p in 0..10 {
            t.access(p);
        }
        assert_eq!(t.resident(), 3);
    }
}
