//! The coherent, multi-CPU memory system.
//!
//! [`MemorySystem`] owns one cache hierarchy per CPU (L1D → L2 → LLC for
//! data, trace cache → L2 → LLC for code, plus ITLB/DTLB) and a directory
//! that keeps the hierarchies coherent, MESI-style:
//!
//! * a **write** by CPU *c* invalidates the line in every other CPU's
//!   caches (they will take an LLC miss on their next access — the
//!   ping-pong the paper's no-affinity mode suffers);
//! * a **read** of a line another CPU holds modified downgrades that copy
//!   to clean (writeback) — the reader still misses its own hierarchy;
//! * **device DMA writes** (arriving packets) invalidate everywhere, so
//!   receive payload is always uncached, exactly the paper's observation
//!   about RX copies;
//! * **device DMA reads** (transmit) only force writebacks.
//!
//! The LLC is kept inclusive: evicting a line from the LLC back-invalidates
//! the inner levels, so "resident in LLC" is an upper bound for the whole
//! hierarchy, matching how the paper reasons about last-level misses.
//!
//! # Hot-path layout
//!
//! Touches dominate simulation time, so the structures they walk are flat:
//!
//! * The directory is a dense `Vec<DirEntry>` indexed by line address.
//!   [`RegionTable`] hands out a contiguous physical range, so the vector
//!   stays small and a default entry (no sharers, no owner) is exactly
//!   equivalent to the absence of an entry in a sparse map.
//! * A CPU's sharer bit is kept **exactly equal to LLC residency** (set by
//!   the fill that lands the line in the LLC, cleared by the inclusive
//!   eviction, the write-invalidation and DMA — the only ways a line
//!   leaves an LLC). With inclusion bounding the inner levels, one
//!   directory read classifies a whole access: a clear bit means every
//!   level misses (the walk fills directly, [`Cache::fill_absent`],
//!   skipping the doomed hit scans), a set bit means the LLC cannot miss
//!   and no remote modified owner can exist (skipping the downgrade
//!   check and the redundant re-record of residency).
//! * The directory keeps per-(region, CPU) **incremental exclusivity
//!   counts** (`excl`): how many of the region's own lines have sharer
//!   set exactly `{cpu}`, updated by delta at each sharer-set mutation
//!   and never recomputed by scan. A region whose count equals its line
//!   count is written (or read) with no directory traffic at all; the
//!   counts also give the write fast path its O(1) exclusivity check.
//! * TLBs are probed once per *page* of a touch instead of once per line
//!   ([`Tlb::access_n`] keeps the bookkeeping identical).
//! * A generation-stamped per-(CPU, region) [`Summary`] records when every
//!   line of a region is resident in the CPU's L1 (`hot`). While the
//!   stamp is current, a touch of a hot region (writes additionally need
//!   the live exclusivity count at full coverage) short-circuits the
//!   per-line coherence-and-hierarchy walk down to the L1 hit
//!   bookkeeping, which is the only part with observable effects. Every
//!   event that could falsify a summary (fills, evictions, invalidations,
//!   DMA writes) advances the region's generation, so the fast path can
//!   never mask a miss or skip an invalidation: observable counters are
//!   bit-identical to the per-line walk. Generations move once per touch
//!   (accumulated masks, [`apply_bumps`]) rather than once per line —
//!   claims only test stamp equality, so the batching is invisible.
//! * The verification scan also records each line's L1 storage slot, so
//!   the fast path updates LRU state by direct index
//!   ([`Cache::touch_resident_run`]) instead of re-running the
//!   set-and-way search per line. Slots can only go stale through events
//!   that bump the generation, so a current summary implies current slots.
//! * Code fetches get the same treatment via [`CodeSummary`]: every fetch
//!   whose span ends up fully resident (all hits, or a span no larger
//!   than the trace cache's set count, where consecutive lines cannot
//!   collide) records the span's trace-cache slots, and the next fetch of
//!   the same span replays the TC bookkeeping by slot. The TC is only
//!   ever changed by the owning CPU's fetch fills (no invalidations or
//!   flushes reach it), so the single bump site is a fill's eviction.

use serde::{Deserialize, Serialize};
use sim_core::CpuId;

use crate::cache::{AccessKind, Cache, CacheStats};

use crate::config::MemoryConfig;
use crate::region::{RegionId, RegionName, RegionPlan, RegionSpan, RegionTable};
use crate::tlb::{Tlb, TlbStats};

/// Per-CPU cache stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CpuCaches {
    l1: Cache,
    l2: Cache,
    llc: Cache,
    tc: Cache,
    itlb: Tlb,
    dtlb: Tlb,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct DirEntry {
    /// Bitmask of CPUs that may hold the line.
    sharers: u32,
    /// CPU holding the line modified, plus one; `0` means no owner.
    /// Packed (instead of `Option<u8>`, whose `None` bit pattern is
    /// unspecified) so the all-zero byte pattern *is* the default entry,
    /// letting bulk provisioning grow the directory with untouched
    /// `alloc_zeroed` pages.
    owner_plus1: u8,
}

impl DirEntry {
    #[inline]
    fn owner(self) -> Option<u8> {
        self.owner_plus1.checked_sub(1)
    }

    #[inline]
    fn owner_is(self, cpu: u8) -> bool {
        self.owner_plus1 == cpu + 1
    }

    #[inline]
    fn set_owner(&mut self, cpu: u8) {
        self.owner_plus1 = cpu + 1;
    }

    #[inline]
    fn clear_owner(&mut self) {
        self.owner_plus1 = 0;
    }

    #[inline]
    fn take_owner(&mut self) -> Option<u8> {
        let o = self.owner();
        self.owner_plus1 = 0;
        o
    }
}

// SAFETY: all-zero bytes decode to `sharers: 0, owner_plus1: 0` — no
// sharers, no owner — which is exactly `DirEntry::default()`.
#[allow(unsafe_code)]
unsafe impl crate::zeroed::ZeroDefault for DirEntry {}

/// Residency summary for one (CPU, region) pair, backing the touch fast
/// path.
///
/// The `hot` claim is trusted only while `verified_gen` matches the
/// (CPU, region) generation in [`MemorySystem::gens`]; every event that
/// could falsify it — an L1 fill or eviction, a coherence invalidation,
/// a directory sharer change, DMA — bumps that generation, so a stale
/// summary simply falls back to the exact per-line walk until a
/// verification scan re-establishes it. Write exclusivity is no longer a
/// stamped claim at all: [`MemorySystem::excl`] tracks it incrementally,
/// so the write fast path reads the live count instead of re-scanning.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Summary {
    /// Value of the region generation (`MemorySystem::gens`) when the
    /// claims were last verified.
    verified_gen: u64,
    /// Value of `change_gen` when a verification scan last failed;
    /// suppresses re-scans until the state moves again.
    failed_gen: u64,
    /// Every line of the region is resident in this CPU's L1, so reads
    /// are pure L1 hits and read coherence is a no-op (a resident line's
    /// owner can only be this CPU or nobody).
    hot: bool,
    /// L1 storage slot of each region line (index `line - first_line`),
    /// recorded by the verification scan. Valid exactly as long as the
    /// summary is: any eviction, invalidation or fill that could move a
    /// line bumps `change_gen` first.
    slots: Vec<u32>,
    /// Recently promoted touch spans (see [`SpanClaim`]). A touch whose
    /// exact span carries a current claim replays by slot even when the
    /// whole region is not resident (`hot` unset). Touch patterns repeat
    /// a handful of distinct spans per region, so a few claims suffice.
    spans: Vec<SpanClaim>,
    /// Round-robin replacement cursor for `spans` when every claim is
    /// still current.
    span_cursor: usize,
}

/// Maximum replayable touch spans remembered per (CPU, region).
const SPAN_CLAIMS: usize = 8;

/// One replayable touch span: while `gen` matches the (CPU, region)
/// generation, lines `first..=last` are fully L1-resident at `slots`,
/// so an exact repeat of the touch is pure L1 hits and read coherence is
/// a no-op (a resident line's owner is this CPU or nobody).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SpanClaim {
    /// Value of the (CPU, region) generation when the claim was recorded.
    gen: u64,
    first: u64,
    last: u64,
    /// The claim came from a write walk, which left every span line with
    /// `sharers == {cpu}` — so a repeated *write* of the span is also
    /// coherence- and directory-free. (The directory owner field is
    /// deliberately not part of the claim: owner state is unobservable,
    /// see [`MemorySystem::dma_read`].)
    owned: bool,
    /// L1 storage slot of `first + i`, recorded during the walk.
    slots: Vec<u32>,
}

impl Default for SpanClaim {
    fn default() -> Self {
        SpanClaim {
            // Never equals a real generation: claims start withdrawn.
            gen: u64::MAX,
            first: 0,
            last: 0,
            owned: false,
            slots: Vec::new(),
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            verified_gen: 0,
            // != change_gen so the first verification scan is allowed.
            failed_gen: u64::MAX,
            hot: false,
            slots: Vec::new(),
            spans: Vec::new(),
            span_cursor: 0,
        }
    }
}

impl Summary {
    #[inline]
    fn is_current(&self, gen: u64) -> bool {
        self.hot && self.verified_gen == gen
    }

    #[inline]
    fn span_matching(&self, gen: u64, first: u64, last: u64, write: bool) -> Option<&SpanClaim> {
        self.spans
            .iter()
            .find(|c| c.gen == gen && c.first == first && c.last == last && (!write || c.owned))
    }
}

/// Residency summary for one (CPU, region) pair on the *code* side: the
/// span of lines the last fully-resident fetch covered, with each line's
/// trace cache slot. Trace-cache contents only change through this CPU's own
/// code fetches (nothing invalidates or flushes the TC), so the only bump
/// site is a TC fill evicting a victim.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CodeSummary {
    change_gen: u64,
    verified_gen: u64,
    span_first: u64,
    span_last: u64,
    /// TC storage slot of `span_first + i` at verification time.
    slots: Vec<u32>,
}

impl Default for CodeSummary {
    fn default() -> Self {
        CodeSummary {
            change_gen: 0,
            // != change_gen so a fresh summary never claims a span.
            verified_gen: u64::MAX,
            span_first: 0,
            span_last: 0,
            slots: Vec::new(),
        }
    }
}

impl CodeSummary {
    #[inline]
    fn bump(&mut self) {
        self.change_gen += 1;
    }

    #[inline]
    fn covers(&self, first: u64, last: u64) -> bool {
        self.verified_gen == self.change_gen && self.span_first == first && self.span_last == last
    }
}

/// Slots per [`LazySlots`] chunk (must be a power of two).
const LAZY_CHUNK: usize = 1 << 12;

/// Flat per-(region, CPU) slot table whose logical length grows in O(1).
///
/// [`Summary`] and [`CodeSummary`] are not zero-default types (they hold
/// `Vec`s and `u64::MAX` sentinels), so the `alloc_zeroed` trick that
/// keeps the directory and the integer tables untouched at construction
/// (see [`crate::zeroed`]) cannot apply. Instead, growth just records the
/// new logical length; a slot's backing chunk materializes to defaults on
/// first *mutable* access, and shared reads of never-written slots see
/// one canonical default instance. A million-flow machine provisions
/// tens of millions of slots but its run only ever touches the regions
/// its workload reaches, so almost all chunks stay unmaterialized.
///
/// Chunked (4096 slots) rather than prefix-grown so a sparse touch at a
/// high region index — e.g. a victim-eviction bump against a late
/// region — materializes one chunk, not the whole prefix.
///
/// Indistinguishable from `Vec<T>` + `resize_with(len, T::default)` to
/// any caller: `get` of an unmaterialized slot returns a default value,
/// and `get_mut` hands out a default the caller may mutate in place.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LazySlots<T> {
    chunks: Vec<Option<Box<[T]>>>,
    len: usize,
    /// What every unmaterialized slot reads as (always `T::default()`).
    default: T,
}

impl<T: Default + Clone> LazySlots<T> {
    fn new() -> Self {
        LazySlots {
            chunks: Vec::new(),
            len: 0,
            default: T::default(),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Grows the logical length; O(chunk count) pointer bookkeeping only.
    fn grow_to(&mut self, len: usize) {
        debug_assert!(len >= self.len, "slot tables never shrink");
        self.len = len;
        let chunks = len.div_ceil(LAZY_CHUNK);
        if self.chunks.len() < chunks {
            self.chunks.resize_with(chunks, || None);
        }
    }

    #[inline]
    fn get(&self, i: usize) -> &T {
        debug_assert!(i < self.len, "slot {i} out of range ({})", self.len);
        match &self.chunks[i / LAZY_CHUNK] {
            Some(c) => &c[i % LAZY_CHUNK],
            None => &self.default,
        }
    }

    #[inline]
    fn get_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(i < self.len, "slot {i} out of range ({})", self.len);
        let chunk = self.chunks[i / LAZY_CHUNK]
            .get_or_insert_with(|| vec![T::default(); LAZY_CHUNK].into_boxed_slice());
        &mut chunk[i % LAZY_CHUNK]
    }
}

/// Result of one data touch: how many lines were accessed and how far each
/// access had to go.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TouchResult {
    /// Cache lines spanned by the touch.
    pub lines: u64,
    /// Accesses that missed L1 (satisfied by L2 or beyond).
    pub l1_misses: u64,
    /// Accesses that missed L2 (satisfied by LLC or beyond).
    pub l2_misses: u64,
    /// Accesses that missed the last-level cache (memory access).
    pub llc_misses: u64,
    /// Data-TLB misses (page walks).
    pub dtlb_misses: u64,
}

impl TouchResult {
    /// Merges another result into this one.
    pub fn merge(&mut self, other: &TouchResult) {
        self.lines += other.lines;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.llc_misses += other.llc_misses;
        self.dtlb_misses += other.dtlb_misses;
    }
}

/// Result of one instruction fetch through the trace cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchResult {
    /// Cache lines of code footprint fetched.
    pub lines: u64,
    /// Trace-cache misses (decode path re-entered).
    pub tc_misses: u64,
    /// Code accesses that missed L2.
    pub l2_misses: u64,
    /// Code accesses that missed the LLC.
    pub llc_misses: u64,
    /// Instruction-TLB misses (page walks).
    pub itlb_misses: u64,
}

impl FetchResult {
    /// Merges another result into this one.
    pub fn merge(&mut self, other: &FetchResult) {
        self.lines += other.lines;
        self.tc_misses += other.tc_misses;
        self.l2_misses += other.l2_misses;
        self.llc_misses += other.llc_misses;
        self.itlb_misses += other.itlb_misses;
    }
}

/// Probes a TLB once per page covered by the line run `[first, last]`.
///
/// Bookkeeping is identical to one probe per line (see [`Tlb::access_n`]);
/// returns the number of page walks, which equals the per-line miss count
/// because within one run only the first probe of a page can miss.
#[inline]
fn probe_pages(tlb: &mut Tlb, first: u64, last: u64, lines_per_page_shift: u32) -> u64 {
    let mut misses = 0;
    let mut line = first;
    while line <= last {
        let page = line >> lines_per_page_shift;
        let page_last = ((page + 1) << lines_per_page_shift) - 1;
        let run = page_last.min(last) - line + 1;
        if !tlb.access_n(page, run) {
            misses += 1;
        }
        line = page_last + 1;
    }
    misses
}

/// The multi-CPU coherent memory system.
///
/// See the module documentation for the coherence rules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemorySystem {
    config: MemoryConfig,
    regions: RegionTable,
    cpus: Vec<CpuCaches>,
    /// Dense directory, indexed by line address. A default entry is
    /// equivalent to "line unknown".
    directory: Vec<DirEntry>,
    /// Region index per page, for attributing cache and directory events
    /// (a touch can run past its region's end, so attribution goes by the
    /// line actually affected, not by the touched region).
    page_region: Vec<u32>,
    /// `summaries[region * cpus + cpu]`: residency fast-path state, flat
    /// and region-contiguous so a touch indexes it with the same offset
    /// arithmetic as `gens`. Lazily materialized (see [`LazySlots`]) so
    /// million-region machines only pay for the slots their run reaches.
    summaries: LazySlots<Summary>,
    /// `gens[region * cpus + cpu]`: the (CPU, region) change generation
    /// guarding that summary's claims. Kept flat and region-contiguous so
    /// the fill path can bump every CPU's view of a region with one short
    /// contiguous run of increments.
    gens: Vec<u64>,
    /// `excl[region * cpus + cpu]`: incremental coherence-directory
    /// aggregate — the number of the region's own lines whose sharer set
    /// is exactly `{cpu}`. Maintained by delta at every directory
    /// mutation ([`excl_delta`]), never recomputed by scan, so write
    /// touches check exclusivity of a whole region in O(1):
    /// `excl == region lines` means a write is coherence- and
    /// directory-free. The directory *owner* is deliberately excluded
    /// from the predicate (see [`MemorySystem::dma_read`]).
    excl: Vec<u32>,
    /// Last line of each region's own range, for bounding which lines
    /// count toward `excl` (touches can run past a region's end into
    /// overflow pages attributed to it; those lines must not count).
    region_last: Vec<u64>,
    /// `code_summaries[region * cpus + cpu]`: trace-cache fast-path state,
    /// laid out (and lazily materialized) like `summaries`.
    code_summaries: LazySlots<CodeSummary>,
    /// Reused per-line sharer-mask buffer for [`MemorySystem::dma_write`]'s
    /// two-pass directory delta (gather sharers, then apply per CPU).
    #[serde(skip)]
    dma_sharers: Vec<u32>,
    /// Reused deferred-coherence buffers for [`MemorySystem::data_touch`]:
    /// remote invalidations `(line, cpu mask)` from writes and remote
    /// downgrades `(line, owner)` from reads, applied after the walk so
    /// the walk loop holds a single CPU's caches borrowed throughout.
    #[serde(skip)]
    remote_invals: Vec<(u64, u32)>,
    #[serde(skip)]
    remote_cleans: Vec<(u64, u8)>,
    /// Reused per-touch accumulator of pending generation bumps,
    /// `(region, cpu mask)`. The walks record which (region, CPU) views
    /// changed and apply all bumps once at the end ([`apply_bumps`])
    /// instead of bumping per line: nothing reads `gens` mid-walk, and
    /// claims only compare stamped generations for equality, so one bump
    /// per touch invalidates exactly the same claims as one per line.
    #[serde(skip)]
    bump_masks: Vec<(u32, u32)>,
    line_shift: u32,
    page_shift: u32,
}

/// Records that every CPU in `mask` must have its view of region `rid`
/// bumped before the touch returns. Touches span one or two regions, so a
/// linear scan of the accumulator beats any map.
#[inline]
fn note_bump(bumps: &mut Vec<(u32, u32)>, rid: u32, mask: u32) {
    for e in bumps.iter_mut() {
        if e.0 == rid {
            e.1 |= mask;
            return;
        }
    }
    bumps.push((rid, mask));
}

/// Applies the accumulated generation bumps. Claims stamped before this
/// touch become stale exactly as they would under per-line bumping; the
/// absolute generation values differ but only equality is ever tested.
#[inline]
fn apply_bumps(gens: &mut [u64], bumps: &[(u32, u32)], ncpus: usize) {
    for &(rid, mask) in bumps {
        let b = rid as usize * ncpus;
        let mut m = mask;
        while m != 0 {
            gens[b + m.trailing_zeros() as usize] += 1;
            m &= m - 1;
        }
    }
}

/// Incremental-directory delta: a line's sharer set changed from `old` to
/// `new`, so the per-(region, CPU) exclusive-line counts at `base` move
/// with it. A set is "exclusive" exactly when it is a single bit.
#[inline]
fn excl_delta(excl: &mut [u32], base: usize, old: u32, new: u32) {
    if old == new {
        return;
    }
    if old.count_ones() == 1 {
        excl[base + old.trailing_zeros() as usize] -= 1;
    }
    if new.count_ones() == 1 {
        excl[base + new.trailing_zeros() as usize] += 1;
    }
}

impl MemorySystem {
    /// Builds a memory system from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`MemoryConfig::validate`]; construct the
    /// config through its helpers to avoid this.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        config.validate().expect("invalid memory configuration");
        let line = config.line_size;
        let cpus: Vec<CpuCaches> = (0..config.cpus)
            .map(|i| CpuCaches {
                l1: Cache::with_geometry(
                    format!("cpu{i}.l1d"),
                    config.l1_size,
                    config.l1_assoc,
                    line,
                ),
                l2: Cache::with_geometry(
                    format!("cpu{i}.l2"),
                    config.l2_size,
                    config.l2_assoc,
                    line,
                ),
                llc: Cache::with_geometry(
                    format!("cpu{i}.llc"),
                    config.llc_size,
                    config.llc_assoc,
                    line,
                ),
                tc: Cache::with_geometry(
                    format!("cpu{i}.tc"),
                    config.tc_size,
                    config.tc_assoc,
                    line,
                ),
                itlb: Tlb::new(config.itlb_entries as usize),
                dtlb: Tlb::new(config.dtlb_entries as usize),
            })
            .collect();
        MemorySystem {
            line_shift: config.line_size.trailing_zeros(),
            page_shift: config.page_size.trailing_zeros(),
            regions: RegionTable::new(config.page_size as u64),
            directory: Vec::new(),
            page_region: Vec::new(),
            summaries: LazySlots::new(),
            gens: Vec::new(),
            excl: Vec::new(),
            region_last: Vec::new(),
            code_summaries: LazySlots::new(),
            dma_sharers: Vec::new(),
            remote_invals: Vec::new(),
            remote_cleans: Vec::new(),
            bump_masks: Vec::new(),
            cpus,
            config,
        }
    }

    /// The configuration this system was built from.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Allocates a named region of simulated memory.
    pub fn add_region(&mut self, name: impl Into<RegionName>, bytes: u64) -> RegionId {
        let id = self.regions.add(name, bytes);
        let (base, size) = {
            let r = self.regions.get(id);
            (r.base(), r.size())
        };
        // A touch starting near the region end runs past it by up to
        // `size - 1` bytes (see `MemRegion::addr`); cover the worst case
        // so line indexing never leaves the flat structures.
        let cover = (base + 2 * size).max(self.regions.footprint());
        let lines = (cover >> self.line_shift) as usize + 1;
        if self.directory.len() < lines {
            self.directory.resize(lines, DirEntry::default());
        }
        let first_page = (base >> self.page_shift) as usize;
        let pages = (cover >> self.page_shift) as usize + 1;
        if self.page_region.len() < pages {
            self.page_region.resize(pages, 0);
        }
        // Authoritative for this region's own pages; trailing overflow
        // pages keep this id until a later region claims them.
        for p in &mut self.page_region[first_page..pages] {
            *p = id.index() as u32;
        }
        let ncpus = self.cpus.len();
        let slots = self.regions.len() * ncpus;
        self.summaries.grow_to(slots);
        self.gens.extend(std::iter::repeat_n(0, ncpus));
        self.excl.extend(std::iter::repeat_n(0, ncpus));
        self.region_last.push((base + size - 1) >> self.line_shift);
        self.code_summaries.grow_to(slots);
        id
    }

    /// Allocates every region in `plan` in one batched pass, returning
    /// the dense id range. Produces state byte-identical to calling
    /// [`add_region`](Self::add_region) once per plan entry, in order —
    /// same `RegionId`s, bases, footprint, directory/page-table lengths,
    /// and page ownership — but pays O(1) resizes instead of O(n).
    ///
    /// Layout-identity argument (property-tested in
    /// `tests/proptests.rs`):
    ///
    /// - **Ids and bases.** `RegionTable::add` is independent of the
    ///   surrounding bookkeeping, so pushing all table entries first
    ///   yields the same ids and bases as the interleaved sequence.
    /// - **Structure lengths.** The incremental path grows `directory`
    ///   and `page_region` monotonically to per-region high-water marks
    ///   (`cover_i`), so the final lengths are the running *maximum*
    ///   over all entries — computed here in one scan, applied in one
    ///   `resize`. The resize fill values (`DirEntry::default()`, page
    ///   owner `0`) match the incremental fills, and cells beyond every
    ///   page-run write end up `0` on both paths.
    /// - **Page ownership.** Each region writes the run
    ///   `[first_page_i, pages_i)`; runs *overlap* (an earlier large
    ///   region's cover can reach past a later small region's), and the
    ///   incremental path resolves overlaps last-writer-wins in
    ///   allocation order. Replaying the same writes in the same order
    ///   over the pre-sized table reproduces the exact final ownership.
    ///   A reverse-order or watermark fill would *not*.
    /// - **Per-CPU vectors.** `summaries`/`gens`/`excl`/
    ///   `code_summaries` grow by exactly `ncpus` defaults per region
    ///   regardless of interleaving; one `resize` to
    ///   `regions.len() * ncpus` is equivalent.
    ///
    /// `cover_i` needs the footprint *as of* entry `i`, which for all
    /// but the last entry equals the next region's base (the table
    /// advances `next_base` to exactly the next region's base), and for
    /// the last entry is the final footprint.
    pub fn add_regions_bulk(&mut self, plan: RegionPlan) -> RegionSpan {
        let n = plan.len();
        let first = self.regions.len();
        let span = RegionSpan::new(first, n);
        if n == 0 {
            return span;
        }
        self.regions.reserve(n);
        for (name, bytes) in plan.into_entries() {
            self.regions.add(name, bytes);
        }
        let footprint = self.regions.footprint();
        let mut max_lines = self.directory.len();
        let mut max_pages = self.page_region.len();
        for i in 0..n {
            let r = self.regions.get(span.get(i));
            let after = if i + 1 < n {
                self.regions.get(span.get(i + 1)).base()
            } else {
                footprint
            };
            let cover = (r.base() + 2 * r.size()).max(after);
            max_lines = max_lines.max((cover >> self.line_shift) as usize + 1);
            max_pages = max_pages.max((cover >> self.page_shift) as usize + 1);
        }
        // Zero-touch growth: the grown tails are fresh `alloc_zeroed`
        // pages (content-identical to the incremental `resize` fills, see
        // `crate::zeroed`), faulted in only where the run later reaches —
        // at million-flow sizes the directory alone is gigabytes, and
        // eagerly dirtying it would dominate construction.
        crate::zeroed::grow_zeroed(&mut self.directory, max_lines);
        crate::zeroed::grow_zeroed(&mut self.page_region, max_pages);
        self.region_last.reserve(n);
        for i in 0..n {
            let id = span.get(i);
            let r = self.regions.get(id);
            let (base, size) = (r.base(), r.size());
            let after = if i + 1 < n {
                self.regions.get(span.get(i + 1)).base()
            } else {
                footprint
            };
            let cover = (base + 2 * size).max(after);
            let first_page = (base >> self.page_shift) as usize;
            let pages = (cover >> self.page_shift) as usize + 1;
            self.page_region[first_page..pages].fill(id.index() as u32);
            self.region_last.push((base + size - 1) >> self.line_shift);
        }
        let ncpus = self.cpus.len();
        let slots = self.regions.len() * ncpus;
        self.summaries.grow_to(slots);
        crate::zeroed::grow_zeroed(&mut self.gens, slots);
        crate::zeroed::grow_zeroed(&mut self.excl, slots);
        self.code_summaries.grow_to(slots);
        span
    }

    /// The region directory.
    #[must_use]
    pub fn regions(&self) -> &RegionTable {
        &self.regions
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Touches `bytes` bytes of data in `region` starting at `offset`
    /// (wrapping at the region end) from `cpu`, as a read or a write.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for the configured CPU count.
    pub fn data_touch(
        &mut self,
        cpu: CpuId,
        region: RegionId,
        offset: u64,
        bytes: u64,
        write: bool,
    ) -> TouchResult {
        let mut result = TouchResult::default();
        if bytes == 0 {
            return result;
        }
        let idx = cpu.index();
        assert!(idx < self.cpus.len(), "cpu {idx} out of range");
        let (start, end, region_first_line, region_last_line) = {
            let r = self.regions.get(region);
            let start = r.addr(offset);
            (
                start,
                start + bytes.min(r.size()),
                r.base() >> self.line_shift,
                (r.base() + r.size() - 1) >> self.line_shift,
            )
        };
        let first = start >> self.line_shift;
        let last = (end - 1) >> self.line_shift;
        result.lines = last - first + 1;
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let lpp = self.page_shift - self.line_shift;

        // One DTLB probe per page instead of per line. The TLB shares no
        // state with the caches or the directory, so probing the pages up
        // front is indistinguishable from interleaving per-line probes.
        result.dtlb_misses = probe_pages(&mut self.cpus[idx].dtlb, first, last, lpp);

        let me_bit = 1u32 << idx;
        let me = idx as u8;
        let MemorySystem {
            cpus,
            directory,
            page_region,
            summaries,
            gens,
            excl,
            region_last,
            remote_invals,
            remote_cleans,
            bump_masks,
            ..
        } = self;
        let ncpus = cpus.len();
        // Flat (region, cpu) offset, shared by `gens`, `excl` and
        // `summaries`.
        let si = region.index() * ncpus + idx;
        let region_lines = region_last_line - region_first_line + 1;

        // Live exclusivity: every one of the region's own lines has
        // sharer set exactly `{me}`. The count is maintained
        // incrementally at each directory mutation, so this is O(1) where
        // the old `owned` stamp needed a verification scan. Exclusive
        // lines need no coherence (no remote copies to invalidate), no
        // directory write (the narrow and the owner store are no-ops —
        // owner state is unobservable, see `dma_read`), and are
        // guaranteed LLC-resident (a sharer bit is set iff the line is in
        // that CPU's inclusive LLC).
        let all_excl = last <= region_last_line
            && region_lines <= u64::from(u32::MAX)
            && excl[si] == region_lines as u32;

        // Fast path: every line is a private L1 hit, so coherence and the
        // directory update are no-ops and only the L1 bookkeeping remains
        // — applied by pre-resolved storage slot, skipping the set scan.
        // Touches that run past the region end (offset wrap) take the
        // slow path — the summary only covers the region's own lines.
        let gen = gens[si];
        let s = summaries.get(si);
        if s.is_current(gen) && (!write || all_excl) && last <= region_last_line {
            let lo = (first - region_first_line) as usize;
            cpus[idx]
                .l1
                .touch_resident_run(&s.slots[lo..lo + result.lines as usize], first, write);
            return result;
        }
        // Span fast path: an exact repeat of the last promoted touch of
        // this region, while nothing that could move or reclassify its
        // lines has happened. The span is fully L1-resident (pure hits),
        // and for writes the span is privately owned, so coherence and
        // the directory are no-ops either way.
        if let Some(c) = s.span_matching(gen, first, last, write) {
            cpus[idx].l1.touch_resident_run(&c.slots, first, write);
            return result;
        }
        // Pick the claim this walk will (try to) establish and borrow its
        // slot buffer, so promotion below is scan-free. Stale claims are
        // recycled first; otherwise replacement round-robins. The choice
        // has no observable effect, so any deterministic policy is fine.
        let (span_idx, mut span_slots) = {
            let s = summaries.get_mut(si);
            let i = if let Some(i) = s.spans.iter().position(|c| c.gen != gen) {
                i
            } else if s.spans.len() < SPAN_CLAIMS {
                s.spans.push(SpanClaim::default());
                s.spans.len() - 1
            } else {
                let i = s.span_cursor;
                s.span_cursor = (i + 1) % SPAN_CLAIMS;
                i
            };
            (i, std::mem::take(&mut s.spans[i].slots))
        };
        span_slots.clear();
        // The walk holds this CPU's caches borrowed for its whole length;
        // the rare coherence actions against *other* CPUs' caches are
        // recorded and applied after the loop. Deferral is exact: the
        // walk's lines are distinct and the walk only reads its own
        // hierarchy and the directory, never a remote cache or `gens` —
        // so a remote invalidation or downgrade commutes with everything
        // between its original position and the end of the walk, and the
        // accumulated generation bumps ([`note_bump`]) can land after the
        // loop too. The directory updates stay in line order.
        remote_invals.clear();
        remote_cleans.clear();
        bump_masks.clear();
        let all_mask = if ncpus >= 32 {
            u32::MAX
        } else {
            (1u32 << ncpus) - 1
        };
        let my = &mut cpus[idx];
        if all_excl {
            // Directory-free walk: every line of the touch has sharer set
            // exactly `{me}`, so there are no remote copies to invalidate
            // or downgrade, the directory narrow/record writes are no-ops,
            // and no other CPU can hold a current claim over any of these
            // lines (a claim needs the line resident in *its* cache, which
            // exclusivity rules out) — so their generation bumps can be
            // skipped along with the directory traffic. Only the cache
            // hierarchy itself is walked; exclusive lines are
            // LLC-resident by the sharer-bit invariant, so the walk can
            // never reach the fill-and-record tail.
            for line in first..=last {
                let l1 = my.l1.access(line, kind);
                span_slots.push(l1.slot);
                if l1.hit {
                    continue;
                }
                result.l1_misses += 1;
                if let Some(victim) = l1.evicted {
                    note_bump(bump_masks, page_region[(victim >> lpp) as usize], me_bit);
                }
                if my.l2.access(line, kind).hit {
                    continue;
                }
                result.l2_misses += 1;
                let llc = my.llc.access(line, kind);
                debug_assert!(
                    llc.hit && llc.evicted.is_none(),
                    "exclusive line {line} must be LLC-resident"
                );
            }
        } else {
            for line in first..=last {
                // Coherence: writes invalidate remote copies; reads
                // downgrade a remote modified owner. For a read, the L1 is
                // probed first: a resident line's directory owner can only
                // be this CPU or nobody (a remote write would have
                // invalidated the copy), so read coherence on an L1 hit is
                // a no-op and the directory — a large flat array — need
                // not be touched at all. The remote downgrade and the
                // local fill operate on disjoint state, so probing before
                // the downgrade is indistinguishable from the
                // coherence-first order.
                match kind {
                    AccessKind::Write => {
                        let entry = &mut directory[line as usize];
                        let old = entry.sharers;
                        let others = old & !me_bit;
                        entry.sharers = old & me_bit;
                        entry.set_owner(me);
                        if others != 0 {
                            let rid = page_region[(line >> lpp) as usize];
                            note_bump(bump_masks, rid, others);
                            if line <= region_last[rid as usize] {
                                excl_delta(excl, rid as usize * ncpus, old, old & me_bit);
                            }
                            remote_invals.push((line, others));
                        }
                        if old & me_bit != 0 {
                            // The sharer bit says the line is in this
                            // CPU's LLC; the inner levels may still miss,
                            // but the LLC cannot, so the walk never
                            // reaches the fill-and-record tail — and the
                            // refill changes no directory state (bit
                            // already set, owner already this CPU), so
                            // no generation moves either.
                            let l1 = my.l1.access(line, kind);
                            span_slots.push(l1.slot);
                            if l1.hit {
                                continue;
                            }
                            result.l1_misses += 1;
                            if let Some(victim) = l1.evicted {
                                note_bump(
                                    bump_masks,
                                    page_region[(victim >> lpp) as usize],
                                    me_bit,
                                );
                            }
                            if my.l2.access(line, kind).hit {
                                continue;
                            }
                            result.l2_misses += 1;
                            let llc = my.llc.access(line, kind);
                            debug_assert!(
                                llc.hit && llc.evicted.is_none(),
                                "shared line {line} must be LLC-resident"
                            );
                        } else {
                            // Clear bit ⇒ in none of this CPU's levels
                            // (sharer bit ⟺ LLC residency, LLC
                            // inclusive): straight fills, no doomed hit
                            // scans at any level.
                            result.l1_misses += 1;
                            result.l2_misses += 1;
                            result.llc_misses += 1;
                            let l1 = my.l1.fill_absent(line, kind);
                            span_slots.push(l1.slot);
                            if let Some(victim) = l1.evicted {
                                note_bump(
                                    bump_masks,
                                    page_region[(victim >> lpp) as usize],
                                    me_bit,
                                );
                            }
                            let _ = my.l2.fill_absent(line, kind);
                            let llc = my.llc.fill_absent(line, kind);
                            if let Some(victim) = llc.evicted {
                                // Inclusive LLC: back-invalidate inner
                                // levels and drop the victim from the
                                // directory's view of this CPU.
                                my.l1.invalidate(victim);
                                my.l2.invalidate(victim);
                                let e = &mut directory[victim as usize];
                                let vold = e.sharers;
                                e.sharers = vold & !me_bit;
                                if e.owner_is(me) {
                                    e.clear_owner();
                                }
                                let vrid = page_region[(victim >> lpp) as usize];
                                if victim <= region_last[vrid as usize] {
                                    excl_delta(excl, vrid as usize * ncpus, vold, vold & !me_bit);
                                }
                                note_bump(bump_masks, vrid, me_bit);
                            }
                            // Record residency: the narrow above left the
                            // set empty, so it becomes exactly `{me}`.
                            // The sharer set grows, so every CPU's view
                            // of this line's region may change.
                            directory[line as usize].sharers = me_bit;
                            let rid = page_region[(line >> lpp) as usize];
                            if line <= region_last[rid as usize] {
                                excl_delta(excl, rid as usize * ncpus, 0, me_bit);
                            }
                            note_bump(bump_masks, rid, all_mask);
                        }
                    }
                    AccessKind::Read => {
                        let l1 = my.l1.access(line, kind);
                        span_slots.push(l1.slot);
                        if l1.hit {
                            continue;
                        }
                        result.l1_misses += 1;
                        if let Some(victim) = l1.evicted {
                            note_bump(bump_masks, page_region[(victim >> lpp) as usize], me_bit);
                        }
                        let entry = &mut directory[line as usize];
                        if entry.sharers & me_bit != 0 {
                            // In this CPU's LLC, so its owner can only be
                            // this CPU or nobody (a remote write would
                            // have cleared the bit): no downgrade, and
                            // the LLC cannot miss. The refill changes no
                            // directory state, so no generation moves.
                            if my.l2.access(line, kind).hit {
                                continue;
                            }
                            result.l2_misses += 1;
                            let llc = my.llc.access(line, kind);
                            debug_assert!(
                                llc.hit && llc.evicted.is_none(),
                                "shared line {line} must be LLC-resident"
                            );
                            continue;
                        }
                        if let Some(owner) = entry.owner() {
                            if owner as usize != idx {
                                // Remote modified copy: force writeback,
                                // keep shared. Owner-only change: the
                                // sharer set is untouched, so `excl`
                                // does not move.
                                entry.clear_owner();
                                note_bump(
                                    bump_masks,
                                    page_region[(line >> lpp) as usize],
                                    1u32 << owner,
                                );
                                remote_cleans.push((line, owner));
                            }
                        }
                        // Clear bit ⇒ absent from every level: straight
                        // fills (see the write path).
                        result.l2_misses += 1;
                        result.llc_misses += 1;
                        let _ = my.l2.fill_absent(line, kind);
                        let llc = my.llc.fill_absent(line, kind);
                        if let Some(victim) = llc.evicted {
                            my.l1.invalidate(victim);
                            my.l2.invalidate(victim);
                            let e = &mut directory[victim as usize];
                            let vold = e.sharers;
                            e.sharers = vold & !me_bit;
                            if e.owner_is(me) {
                                e.clear_owner();
                            }
                            let vrid = page_region[(victim >> lpp) as usize];
                            if victim <= region_last[vrid as usize] {
                                excl_delta(excl, vrid as usize * ncpus, vold, vold & !me_bit);
                            }
                            note_bump(bump_masks, vrid, me_bit);
                        }
                        // Record residency.
                        let entry = &mut directory[line as usize];
                        let old = entry.sharers;
                        entry.sharers = old | me_bit;
                        let rid = page_region[(line >> lpp) as usize];
                        if line <= region_last[rid as usize] {
                            excl_delta(excl, rid as usize * ncpus, old, old | me_bit);
                        }
                        note_bump(bump_masks, rid, all_mask);
                    }
                }
            }
        }
        // Apply the deferred remote-cache coherence actions (see above).
        for &(line, others) in remote_invals.iter() {
            let mut m = others;
            while m != 0 {
                let other = m.trailing_zeros() as usize;
                let c = &mut cpus[other];
                c.l1.invalidate(line);
                c.l2.invalidate(line);
                c.llc.invalidate(line);
                m &= m - 1;
            }
        }
        for &(line, owner) in remote_cleans.iter() {
            let c = &mut cpus[owner as usize];
            c.l1.clean(line);
            c.l2.clean(line);
            c.llc.clean(line);
        }
        apply_bumps(gens, bump_masks, ncpus);

        // Promotion: a touch that never left the L1 cannot have changed
        // anything mid-walk, so a verification scan over the region's own
        // lines can (re-)establish the summary for future touches. The
        // scan only resolves L1 slots now — write exclusivity comes from
        // the live `excl` count, so the directory is not read at all.
        let gen_now = gens[si];
        if result.l1_misses == 0 {
            let s = summaries.get_mut(si);
            if !s.is_current(gen_now)
                && s.failed_gen != gen_now
                && region_lines <= cpus[idx].l1.capacity_lines() as u64
            {
                let l1 = &cpus[idx].l1;
                let mut hot = true;
                s.slots.clear();
                for line in region_first_line..=region_last_line {
                    let Some(slot) = l1.slot_of(line) else {
                        hot = false;
                        break;
                    };
                    s.slots.push(slot);
                }
                if hot {
                    s.hot = true;
                    s.verified_gen = gen_now;
                } else {
                    s.hot = false;
                    s.failed_gen = gen_now;
                }
            }
        }

        // Span promotion: the walk leaves the whole span L1-resident at
        // the recorded slots when it was all hits (hits cannot evict) or
        // when the span fits in distinct L1 sets — consecutive lines,
        // span <= sets — so no fill in this touch can displace an earlier
        // span line. A write walk additionally leaves every span line
        // with sharer set exactly `{cpu}` (the directory-free walk had
        // that as its precondition), making a repeat write coherence-free
        // too. Touches that run past the region end are
        // not claimable: their trailing lines belong to other regions,
        // whose events bump other summaries. The generation is stamped
        // after the walk, absorbing bumps the walk's own victims caused;
        // unclaimable spans leave their claim withdrawn.
        let s = summaries.get_mut(si);
        let c = &mut s.spans[span_idx];
        c.first = first;
        c.last = last;
        c.owned = write;
        c.slots = span_slots;
        c.gen = if last <= region_last_line
            && (result.l1_misses == 0 || result.lines <= cpus[idx].l1.sets() as u64)
        {
            gen_now
        } else {
            gen_now.wrapping_sub(1)
        };
        result
    }

    /// Fetches `bytes` of code footprint from `region` at `offset` on
    /// `cpu`, through the trace cache.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn code_fetch(
        &mut self,
        cpu: CpuId,
        region: RegionId,
        offset: u64,
        bytes: u64,
    ) -> FetchResult {
        let mut result = FetchResult::default();
        if bytes == 0 {
            return result;
        }
        let idx = cpu.index();
        assert!(idx < self.cpus.len(), "cpu {idx} out of range");
        let (start, end) = {
            let r = self.regions.get(region);
            (r.addr(offset), r.addr(offset) + bytes.min(r.size()))
        };
        let first = start >> self.line_shift;
        let last = (end - 1) >> self.line_shift;
        result.lines = last - first + 1;
        let lpp = self.page_shift - self.line_shift;
        result.itlb_misses = probe_pages(&mut self.cpus[idx].itlb, first, last, lpp);
        let me_bit = 1u32 << idx;
        let me = idx as u8;
        let MemorySystem {
            cpus,
            directory,
            page_region,
            summaries: _,
            gens,
            excl,
            region_last,
            code_summaries,
            bump_masks,
            ..
        } = self;
        let ncpus = cpus.len();
        // Flat (region, cpu) offset, shared by `gens` and `code_summaries`.
        let si = region.index() * ncpus + idx;

        // Fast path: the last verified fetch covered exactly this span
        // with every line in the trace cache. An all-hit fetch touches
        // neither the directory nor the outer levels, so only the TC's
        // LRU/hit bookkeeping remains — applied by slot.
        let cs = code_summaries.get(si);
        if cs.covers(first, last) {
            cpus[idx].tc.touch_resident_run(&cs.slots, first, false);
            return result;
        }

        let caches = &mut cpus[idx];
        // Reuse the summary's slot buffer to record where each span line
        // lands, so promotion below costs no extra residency scan. The
        // summary's old claim dies with its slots (see the walk's end).
        let mut slot_buf = std::mem::take(&mut code_summaries.get_mut(si).slots);
        slot_buf.clear();
        bump_masks.clear();
        let all_mask = if ncpus >= 32 {
            u32::MAX
        } else {
            (1u32 << ncpus) - 1
        };
        for line in first..=last {
            let tc = caches.tc.access(line, AccessKind::Read);
            slot_buf.push(tc.slot);
            if tc.hit {
                continue;
            }
            result.tc_misses += 1;
            // The fill may displace another region's code; its span claim
            // dies with the victim.
            if let Some(victim) = tc.evicted {
                let vr = page_region[(victim >> lpp) as usize] as usize;
                code_summaries.get_mut(vr * ncpus + idx).bump();
            }
            if directory[line as usize].sharers & me_bit != 0 {
                // In this CPU's LLC (sharer bit ⟺ LLC residency): the L2
                // may miss but the LLC cannot, and the refill changes no
                // directory state, so no generation moves.
                if caches.l2.access(line, AccessKind::Read).hit {
                    continue;
                }
                result.l2_misses += 1;
                let llc = caches.llc.access(line, AccessKind::Read);
                debug_assert!(
                    llc.hit && llc.evicted.is_none(),
                    "shared code line {line} must be LLC-resident"
                );
                continue;
            }
            // Clear bit ⇒ absent from L2 and LLC (the trace cache is
            // exempt from inclusion, but it was probed above): straight
            // fills, no doomed hit scans.
            result.l2_misses += 1;
            result.llc_misses += 1;
            let _ = caches.l2.fill_absent(line, AccessKind::Read);
            let llc = caches.llc.fill_absent(line, AccessKind::Read);
            if let Some(victim) = llc.evicted {
                caches.l1.invalidate(victim);
                caches.l2.invalidate(victim);
                let e = &mut directory[victim as usize];
                let vold = e.sharers;
                e.sharers = vold & !me_bit;
                if e.owner_is(me) {
                    e.clear_owner();
                }
                let vrid = page_region[(victim >> lpp) as usize];
                if victim <= region_last[vrid as usize] {
                    excl_delta(excl, vrid as usize * ncpus, vold, vold & !me_bit);
                }
                note_bump(bump_masks, vrid, me_bit);
            }
            let e = &mut directory[line as usize];
            let old = e.sharers;
            e.sharers = old | me_bit;
            let rid = page_region[(line >> lpp) as usize];
            if line <= region_last[rid as usize] {
                excl_delta(excl, rid as usize * ncpus, old, old | me_bit);
            }
            note_bump(bump_masks, rid, all_mask);
        }
        apply_bumps(gens, bump_masks, ncpus);

        // Promotion: the walk leaves every span line resident at its
        // recorded slot when either (a) the fetch was all hits (hits
        // cannot evict), or (b) the span fits in distinct trace-cache
        // sets — consecutive lines, span <= sets — so no fill in this
        // fetch can displace an earlier span line, and a resident line
        // keeps its slot (nothing else touches the TC). The generation is
        // stamped *after* the walk, absorbing any bumps the walk's own
        // victims caused. Larger missy spans self-conflict mid-fetch;
        // their slots are stale, so the claim is explicitly withdrawn
        // (the buffer was stolen from the summary above).
        let cs = code_summaries.get_mut(si);
        cs.span_first = first;
        cs.span_last = last;
        cs.slots = slot_buf;
        cs.verified_gen = if result.tc_misses == 0 || result.lines <= caches.tc.sets() as u64 {
            cs.change_gen
        } else {
            cs.change_gen.wrapping_sub(1)
        };
        result
    }

    /// Device DMA write into memory (packet arrival): invalidates the
    /// touched lines in *every* CPU's caches, so the next CPU read is an
    /// LLC miss — receive payload is always uncached.
    pub fn dma_write(&mut self, region: RegionId, offset: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let (start, end) = {
            let r = self.regions.get(region);
            (r.addr(offset), r.addr(offset) + bytes.min(r.size()))
        };
        let first = self.line_of(start);
        let last = self.line_of(end.saturating_sub(1));
        let lpp = self.page_shift - self.line_shift;
        let MemorySystem {
            cpus,
            directory,
            page_region,
            gens,
            excl,
            region_last,
            dma_sharers,
            bump_masks,
            ..
        } = self;
        let ncpus = cpus.len();
        // Two-pass directory delta. Pass 1 reads each line's directory
        // entry once: the sharer mask says exactly which LLCs hold the
        // line (bit ⟺ LLC residency; inclusion bounds the inner levels),
        // so CPUs outside the mask need no cache probe — on them
        // `invalidate` would miss and count nothing — and no generation
        // bump, because any summary claim of theirs involving the line
        // was already false (and its gen already bumped) when the line
        // left their caches. A zero mask also means the entry is already
        // default (an owner is always a sharer), so the reset is skipped
        // too. Generation bumps accumulate per region and land once after
        // the pass, which invalidates the same claims as per-line bumps
        // (only stamp equality is ever tested).
        dma_sharers.clear();
        bump_masks.clear();
        let mut union_mask = 0u32;
        for line in first..=last {
            let entry = &mut directory[line as usize];
            let mask = entry.sharers;
            dma_sharers.push(mask);
            if mask != 0 {
                union_mask |= mask;
                *entry = DirEntry::default();
                let rid = page_region[(line >> lpp) as usize];
                if line <= region_last[rid as usize] {
                    excl_delta(excl, rid as usize * ncpus, mask, 0);
                }
                note_bump(bump_masks, rid, mask);
            }
        }
        apply_bumps(gens, bump_masks, ncpus);
        // Pass 2 applies the delta one CPU at a time, so each CPU's cache
        // arrays are walked in one contiguous burst. Invalidations of
        // distinct lines in distinct caches commute, so the per-CPU order
        // is indistinguishable from the old per-line sweep.
        let mut m = union_mask;
        while m != 0 {
            let cpu = m.trailing_zeros() as usize;
            let bit = 1u32 << cpu;
            let c = &mut cpus[cpu];
            for (i, &mask) in dma_sharers.iter().enumerate() {
                if mask & bit != 0 {
                    let line = first + i as u64;
                    c.l1.invalidate(line);
                    c.l2.invalidate(line);
                    c.llc.invalidate(line);
                }
            }
            m &= m - 1;
        }
    }

    /// Device DMA read from memory (packet transmit): forces writeback of
    /// any modified copy but leaves lines cached.
    ///
    /// Takes the directory owner but bumps no generation: nothing the
    /// fast-path claims assert can be falsified here. Residency claims
    /// (`hot`, spans) are about L1 contents, which a writeback leaves in
    /// place; exclusivity (`excl`, `SpanClaim::owned`) is defined over
    /// the *sharer set* only, which is untouched. That makes the owner
    /// field unobservable outside the directory itself — its only readers
    /// are the remote-read downgrade and this writeback, and both are
    /// no-ops whenever the owner is the accessing CPU or nobody — which
    /// in turn is what lets the fast paths skip re-asserting
    /// `owner = cpu` on repeated writes. The per-transmit generation
    /// churn this used to cause is what kept small-message TX off the
    /// span fast path entirely.
    pub fn dma_read(&mut self, region: RegionId, offset: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let (start, end) = {
            let r = self.regions.get(region);
            (r.addr(offset), r.addr(offset) + bytes.min(r.size()))
        };
        let first = self.line_of(start);
        let last = self.line_of(end.saturating_sub(1));
        let MemorySystem {
            cpus, directory, ..
        } = self;
        for line in first..=last {
            if let Some(owner) = directory[line as usize].take_owner() {
                let c = &mut cpus[owner as usize];
                c.l1.clean(line);
                c.l2.clean(line);
                c.llc.clean(line);
            }
        }
    }

    /// Flushes a CPU's TLBs (address-space switch on context switch).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn flush_tlbs(&mut self, cpu: CpuId) {
        let c = &mut self.cpus[cpu.index()];
        c.itlb.flush();
        c.dtlb.flush();
    }

    /// LLC statistics for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn llc_stats(&self, cpu: CpuId) -> CacheStats {
        self.cpus[cpu.index()].llc.stats()
    }

    /// L2 statistics for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn l2_stats(&self, cpu: CpuId) -> CacheStats {
        self.cpus[cpu.index()].l2.stats()
    }

    /// Trace-cache statistics for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn tc_stats(&self, cpu: CpuId) -> CacheStats {
        self.cpus[cpu.index()].tc.stats()
    }

    /// ITLB/DTLB statistics for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn tlb_stats(&self, cpu: CpuId) -> (TlbStats, TlbStats) {
        let c = &self.cpus[cpu.index()];
        (c.itlb.stats(), c.dtlb.stats())
    }

    /// Fraction of `region`'s lines resident in `cpu`'s LLC — a direct
    /// measure of the cache locality affinity buys.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn resident_fraction(&self, cpu: CpuId, region: RegionId) -> f64 {
        let r = self.regions.get(region);
        let first = self.line_of(r.base());
        let last = self.line_of(r.base() + r.size() - 1);
        let total = last - first + 1;
        let resident = (first..=last)
            .filter(|&l| self.cpus[cpu.index()].llc.contains(l))
            .count();
        resident as f64 / total as f64
    }

    /// Cross-checks the incremental coherence-directory state against a
    /// naive full recompute, panicking on any divergence. Testing hook
    /// for the model-based property tests; not part of the public API.
    ///
    /// Verifies the two invariants the hot paths rely on:
    ///
    /// 1. `excl[region][cpu]` equals the number of the region's own lines
    ///    whose directory sharer set is exactly `{cpu}` (the incremental
    ///    aggregate matches the full-recompute model directory);
    /// 2. a line's sharer bit for a CPU is set **iff** the line is
    ///    resident in that CPU's LLC, and inclusion bounds L1/L2 by the
    ///    LLC (what lets walks turn a clear bit into scan-free fills and
    ///    a set bit into a guaranteed LLC hit).
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    #[doc(hidden)]
    pub fn verify_incremental_state(&self) {
        let ncpus = self.cpus.len();
        for (id, r) in self.regions.iter() {
            let first = self.line_of(r.base());
            let last = self.line_of(r.base() + r.size() - 1);
            let mut naive = vec![0u32; ncpus];
            for line in first..=last {
                let e = &self.directory[line as usize];
                if e.sharers.count_ones() == 1 {
                    naive[e.sharers.trailing_zeros() as usize] += 1;
                }
                for (cpu, c) in self.cpus.iter().enumerate() {
                    let bit = e.sharers & (1u32 << cpu) != 0;
                    let in_llc = c.llc.contains(line);
                    assert_eq!(
                        bit, in_llc,
                        "line {line} of {}: sharer bit {bit} but LLC residency {in_llc} on cpu {cpu}",
                        r.name()
                    );
                    if !in_llc {
                        assert!(
                            !c.l1.contains(line) && !c.l2.contains(line),
                            "line {line} of {}: inner level holds a line outside the LLC on cpu {cpu}",
                            r.name()
                        );
                    }
                }
            }
            let b = id.index() * ncpus;
            for (cpu, &want) in naive.iter().enumerate() {
                assert_eq!(
                    self.excl[b + cpu],
                    want,
                    "excl[{}][{cpu}] diverged from full recompute",
                    r.name()
                );
            }
        }
    }

    /// Snapshot of the construction-time layout: directory and page-table
    /// shape, full page ownership, per-region last-line indexes, and the
    /// per-CPU vector lengths. Two systems built by different provisioning
    /// paths (incremental `add_region` loop vs `add_regions_bulk`) must
    /// compare equal here — the equivalence the bulk path's property test
    /// pins.
    #[must_use]
    pub fn construction_layout(&self) -> ConstructionLayout {
        ConstructionLayout {
            directory_lines: self.directory.len(),
            page_region: self.page_region.clone(),
            region_last: self.region_last.clone(),
            gens: self.gens.clone(),
            excl: self.excl.clone(),
            summary_slots: self.summaries.len(),
            code_summary_slots: self.code_summaries.len(),
        }
    }

    /// Resets every hit/miss counter, keeping cache contents (used to
    /// discard warm-up before measurement, as the paper's steady-state
    /// profiling does).
    pub fn reset_stats(&mut self) {
        for c in &mut self.cpus {
            c.l1.reset_stats();
            c.l2.reset_stats();
            c.llc.reset_stats();
            c.tc.reset_stats();
            c.itlb.reset_stats();
            c.dtlb.reset_stats();
        }
    }
}

/// Construction-layout snapshot returned by
/// [`MemorySystem::construction_layout`]; see there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructionLayout {
    /// `directory` length in cache lines.
    pub directory_lines: usize,
    /// Full page-ownership table (`page -> region index`).
    pub page_region: Vec<u32>,
    /// Per-region last-line index.
    pub region_last: Vec<u64>,
    /// Per-region × per-CPU residency generations.
    pub gens: Vec<u64>,
    /// Per-region × per-CPU live exclusivity counts.
    pub excl: Vec<u32>,
    /// `summaries` slot count (`regions × ncpus`).
    pub summary_slots: usize,
    /// `code_summaries` slot count (`regions × ncpus`).
    pub code_summary_slots: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemoryConfig::tiny(2))
    }

    const CPU0: CpuId = CpuId::new(0);
    const CPU1: CpuId = CpuId::new(1);

    #[test]
    fn cold_then_warm() {
        let mut m = sys();
        let r = m.add_region("ctx", 256);
        let cold = m.data_touch(CPU0, r, 0, 256, false);
        assert_eq!(cold.lines, 4);
        assert_eq!(cold.llc_misses, 4);
        let warm = m.data_touch(CPU0, r, 0, 256, false);
        assert_eq!(warm.llc_misses, 0);
        assert_eq!(warm.l1_misses, 0);
    }

    #[test]
    fn remote_write_invalidates() {
        let mut m = sys();
        let r = m.add_region("ctx", 128);
        m.data_touch(CPU0, r, 0, 128, false);
        assert_eq!(m.data_touch(CPU0, r, 0, 128, false).llc_misses, 0);
        // CPU1 writes the same lines: CPU0's copies must die.
        m.data_touch(CPU1, r, 0, 128, true);
        let again = m.data_touch(CPU0, r, 0, 128, false);
        assert_eq!(again.llc_misses, 2, "remote write should invalidate");
    }

    #[test]
    fn remote_read_of_modified_downgrades_but_keeps_owner_copy() {
        let mut m = sys();
        let r = m.add_region("ctx", 64);
        m.data_touch(CPU0, r, 0, 64, true); // CPU0 holds modified
        let c1 = m.data_touch(CPU1, r, 0, 64, false);
        assert_eq!(c1.llc_misses, 1); // CPU1's own hierarchy is cold
                                      // CPU0 still has the line (now clean): no miss.
        let c0 = m.data_touch(CPU0, r, 0, 64, false);
        assert_eq!(c0.llc_misses, 0);
    }

    #[test]
    fn dma_write_uncaches_everywhere() {
        let mut m = sys();
        let r = m.add_region("payload", 128);
        m.data_touch(CPU0, r, 0, 128, false);
        m.data_touch(CPU1, r, 0, 128, false);
        m.dma_write(r, 0, 128);
        assert_eq!(m.data_touch(CPU0, r, 0, 128, false).llc_misses, 2);
        assert_eq!(m.data_touch(CPU1, r, 0, 128, false).llc_misses, 2);
    }

    #[test]
    fn dma_read_cleans_but_keeps_cached() {
        let mut m = sys();
        let r = m.add_region("txbuf", 64);
        m.data_touch(CPU0, r, 0, 64, true);
        m.dma_read(r, 0, 64);
        // Still cached on CPU0.
        assert_eq!(m.data_touch(CPU0, r, 0, 64, false).llc_misses, 0);
    }

    #[test]
    fn code_fetch_tc_behaviour() {
        let mut m = sys();
        let code = m.add_region("tcp_sendmsg.text", 256);
        let cold = m.code_fetch(CPU0, code, 0, 256);
        assert_eq!(cold.lines, 4);
        assert_eq!(cold.tc_misses, 4);
        let warm = m.code_fetch(CPU0, code, 0, 256);
        assert_eq!(warm.tc_misses, 0);
        // Other CPU has its own trace cache.
        let other = m.code_fetch(CPU1, code, 0, 256);
        assert_eq!(other.tc_misses, 4);
    }

    #[test]
    fn tc_capacity_evictions() {
        let mut m = sys(); // tiny tc: 512B = 8 lines
        let big = m.add_region("big.text", 2048);
        m.code_fetch(CPU0, big, 0, 2048);
        let again = m.code_fetch(CPU0, big, 0, 2048);
        assert!(again.tc_misses > 0, "code bigger than TC must keep missing");
    }

    #[test]
    fn dtlb_misses_on_new_pages() {
        let mut m = sys();
        // tiny config: 4 dtlb entries; touch 6 pages.
        let r = m.add_region("big", 6 * 4096);
        let res = m.data_touch(CPU0, r, 0, 6 * 4096, false);
        assert!(res.dtlb_misses >= 6);
        let again = m.data_touch(CPU0, r, 0, 6 * 4096, false);
        // Working set exceeds DTLB: keeps missing.
        assert!(again.dtlb_misses > 0);
    }

    #[test]
    fn tlb_flush_forces_walks() {
        let mut m = sys();
        let r = m.add_region("x", 64);
        m.data_touch(CPU0, r, 0, 64, false);
        assert_eq!(m.data_touch(CPU0, r, 0, 64, false).dtlb_misses, 0);
        m.flush_tlbs(CPU0);
        assert_eq!(m.data_touch(CPU0, r, 0, 64, false).dtlb_misses, 1);
    }

    #[test]
    fn llc_capacity_eviction_and_inclusion() {
        let mut m = sys(); // llc: 4096B = 64 lines
        let big = m.add_region("big", 16 * 1024);
        m.data_touch(CPU0, big, 0, 16 * 1024, false);
        let again = m.data_touch(CPU0, big, 0, 16 * 1024, false);
        assert!(
            again.llc_misses > 0,
            "working set 4x LLC must thrash: {again:?}"
        );
    }

    #[test]
    fn resident_fraction_reflects_locality() {
        let mut m = sys();
        let ctx = m.add_region("ctx", 256);
        assert_eq!(m.resident_fraction(CPU0, ctx), 0.0);
        m.data_touch(CPU0, ctx, 0, 256, false);
        assert_eq!(m.resident_fraction(CPU0, ctx), 1.0);
        assert_eq!(m.resident_fraction(CPU1, ctx), 0.0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut m = sys();
        let r = m.add_region("x", 256);
        m.data_touch(CPU0, r, 0, 256, false);
        assert!(m.llc_stats(CPU0).misses > 0);
        let (_, d) = m.tlb_stats(CPU0);
        assert!(d.misses > 0);
        m.reset_stats();
        assert_eq!(m.llc_stats(CPU0).misses, 0);
        // Contents preserved: warm access.
        assert_eq!(m.data_touch(CPU0, r, 0, 256, false).llc_misses, 0);
    }

    #[test]
    fn zero_byte_touch_is_noop() {
        let mut m = sys();
        let r = m.add_region("x", 64);
        assert_eq!(m.data_touch(CPU0, r, 0, 0, false), TouchResult::default());
        assert_eq!(m.code_fetch(CPU0, r, 0, 0), FetchResult::default());
    }

    #[test]
    fn merge_results() {
        let mut a = TouchResult {
            lines: 1,
            l1_misses: 1,
            l2_misses: 1,
            llc_misses: 1,
            dtlb_misses: 0,
        };
        a.merge(&a.clone());
        assert_eq!(a.lines, 2);
        assert_eq!(a.llc_misses, 2);
        let mut f = FetchResult {
            lines: 2,
            tc_misses: 1,
            l2_misses: 0,
            llc_misses: 0,
            itlb_misses: 1,
        };
        f.merge(&f.clone());
        assert_eq!(f.tc_misses, 2);
    }

    // --- residency fast-path behaviour ---

    /// Drives a region until its summary is established (two touches: the
    /// first warms, the second is all-hits and triggers the scan).
    fn warm(m: &mut MemorySystem, cpu: CpuId, r: RegionId, bytes: u64, write: bool) {
        m.data_touch(cpu, r, 0, bytes, write);
        let second = m.data_touch(cpu, r, 0, bytes, write);
        assert_eq!(second.l1_misses, 0, "warm touch should be all hits");
    }

    #[test]
    fn fast_path_keeps_counters_and_tlb_stats_exact() {
        let mut m = sys();
        let r = m.add_region("ctx", 256); // 4 lines, 1 page
        warm(&mut m, CPU0, r, 256, false);
        let (_, before) = m.tlb_stats(CPU0);
        let hits_before = m.cpus[0].l1.stats().hits;
        let fast = m.data_touch(CPU0, r, 0, 256, false);
        assert_eq!(
            fast,
            TouchResult {
                lines: 4,
                ..TouchResult::default()
            }
        );
        // One page, four lines: four DTLB hits, four L1 hits — identical
        // to the per-line walk.
        let (_, after) = m.tlb_stats(CPU0);
        assert_eq!(after.hits - before.hits, 4);
        assert_eq!(after.misses, before.misses);
        assert_eq!(m.cpus[0].l1.stats().hits - hits_before, 4);
    }

    #[test]
    fn remote_write_breaks_fast_path() {
        let mut m = sys();
        let r = m.add_region("ctx", 128);
        warm(&mut m, CPU0, r, 128, false);
        m.data_touch(CPU1, r, 0, 128, true);
        let again = m.data_touch(CPU0, r, 0, 128, false);
        assert_eq!(
            again.llc_misses, 2,
            "invalidation must be visible after fast path"
        );
    }

    #[test]
    fn remote_read_breaks_write_fast_path() {
        let mut m = sys();
        let r = m.add_region("ctx", 64);
        warm(&mut m, CPU0, r, 64, true); // hot + owned
        m.data_touch(CPU1, r, 0, 64, false); // downgrade + share
                                             // CPU0's write must go the slow path and invalidate CPU1's copy.
        let w = m.data_touch(CPU0, r, 0, 64, true);
        assert_eq!(w.l1_misses, 0);
        let c1 = m.data_touch(CPU1, r, 0, 64, false);
        assert_eq!(c1.llc_misses, 1, "CPU1's copy must have been invalidated");
    }

    #[test]
    fn eviction_breaks_fast_path() {
        let mut m = sys(); // tiny l1: 1 KB = 16 lines
        let small = m.add_region("small", 256);
        let big = m.add_region("big", 4096);
        warm(&mut m, CPU0, small, 256, false);
        // Thrash the L1 so the small region's lines get evicted.
        m.data_touch(CPU0, big, 0, 4096, false);
        let again = m.data_touch(CPU0, small, 0, 256, false);
        assert!(again.l1_misses > 0, "stale summary must not mask L1 misses");
    }

    #[test]
    fn dma_write_breaks_fast_path() {
        let mut m = sys();
        let r = m.add_region("payload", 128);
        warm(&mut m, CPU0, r, 128, false);
        m.dma_write(r, 0, 128);
        let again = m.data_touch(CPU0, r, 0, 128, false);
        assert_eq!(
            again.llc_misses, 2,
            "DMA write must uncache despite summary"
        );
    }

    #[test]
    fn dma_read_keeps_residency_fast_path() {
        let mut m = sys();
        let r = m.add_region("txbuf", 128);
        warm(&mut m, CPU0, r, 128, true);
        m.dma_read(r, 0, 128); // takes ownership away, leaves lines cached
        let again = m.data_touch(CPU0, r, 0, 128, true);
        assert_eq!(again.l1_misses, 0, "DMA read must not evict");
        // And a later read stays hot too.
        assert_eq!(m.data_touch(CPU0, r, 0, 128, false).l1_misses, 0);
    }

    #[test]
    fn wrapping_touch_past_region_end_stays_exact() {
        let mut m = sys();
        let a = m.add_region("a", 128);
        let b = m.add_region("b", 128);
        warm(&mut m, CPU0, b, 128, false);
        // Touch `a` starting at its last line with a full-size length:
        // runs past the region end into the following pages.
        let bleed = m.data_touch(CPU0, a, 64, 128, false);
        assert_eq!(bleed.lines, 2);
        // `b`'s lines were untouched; its fast path must still be exact.
        let again = m.data_touch(CPU0, b, 0, 128, false);
        assert_eq!(again.l1_misses, 0);
    }

    #[test]
    fn fast_path_never_engages_for_regions_larger_than_l1() {
        let mut m = sys(); // tiny l1: 1 KB
        let big = m.add_region("big", 2048);
        m.data_touch(CPU0, big, 0, 2048, false);
        m.data_touch(CPU0, big, 0, 2048, false);
        // Lines wrap through the L1; misses must keep being reported.
        let again = m.data_touch(CPU0, big, 0, 2048, false);
        assert!(again.l1_misses > 0);
    }
}
