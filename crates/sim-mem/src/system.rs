//! The coherent, multi-CPU memory system.
//!
//! [`MemorySystem`] owns one cache hierarchy per CPU (L1D → L2 → LLC for
//! data, trace cache → L2 → LLC for code, plus ITLB/DTLB) and a directory
//! that keeps the hierarchies coherent, MESI-style:
//!
//! * a **write** by CPU *c* invalidates the line in every other CPU's
//!   caches (they will take an LLC miss on their next access — the
//!   ping-pong the paper's no-affinity mode suffers);
//! * a **read** of a line another CPU holds modified downgrades that copy
//!   to clean (writeback) — the reader still misses its own hierarchy;
//! * **device DMA writes** (arriving packets) invalidate everywhere, so
//!   receive payload is always uncached, exactly the paper's observation
//!   about RX copies;
//! * **device DMA reads** (transmit) only force writebacks.
//!
//! The LLC is kept inclusive: evicting a line from the LLC back-invalidates
//! the inner levels, so "resident in LLC" is an upper bound for the whole
//! hierarchy, matching how the paper reasons about last-level misses.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sim_core::CpuId;

use crate::cache::{AccessKind, Cache, CacheStats};
use crate::config::MemoryConfig;
use crate::region::{RegionId, RegionTable};
use crate::tlb::{Tlb, TlbStats};

/// Per-CPU cache stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CpuCaches {
    l1: Cache,
    l2: Cache,
    llc: Cache,
    tc: Cache,
    itlb: Tlb,
    dtlb: Tlb,
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct DirEntry {
    /// Bitmask of CPUs that may hold the line.
    sharers: u32,
    /// CPU holding the line modified, if any.
    owner: Option<u8>,
}

/// Result of one data touch: how many lines were accessed and how far each
/// access had to go.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TouchResult {
    /// Cache lines spanned by the touch.
    pub lines: u64,
    /// Accesses that missed L1 (satisfied by L2 or beyond).
    pub l1_misses: u64,
    /// Accesses that missed L2 (satisfied by LLC or beyond).
    pub l2_misses: u64,
    /// Accesses that missed the last-level cache (memory access).
    pub llc_misses: u64,
    /// Data-TLB misses (page walks).
    pub dtlb_misses: u64,
}

impl TouchResult {
    /// Merges another result into this one.
    pub fn merge(&mut self, other: &TouchResult) {
        self.lines += other.lines;
        self.l1_misses += other.l1_misses;
        self.l2_misses += other.l2_misses;
        self.llc_misses += other.llc_misses;
        self.dtlb_misses += other.dtlb_misses;
    }
}

/// Result of one instruction fetch through the trace cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchResult {
    /// Cache lines of code footprint fetched.
    pub lines: u64,
    /// Trace-cache misses (decode path re-entered).
    pub tc_misses: u64,
    /// Code accesses that missed L2.
    pub l2_misses: u64,
    /// Code accesses that missed the LLC.
    pub llc_misses: u64,
    /// Instruction-TLB misses (page walks).
    pub itlb_misses: u64,
}

impl FetchResult {
    /// Merges another result into this one.
    pub fn merge(&mut self, other: &FetchResult) {
        self.lines += other.lines;
        self.tc_misses += other.tc_misses;
        self.l2_misses += other.l2_misses;
        self.llc_misses += other.llc_misses;
        self.itlb_misses += other.itlb_misses;
    }
}

/// The multi-CPU coherent memory system.
///
/// See the module documentation for the coherence rules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemorySystem {
    config: MemoryConfig,
    regions: RegionTable,
    cpus: Vec<CpuCaches>,
    directory: HashMap<u64, DirEntry>,
    line_shift: u32,
    page_shift: u32,
}

impl MemorySystem {
    /// Builds a memory system from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`MemoryConfig::validate`]; construct the
    /// config through its helpers to avoid this.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        config.validate().expect("invalid memory configuration");
        let line = config.line_size;
        let cpus = (0..config.cpus)
            .map(|i| CpuCaches {
                l1: Cache::with_geometry(format!("cpu{i}.l1d"), config.l1_size, config.l1_assoc, line),
                l2: Cache::with_geometry(format!("cpu{i}.l2"), config.l2_size, config.l2_assoc, line),
                llc: Cache::with_geometry(
                    format!("cpu{i}.llc"),
                    config.llc_size,
                    config.llc_assoc,
                    line,
                ),
                tc: Cache::with_geometry(format!("cpu{i}.tc"), config.tc_size, config.tc_assoc, line),
                itlb: Tlb::new(config.itlb_entries as usize),
                dtlb: Tlb::new(config.dtlb_entries as usize),
            })
            .collect();
        MemorySystem {
            line_shift: config.line_size.trailing_zeros(),
            page_shift: config.page_size.trailing_zeros(),
            regions: RegionTable::new(config.page_size as u64),
            directory: HashMap::new(),
            cpus,
            config,
        }
    }

    /// The configuration this system was built from.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Allocates a named region of simulated memory.
    pub fn add_region(&mut self, name: impl Into<String>, bytes: u64) -> RegionId {
        self.regions.add(name, bytes)
    }

    /// The region directory.
    #[must_use]
    pub fn regions(&self) -> &RegionTable {
        &self.regions
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Touches `bytes` bytes of data in `region` starting at `offset`
    /// (wrapping at the region end) from `cpu`, as a read or a write.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for the configured CPU count.
    pub fn data_touch(
        &mut self,
        cpu: CpuId,
        region: RegionId,
        offset: u64,
        bytes: u64,
        write: bool,
    ) -> TouchResult {
        let mut result = TouchResult::default();
        if bytes == 0 {
            return result;
        }
        let (start, end) = {
            let r = self.regions.get(region);
            (r.addr(offset), r.addr(offset) + bytes.min(r.size()))
        };
        let first = self.line_of(start);
        let last = self.line_of(end.saturating_sub(1));
        let kind = if write { AccessKind::Write } else { AccessKind::Read };
        for line in first..=last {
            result.lines += 1;
            self.access_data_line(cpu, line, kind, &mut result);
        }
        result
    }

    fn access_data_line(&mut self, cpu: CpuId, line: u64, kind: AccessKind, out: &mut TouchResult) {
        let idx = cpu.index();
        assert!(idx < self.cpus.len(), "cpu {idx} out of range");

        // Translate.
        let page = line >> (self.page_shift - self.line_shift);
        if !self.cpus[idx].dtlb.access(page) {
            out.dtlb_misses += 1;
        }

        // Coherence first: writes invalidate remote copies; reads downgrade
        // a remote modified owner.
        self.coherence_before(cpu, line, kind);

        let caches = &mut self.cpus[idx];
        let l1 = caches.l1.access(line, kind);
        if l1.hit {
            return;
        }
        out.l1_misses += 1;
        let l2 = caches.l2.access(line, kind);
        if l2.hit {
            return;
        }
        out.l2_misses += 1;
        let llc = caches.llc.access(line, kind);
        if let Some(victim) = llc.evicted {
            // Inclusive LLC: back-invalidate inner levels and drop the
            // victim from the directory's view of this CPU.
            caches.l1.invalidate(victim);
            caches.l2.invalidate(victim);
            self.remove_sharer(victim, idx);
        }
        if !llc.hit {
            out.llc_misses += 1;
        }
        // Record residency.
        let entry = self.directory.entry(line).or_default();
        entry.sharers |= 1 << idx;
        if kind == AccessKind::Write {
            entry.owner = Some(idx as u8);
        }
    }

    fn coherence_before(&mut self, cpu: CpuId, line: u64, kind: AccessKind) {
        let idx = cpu.index();
        let Some(entry) = self.directory.get_mut(&line) else {
            if kind == AccessKind::Write {
                self.directory.insert(
                    line,
                    DirEntry {
                        sharers: 1 << idx,
                        owner: Some(idx as u8),
                    },
                );
            }
            return;
        };
        match kind {
            AccessKind::Write => {
                // Invalidate every other sharer.
                let others = entry.sharers & !(1 << idx);
                entry.sharers &= 1 << idx;
                entry.owner = Some(idx as u8);
                if others != 0 {
                    for other in 0..self.cpus.len() {
                        if others & (1 << other) != 0 {
                            let c = &mut self.cpus[other];
                            c.l1.invalidate(line);
                            c.l2.invalidate(line);
                            c.llc.invalidate(line);
                        }
                    }
                }
            }
            AccessKind::Read => {
                if let Some(owner) = entry.owner {
                    if owner as usize != idx {
                        // Remote modified copy: force writeback, keep shared.
                        let c = &mut self.cpus[owner as usize];
                        c.l1.clean(line);
                        c.l2.clean(line);
                        c.llc.clean(line);
                        entry.owner = None;
                    }
                }
            }
        }
    }

    fn remove_sharer(&mut self, line: u64, cpu_idx: usize) {
        if let Some(entry) = self.directory.get_mut(&line) {
            entry.sharers &= !(1 << cpu_idx);
            if entry.owner == Some(cpu_idx as u8) {
                entry.owner = None;
            }
            if entry.sharers == 0 {
                self.directory.remove(&line);
            }
        }
    }

    /// Fetches `bytes` of code footprint from `region` at `offset` on
    /// `cpu`, through the trace cache.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn code_fetch(&mut self, cpu: CpuId, region: RegionId, offset: u64, bytes: u64) -> FetchResult {
        let mut result = FetchResult::default();
        if bytes == 0 {
            return result;
        }
        let idx = cpu.index();
        assert!(idx < self.cpus.len(), "cpu {idx} out of range");
        let (start, end) = {
            let r = self.regions.get(region);
            (r.addr(offset), r.addr(offset) + bytes.min(r.size()))
        };
        let first = self.line_of(start);
        let last = self.line_of(end.saturating_sub(1));
        for line in first..=last {
            result.lines += 1;
            let page = line >> (self.page_shift - self.line_shift);
            if !self.cpus[idx].itlb.access(page) {
                result.itlb_misses += 1;
            }
            let caches = &mut self.cpus[idx];
            if caches.tc.access(line, AccessKind::Read).hit {
                continue;
            }
            result.tc_misses += 1;
            if caches.l2.access(line, AccessKind::Read).hit {
                continue;
            }
            result.l2_misses += 1;
            let llc = caches.llc.access(line, AccessKind::Read);
            if let Some(victim) = llc.evicted {
                caches.l1.invalidate(victim);
                caches.l2.invalidate(victim);
                self.remove_sharer(victim, idx);
            }
            if !llc.hit {
                result.llc_misses += 1;
            }
            self.directory.entry(line).or_default().sharers |= 1 << idx;
        }
        result
    }

    /// Device DMA write into memory (packet arrival): invalidates the
    /// touched lines in *every* CPU's caches, so the next CPU read is an
    /// LLC miss — receive payload is always uncached.
    pub fn dma_write(&mut self, region: RegionId, offset: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let (start, end) = {
            let r = self.regions.get(region);
            (r.addr(offset), r.addr(offset) + bytes.min(r.size()))
        };
        let first = self.line_of(start);
        let last = self.line_of(end.saturating_sub(1));
        for line in first..=last {
            for c in &mut self.cpus {
                c.l1.invalidate(line);
                c.l2.invalidate(line);
                c.llc.invalidate(line);
            }
            self.directory.remove(&line);
        }
    }

    /// Device DMA read from memory (packet transmit): forces writeback of
    /// any modified copy but leaves lines cached.
    pub fn dma_read(&mut self, region: RegionId, offset: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let (start, end) = {
            let r = self.regions.get(region);
            (r.addr(offset), r.addr(offset) + bytes.min(r.size()))
        };
        let first = self.line_of(start);
        let last = self.line_of(end.saturating_sub(1));
        for line in first..=last {
            if let Some(entry) = self.directory.get_mut(&line) {
                if let Some(owner) = entry.owner.take() {
                    let c = &mut self.cpus[owner as usize];
                    c.l1.clean(line);
                    c.l2.clean(line);
                    c.llc.clean(line);
                }
            }
        }
    }

    /// Flushes a CPU's TLBs (address-space switch on context switch).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn flush_tlbs(&mut self, cpu: CpuId) {
        let c = &mut self.cpus[cpu.index()];
        c.itlb.flush();
        c.dtlb.flush();
    }

    /// LLC statistics for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn llc_stats(&self, cpu: CpuId) -> CacheStats {
        self.cpus[cpu.index()].llc.stats()
    }

    /// L2 statistics for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn l2_stats(&self, cpu: CpuId) -> CacheStats {
        self.cpus[cpu.index()].l2.stats()
    }

    /// Trace-cache statistics for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn tc_stats(&self, cpu: CpuId) -> CacheStats {
        self.cpus[cpu.index()].tc.stats()
    }

    /// ITLB/DTLB statistics for `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn tlb_stats(&self, cpu: CpuId) -> (TlbStats, TlbStats) {
        let c = &self.cpus[cpu.index()];
        (c.itlb.stats(), c.dtlb.stats())
    }

    /// Fraction of `region`'s lines resident in `cpu`'s LLC — a direct
    /// measure of the cache locality affinity buys.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn resident_fraction(&self, cpu: CpuId, region: RegionId) -> f64 {
        let r = self.regions.get(region);
        let first = self.line_of(r.base());
        let last = self.line_of(r.base() + r.size() - 1);
        let total = last - first + 1;
        let resident = (first..=last)
            .filter(|&l| self.cpus[cpu.index()].llc.contains(l))
            .count();
        resident as f64 / total as f64
    }

    /// Resets every hit/miss counter, keeping cache contents (used to
    /// discard warm-up before measurement, as the paper's steady-state
    /// profiling does).
    pub fn reset_stats(&mut self) {
        for c in &mut self.cpus {
            c.l1.reset_stats();
            c.l2.reset_stats();
            c.llc.reset_stats();
            c.tc.reset_stats();
            c.itlb.reset_stats();
            c.dtlb.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemoryConfig::tiny(2))
    }

    const CPU0: CpuId = CpuId::new(0);
    const CPU1: CpuId = CpuId::new(1);

    #[test]
    fn cold_then_warm() {
        let mut m = sys();
        let r = m.add_region("ctx", 256);
        let cold = m.data_touch(CPU0, r, 0, 256, false);
        assert_eq!(cold.lines, 4);
        assert_eq!(cold.llc_misses, 4);
        let warm = m.data_touch(CPU0, r, 0, 256, false);
        assert_eq!(warm.llc_misses, 0);
        assert_eq!(warm.l1_misses, 0);
    }

    #[test]
    fn remote_write_invalidates() {
        let mut m = sys();
        let r = m.add_region("ctx", 128);
        m.data_touch(CPU0, r, 0, 128, false);
        assert_eq!(m.data_touch(CPU0, r, 0, 128, false).llc_misses, 0);
        // CPU1 writes the same lines: CPU0's copies must die.
        m.data_touch(CPU1, r, 0, 128, true);
        let again = m.data_touch(CPU0, r, 0, 128, false);
        assert_eq!(again.llc_misses, 2, "remote write should invalidate");
    }

    #[test]
    fn remote_read_of_modified_downgrades_but_keeps_owner_copy() {
        let mut m = sys();
        let r = m.add_region("ctx", 64);
        m.data_touch(CPU0, r, 0, 64, true); // CPU0 holds modified
        let c1 = m.data_touch(CPU1, r, 0, 64, false);
        assert_eq!(c1.llc_misses, 1); // CPU1's own hierarchy is cold
        // CPU0 still has the line (now clean): no miss.
        let c0 = m.data_touch(CPU0, r, 0, 64, false);
        assert_eq!(c0.llc_misses, 0);
    }

    #[test]
    fn dma_write_uncaches_everywhere() {
        let mut m = sys();
        let r = m.add_region("payload", 128);
        m.data_touch(CPU0, r, 0, 128, false);
        m.data_touch(CPU1, r, 0, 128, false);
        m.dma_write(r, 0, 128);
        assert_eq!(m.data_touch(CPU0, r, 0, 128, false).llc_misses, 2);
        assert_eq!(m.data_touch(CPU1, r, 0, 128, false).llc_misses, 2);
    }

    #[test]
    fn dma_read_cleans_but_keeps_cached() {
        let mut m = sys();
        let r = m.add_region("txbuf", 64);
        m.data_touch(CPU0, r, 0, 64, true);
        m.dma_read(r, 0, 64);
        // Still cached on CPU0.
        assert_eq!(m.data_touch(CPU0, r, 0, 64, false).llc_misses, 0);
    }

    #[test]
    fn code_fetch_tc_behaviour() {
        let mut m = sys();
        let code = m.add_region("tcp_sendmsg.text", 256);
        let cold = m.code_fetch(CPU0, code, 0, 256);
        assert_eq!(cold.lines, 4);
        assert_eq!(cold.tc_misses, 4);
        let warm = m.code_fetch(CPU0, code, 0, 256);
        assert_eq!(warm.tc_misses, 0);
        // Other CPU has its own trace cache.
        let other = m.code_fetch(CPU1, code, 0, 256);
        assert_eq!(other.tc_misses, 4);
    }

    #[test]
    fn tc_capacity_evictions() {
        let mut m = sys(); // tiny tc: 512B = 8 lines
        let big = m.add_region("big.text", 2048);
        m.code_fetch(CPU0, big, 0, 2048);
        let again = m.code_fetch(CPU0, big, 0, 2048);
        assert!(again.tc_misses > 0, "code bigger than TC must keep missing");
    }

    #[test]
    fn dtlb_misses_on_new_pages() {
        let mut m = sys();
        // tiny config: 4 dtlb entries; touch 6 pages.
        let r = m.add_region("big", 6 * 4096);
        let res = m.data_touch(CPU0, r, 0, 6 * 4096, false);
        assert!(res.dtlb_misses >= 6);
        let again = m.data_touch(CPU0, r, 0, 6 * 4096, false);
        // Working set exceeds DTLB: keeps missing.
        assert!(again.dtlb_misses > 0);
    }

    #[test]
    fn tlb_flush_forces_walks() {
        let mut m = sys();
        let r = m.add_region("x", 64);
        m.data_touch(CPU0, r, 0, 64, false);
        assert_eq!(m.data_touch(CPU0, r, 0, 64, false).dtlb_misses, 0);
        m.flush_tlbs(CPU0);
        assert_eq!(m.data_touch(CPU0, r, 0, 64, false).dtlb_misses, 1);
    }

    #[test]
    fn llc_capacity_eviction_and_inclusion() {
        let mut m = sys(); // llc: 4096B = 64 lines
        let big = m.add_region("big", 16 * 1024);
        m.data_touch(CPU0, big, 0, 16 * 1024, false);
        let again = m.data_touch(CPU0, big, 0, 16 * 1024, false);
        assert!(
            again.llc_misses > 0,
            "working set 4x LLC must thrash: {again:?}"
        );
    }

    #[test]
    fn resident_fraction_reflects_locality() {
        let mut m = sys();
        let ctx = m.add_region("ctx", 256);
        assert_eq!(m.resident_fraction(CPU0, ctx), 0.0);
        m.data_touch(CPU0, ctx, 0, 256, false);
        assert_eq!(m.resident_fraction(CPU0, ctx), 1.0);
        assert_eq!(m.resident_fraction(CPU1, ctx), 0.0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut m = sys();
        let r = m.add_region("x", 256);
        m.data_touch(CPU0, r, 0, 256, false);
        assert!(m.llc_stats(CPU0).misses > 0);
        let (_, d) = m.tlb_stats(CPU0);
        assert!(d.misses > 0);
        m.reset_stats();
        assert_eq!(m.llc_stats(CPU0).misses, 0);
        // Contents preserved: warm access.
        assert_eq!(m.data_touch(CPU0, r, 0, 256, false).llc_misses, 0);
    }

    #[test]
    fn zero_byte_touch_is_noop() {
        let mut m = sys();
        let r = m.add_region("x", 64);
        assert_eq!(m.data_touch(CPU0, r, 0, 0, false), TouchResult::default());
        assert_eq!(m.code_fetch(CPU0, r, 0, 0), FetchResult::default());
    }

    #[test]
    fn merge_results() {
        let mut a = TouchResult {
            lines: 1,
            l1_misses: 1,
            l2_misses: 1,
            llc_misses: 1,
            dtlb_misses: 0,
        };
        a.merge(&a.clone());
        assert_eq!(a.lines, 2);
        assert_eq!(a.llc_misses, 2);
        let mut f = FetchResult {
            lines: 2,
            tc_misses: 1,
            l2_misses: 0,
            llc_misses: 0,
            itlb_misses: 1,
        };
        f.merge(&f.clone());
        assert_eq!(f.tc_misses, 2);
    }
}
