//! A set-associative cache with LRU replacement.
//!
//! The cache operates on *line addresses* (byte address divided by line
//! size) and tracks only presence and dirtiness — data values never matter
//! to the characterization, only hit/miss behaviour.

use serde::{Deserialize, Serialize};

/// Whether a cache access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (write-allocate: a miss still fills the line).
    Write,
}

/// Hit/miss/traffic counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that found the line resident.
    pub hits: u64,
    /// Accesses that had to fill the line.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Lines removed by coherence invalidations.
    pub invalidations: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses (0 when idle).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative, write-allocate, LRU cache over line addresses.
///
/// Way state is stored structure-of-arrays — contiguous tags, one dirty
/// byte per way, and a separate LRU array — so the hit scan of a set
/// reads one short run of tags instead of striding over padded structs.
/// The valid bit is packed into bit 0 of the tag word (`(line << 1) | 1`,
/// `0` = invalid), so both the hit scan and the victim scan read a single
/// array instead of cross-checking a parallel flag array.
///
/// # Example
///
/// ```
/// use sim_mem::{AccessKind, Cache};
///
/// let mut c = Cache::new("l1", 4, 2); // 4 sets x 2 ways
/// assert!(!c.access(0, AccessKind::Read).hit);
/// assert!(c.access(0, AccessKind::Read).hit);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    name: String,
    sets: usize,
    ways: usize,
    set_mask: u64,
    /// `tags[set * ways + way]`: `(line << 1) | 1` when the way holds
    /// `line`, `0` when the way is invalid.
    tags: Vec<u64>,
    /// `dirty[set * ways + way]`: non-zero when the held line is modified.
    /// Only meaningful while the way is valid; a fill overwrites it.
    dirty: Vec<u8>,
    /// `lru[set * ways + way]`: timestamp, larger = more recently used.
    lru: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

/// Outcome of a single [`Cache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The line was already resident.
    pub hit: bool,
    /// A victim line (its line address) was evicted to make room.
    pub evicted: Option<u64>,
    /// The evicted victim was dirty (would be written back).
    pub evicted_dirty: bool,
    /// Storage slot now holding the line (as [`Cache::slot_of`] would
    /// report), for callers that maintain residency slot caches.
    pub slot: u32,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "need at least one way");
        Cache {
            name: name.into(),
            sets,
            ways,
            set_mask: sets as u64 - 1,
            tags: vec![0; sets * ways],
            dirty: vec![0; sets * ways],
            lru: vec![0; sets * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache from byte capacities.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`Cache::new`]).
    #[must_use]
    pub fn with_geometry(name: impl Into<String>, size: u32, assoc: u32, line_size: u32) -> Self {
        let lines = (size / line_size) as usize;
        let ways = assoc as usize;
        Cache::new(name, lines / ways, ways)
    }

    /// The configured name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tag word encoding a valid `line`.
    #[inline]
    fn tag_key(line: u64) -> u64 {
        (line << 1) | 1
    }

    /// Index of the way in `[base, base + ways)` holding `line`, if any.
    #[inline]
    fn find(&self, base: usize, line: u64) -> Option<usize> {
        let key = Self::tag_key(line);
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == key)
    }

    /// Accesses `line`, filling it on a miss (write-allocate).
    ///
    /// The hit case is small enough to inline into the touch loops that
    /// dominate simulation time; the fill/eviction tail stays out of line
    /// ([`Cache::fill`]) so inlining it doesn't bloat those loops.
    #[inline]
    pub fn access(&mut self, line: u64, kind: AccessKind) -> AccessOutcome {
        self.clock += 1;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;

        // Hit?
        if let Some(w) = self.find(base, line) {
            self.lru[base + w] = self.clock;
            if kind == AccessKind::Write {
                self.dirty[base + w] = 1;
            }
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                evicted: None,
                evicted_dirty: false,
                slot: (base + w) as u32,
            };
        }

        self.fill(base, line, kind)
    }

    /// Fills `line`, which the caller guarantees is absent — e.g. because
    /// the coherence directory proves the line is in none of this CPU's
    /// levels (`sim-mem` keeps each sharer bit equal to LLC residency, and
    /// the LLC is inclusive). Bookkeeping is identical to [`Cache::access`]
    /// taking its miss path: the clock advances once, one miss is counted,
    /// and the fill picks the same victim — only the doomed hit scan is
    /// skipped.
    #[inline]
    pub fn fill_absent(&mut self, line: u64, kind: AccessKind) -> AccessOutcome {
        debug_assert!(
            !self.contains(line),
            "fill_absent: line {line} is resident in {}",
            self.name
        );
        self.clock += 1;
        let base = (line & self.set_mask) as usize * self.ways;
        self.fill(base, line, kind)
    }

    /// Miss path of [`Cache::access`]: pick a victim, evict, fill.
    fn fill(&mut self, base: usize, line: u64, kind: AccessKind) -> AccessOutcome {
        self.stats.misses += 1;

        // Fill: prefer an invalid way, else evict LRU. One fused pass —
        // in steady state every way is valid, so a separate invalid-way
        // scan would walk the whole set just to fail.
        let tags = &self.tags[base..base + self.ways];
        let lru = &self.lru[base..base + self.ways];
        let mut victim_idx = 0;
        let mut best = u64::MAX;
        for w in 0..self.ways {
            if tags[w] & 1 == 0 {
                victim_idx = w;
                break;
            }
            if lru[w] < best {
                best = lru[w];
                victim_idx = w;
            }
        }

        let slot = base + victim_idx;
        let (evicted, evicted_dirty) = if self.tags[slot] & 1 != 0 {
            self.stats.evictions += 1;
            (Some(self.tags[slot] >> 1), self.dirty[slot] != 0)
        } else {
            (None, false)
        };

        self.tags[slot] = Self::tag_key(line);
        self.dirty[slot] = (kind == AccessKind::Write) as u8;
        self.lru[slot] = self.clock;

        AccessOutcome {
            hit: false,
            evicted,
            evicted_dirty,
            slot: slot as u32,
        }
    }

    /// Returns the storage slot holding `line`, if resident. The slot
    /// stays valid until the line is evicted, invalidated or flushed —
    /// callers caching slots must invalidate their cache on any of those
    /// (see `sim-mem`'s residency summaries).
    #[must_use]
    pub fn slot_of(&self, line: u64) -> Option<u32> {
        let base = (line & self.set_mask) as usize * self.ways;
        self.find(base, line).map(|w| (base + w) as u32)
    }

    /// Touches a run of resident lines by pre-resolved storage slot:
    /// `slots[i]` must hold line `first_line + i` (as returned by
    /// [`Cache::slot_of`] with no intervening eviction, invalidation or
    /// flush). Bookkeeping is identical to calling [`Cache::access`] on
    /// each line in order when every access hits: the clock advances once
    /// per line, each line becomes most recently used in access order,
    /// and each access counts one hit.
    pub fn touch_resident_run(&mut self, slots: &[u32], first_line: u64, write: bool) {
        let base_clock = self.clock;
        let n = slots.len() as u64;
        self.clock += n;
        self.stats.hits += n;
        for (i, &slot) in slots.iter().enumerate() {
            let slot = slot as usize;
            debug_assert!(
                self.tags[slot] == Self::tag_key(first_line + i as u64),
                "stale slot cache: slot {slot} does not hold line {}",
                first_line + i as u64
            );
            self.lru[slot] = base_clock + i as u64 + 1;
            if write {
                self.dirty[slot] = 1;
            }
        }
    }

    /// Returns `true` if `line` is resident (does not touch LRU state).
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        let base = (line & self.set_mask) as usize * self.ways;
        self.find(base, line).is_some()
    }

    /// Removes `line` if resident (coherence invalidation). Returns whether
    /// the line was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let base = (line & self.set_mask) as usize * self.ways;
        if let Some(w) = self.find(base, line) {
            self.tags[base + w] = 0;
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Marks `line` clean if resident (coherence downgrade on a remote
    /// read of a modified line).
    pub fn clean(&mut self, line: u64) {
        let base = (line & self.set_mask) as usize * self.ways;
        if let Some(w) = self.find(base, line) {
            self.dirty[base + w] = 0;
        }
    }

    /// Drops every line (e.g. simulating a full flush).
    pub fn flush(&mut self) {
        self.tags.fill(0);
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (keeps contents) — used to discard warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of currently valid lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t & 1 != 0).count()
    }

    /// Total capacity in lines.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of sets. A run of consecutive line addresses no longer than
    /// this maps every line to a distinct set.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new("t", 2, 2) // 4 lines total
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(5, AccessKind::Read).hit);
        assert!(c.access(5, AccessKind::Read).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new("t", 1, 2); // one set, two ways
        c.access(1, AccessKind::Read);
        c.access(2, AccessKind::Read);
        c.access(1, AccessKind::Read); // 2 becomes LRU
        let out = c.access(3, AccessKind::Read);
        assert_eq!(out.evicted, Some(2));
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = Cache::new("t", 1, 1);
        c.access(7, AccessKind::Write);
        let out = c.access(8, AccessKind::Read);
        assert_eq!(out.evicted, Some(7));
        assert!(out.evicted_dirty);
    }

    #[test]
    fn clean_clears_dirtiness() {
        let mut c = Cache::new("t", 1, 1);
        c.access(7, AccessKind::Write);
        c.clean(7);
        let out = c.access(8, AccessKind::Read);
        assert!(!out.evicted_dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(4, AccessKind::Write);
        assert!(c.invalidate(4));
        assert!(!c.contains(4));
        assert!(!c.invalidate(4)); // second time: not present
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = Cache::new("t", 2, 1);
        // Lines 0 and 2 map to set 0; line 1 maps to set 1.
        c.access(0, AccessKind::Read);
        c.access(1, AccessKind::Read);
        c.access(2, AccessKind::Read); // evicts 0, not 1
        assert!(!c.contains(0));
        assert!(c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn touch_resident_run_matches_sequential_hits() {
        // Two identical caches, same warm-up; then one takes the slot
        // path and the other the per-line access path. Future behaviour
        // (evictions, stats) must be indistinguishable.
        let mut a = Cache::new("a", 4, 2);
        let mut b = Cache::new("b", 4, 2);
        for line in 0..6u64 {
            a.access(line, AccessKind::Read);
            b.access(line, AccessKind::Read);
        }
        let slots: Vec<u32> = (2..6u64).map(|l| a.slot_of(l).expect("resident")).collect();
        a.touch_resident_run(&slots, 2, true);
        for line in 2..6u64 {
            assert!(b.access(line, AccessKind::Write).hit);
        }
        assert_eq!(a.stats(), b.stats());
        // Same future evictions: push conflicting lines through both.
        for line in 8..16u64 {
            let oa = a.access(line, AccessKind::Read);
            let ob = b.access(line, AccessKind::Read);
            assert_eq!(oa, ob, "divergence at line {line}");
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn fill_absent_matches_access_miss_path() {
        // Same warm-up, then one cache misses via `access` and the other
        // fills via `fill_absent`; all state and stats must stay equal.
        let mut a = Cache::new("a", 2, 2);
        let mut b = Cache::new("b", 2, 2);
        for line in 0..4u64 {
            a.access(line, AccessKind::Read);
            b.access(line, AccessKind::Read);
        }
        for line in 8..12u64 {
            let oa = a.access(line, AccessKind::Write);
            let ob = b.fill_absent(line, AccessKind::Write);
            assert_eq!(oa, ob, "divergence at line {line}");
        }
        assert_eq!(a.stats(), b.stats());
        for line in 0..12u64 {
            let oa = a.access(line, AccessKind::Read);
            let ob = b.access(line, AccessKind::Read);
            assert_eq!(oa, ob, "future divergence at line {line}");
        }
    }

    #[test]
    fn slot_of_reports_residency() {
        let mut c = small();
        assert_eq!(c.slot_of(5), None);
        c.access(5, AccessKind::Read);
        let slot = c.slot_of(5).expect("resident");
        assert!((slot as usize) < c.capacity_lines());
        c.invalidate(5);
        assert_eq!(c.slot_of(5), None);
    }

    #[test]
    fn geometry_constructor() {
        let c = Cache::with_geometry("l1", 8 * 1024, 4, 64);
        assert_eq!(c.capacity_lines(), 128);
        assert_eq!(c.name(), "l1");
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(1, AccessKind::Read);
        c.access(2, AccessKind::Read);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn miss_ratio() {
        let mut c = small();
        c.access(1, AccessKind::Read);
        c.access(1, AccessKind::Read);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.access(1, AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.stats().misses, 0);
        assert!(c.access(1, AccessKind::Read).hit);
    }
}
