//! A set-associative cache with LRU replacement.
//!
//! The cache operates on *line addresses* (byte address divided by line
//! size) and tracks only presence and dirtiness — data values never matter
//! to the characterization, only hit/miss behaviour.

use serde::{Deserialize, Serialize};

/// Whether a cache access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (write-allocate: a miss still fills the line).
    Write,
}

/// Hit/miss/traffic counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that found the line resident.
    pub hits: u64,
    /// Accesses that had to fill the line.
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Lines removed by coherence invalidations.
    pub invalidations: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses (0 when idle).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp: larger = more recently used.
    lru: u64,
}

const INVALID_WAY: Way = Way {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// A set-associative, write-allocate, LRU cache over line addresses.
///
/// # Example
///
/// ```
/// use sim_mem::{AccessKind, Cache};
///
/// let mut c = Cache::new("l1", 4, 2); // 4 sets x 2 ways
/// assert!(!c.access(0, AccessKind::Read).hit);
/// assert!(c.access(0, AccessKind::Read).hit);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    name: String,
    sets: usize,
    ways: usize,
    set_mask: u64,
    storage: Vec<Way>,
    clock: u64,
    stats: CacheStats,
}

/// Outcome of a single [`Cache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The line was already resident.
    pub hit: bool,
    /// A victim line (its line address) was evicted to make room.
    pub evicted: Option<u64>,
    /// The evicted victim was dirty (would be written back).
    pub evicted_dirty: bool,
}

impl Cache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0, "sets must be a power of two");
        assert!(ways > 0, "need at least one way");
        Cache {
            name: name.into(),
            sets,
            ways,
            set_mask: sets as u64 - 1,
            storage: vec![INVALID_WAY; sets * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache from byte capacities.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`Cache::new`]).
    #[must_use]
    pub fn with_geometry(name: impl Into<String>, size: u32, assoc: u32, line_size: u32) -> Self {
        let lines = (size / line_size) as usize;
        let ways = assoc as usize;
        Cache::new(name, lines / ways, ways)
    }

    /// The configured name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Accesses `line`, filling it on a miss (write-allocate).
    pub fn access(&mut self, line: u64, kind: AccessKind) -> AccessOutcome {
        self.clock += 1;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        let slots = &mut self.storage[base..base + self.ways];

        // Hit?
        if let Some(way) = slots.iter_mut().find(|w| w.valid && w.tag == line) {
            way.lru = self.clock;
            if kind == AccessKind::Write {
                way.dirty = true;
            }
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                evicted: None,
                evicted_dirty: false,
            };
        }

        self.stats.misses += 1;

        // Fill: prefer an invalid way, else evict LRU.
        let victim_idx = slots
            .iter()
            .enumerate()
            .find(|(_, w)| !w.valid)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .map(|(i, _)| i)
                    .expect("ways > 0")
            });

        let victim = slots[victim_idx];
        let (evicted, evicted_dirty) = if victim.valid {
            self.stats.evictions += 1;
            (Some(victim.tag), victim.dirty)
        } else {
            (None, false)
        };

        slots[victim_idx] = Way {
            tag: line,
            valid: true,
            dirty: kind == AccessKind::Write,
            lru: self.clock,
        };

        AccessOutcome {
            hit: false,
            evicted,
            evicted_dirty,
        }
    }

    /// Returns `true` if `line` is resident (does not touch LRU state).
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        self.storage[base..base + self.ways]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    /// Removes `line` if resident (coherence invalidation). Returns whether
    /// the line was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        if let Some(way) = self.storage[base..base + self.ways]
            .iter_mut()
            .find(|w| w.valid && w.tag == line)
        {
            way.valid = false;
            way.dirty = false;
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Marks `line` clean if resident (coherence downgrade on a remote
    /// read of a modified line).
    pub fn clean(&mut self, line: u64) {
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        if let Some(way) = self.storage[base..base + self.ways]
            .iter_mut()
            .find(|w| w.valid && w.tag == line)
        {
            way.dirty = false;
        }
    }

    /// Drops every line (e.g. simulating a full flush).
    pub fn flush(&mut self) {
        for w in &mut self.storage {
            *w = INVALID_WAY;
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (keeps contents) — used to discard warm-up.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of currently valid lines.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.storage.iter().filter(|w| w.valid).count()
    }

    /// Total capacity in lines.
    #[must_use]
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new("t", 2, 2) // 4 lines total
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(5, AccessKind::Read).hit);
        assert!(c.access(5, AccessKind::Read).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new("t", 1, 2); // one set, two ways
        c.access(1, AccessKind::Read);
        c.access(2, AccessKind::Read);
        c.access(1, AccessKind::Read); // 2 becomes LRU
        let out = c.access(3, AccessKind::Read);
        assert_eq!(out.evicted, Some(2));
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = Cache::new("t", 1, 1);
        c.access(7, AccessKind::Write);
        let out = c.access(8, AccessKind::Read);
        assert_eq!(out.evicted, Some(7));
        assert!(out.evicted_dirty);
    }

    #[test]
    fn clean_clears_dirtiness() {
        let mut c = Cache::new("t", 1, 1);
        c.access(7, AccessKind::Write);
        c.clean(7);
        let out = c.access(8, AccessKind::Read);
        assert!(!out.evicted_dirty);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(4, AccessKind::Write);
        assert!(c.invalidate(4));
        assert!(!c.contains(4));
        assert!(!c.invalidate(4)); // second time: not present
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = Cache::new("t", 2, 1);
        // Lines 0 and 2 map to set 0; line 1 maps to set 1.
        c.access(0, AccessKind::Read);
        c.access(1, AccessKind::Read);
        c.access(2, AccessKind::Read); // evicts 0, not 1
        assert!(!c.contains(0));
        assert!(c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn geometry_constructor() {
        let c = Cache::with_geometry("l1", 8 * 1024, 4, 64);
        assert_eq!(c.capacity_lines(), 128);
        assert_eq!(c.name(), "l1");
    }

    #[test]
    fn flush_empties() {
        let mut c = small();
        c.access(1, AccessKind::Read);
        c.access(2, AccessKind::Read);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn miss_ratio() {
        let mut c = small();
        c.access(1, AccessKind::Read);
        c.access(1, AccessKind::Read);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.access(1, AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.stats().misses, 0);
        assert!(c.access(1, AccessKind::Read).hit);
    }
}
