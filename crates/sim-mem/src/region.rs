//! Named memory regions.
//!
//! Higher layers (the TCP stack model, the NIC model) never compute raw
//! addresses; they allocate a [`MemRegion`] per logical object — a
//! connection's TCP context, a socket buffer, a payload buffer, a NIC
//! descriptor ring, a function's code footprint — and touch byte ranges
//! within it. The [`RegionTable`] lays regions out in a flat physical
//! address space, page-aligned so that distinct regions never share a
//! cache line or a page.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Handle to a region allocated from a [`RegionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(u32);

impl RegionId {
    /// Placeholder id (`u32::MAX`) for pre-filling fixed-capacity buffers.
    /// Never handed out by a [`RegionTable`] and not valid for lookups.
    pub const PLACEHOLDER: RegionId = RegionId(u32::MAX);

    /// Raw index into the owning table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// A contiguous, page-aligned span of simulated physical memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRegion {
    name: String,
    base: u64,
    size: u64,
}

impl MemRegion {
    /// Human-readable name ("conn3.tcp_context", "nic0.rx_ring", …).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First byte address.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Byte address of `offset` within the region, wrapping at the region
    /// size so cyclic buffers (rings, reused payload buffers) can be
    /// touched with a monotonically increasing offset.
    #[must_use]
    pub fn addr(&self, offset: u64) -> u64 {
        self.base + (offset % self.size)
    }
}

/// Allocator and directory of all simulated memory regions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegionTable {
    regions: Vec<MemRegion>,
    next_base: u64,
    page_size: u64,
}

impl RegionTable {
    /// Creates a table that aligns regions to `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a positive power of two.
    #[must_use]
    pub fn new(page_size: u64) -> Self {
        assert!(
            page_size > 0 && page_size.is_power_of_two(),
            "page size must be a positive power of two"
        );
        RegionTable {
            regions: Vec::new(),
            // Leave page 0 unmapped, like a real kernel.
            next_base: page_size,
            page_size,
        }
    }

    /// Allocates a region of at least `size` bytes (rounded up to one line
    /// is the caller's concern; zero-size regions are rounded up to one
    /// byte so `addr()` never divides by zero).
    pub fn add(&mut self, name: impl Into<String>, size: u64) -> RegionId {
        let size = size.max(1);
        let id = RegionId(self.regions.len() as u32);
        let region = MemRegion {
            name: name.into(),
            base: self.next_base,
            size,
        };
        // Advance to the next page boundary past the region.
        let end = self.next_base + size;
        self.next_base = end.div_ceil(self.page_size) * self.page_size;
        self.regions.push(region);
        id
    }

    /// Looks up a region.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    #[must_use]
    pub fn get(&self, id: RegionId) -> &MemRegion {
        &self.regions[id.index()]
    }

    /// Number of regions allocated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if no regions have been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterates over `(id, region)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &MemRegion)> {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, r)| (RegionId(i as u32), r))
    }

    /// Total bytes of simulated memory spanned (including alignment gaps).
    #[must_use]
    pub fn footprint(&self) -> u64 {
        self.next_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_page_aligned_and_disjoint() {
        let mut t = RegionTable::new(4096);
        let a = t.add("a", 100);
        let b = t.add("b", 5000);
        let c = t.add("c", 1);
        let (ra, rb, rc) = (t.get(a), t.get(b), t.get(c));
        assert_eq!(ra.base() % 4096, 0);
        assert_eq!(rb.base() % 4096, 0);
        assert!(ra.base() + ra.size() <= rb.base());
        assert!(rb.base() + rb.size() <= rc.base());
    }

    #[test]
    fn page_zero_unmapped() {
        let mut t = RegionTable::new(4096);
        let a = t.add("a", 8);
        assert!(t.get(a).base() >= 4096);
    }

    #[test]
    fn addr_wraps_at_region_size() {
        let mut t = RegionTable::new(4096);
        let a = t.add("ring", 256);
        let r = t.get(a);
        assert_eq!(r.addr(0), r.base());
        assert_eq!(r.addr(256), r.base());
        assert_eq!(r.addr(300), r.base() + 44);
    }

    #[test]
    fn zero_size_rounds_up() {
        let mut t = RegionTable::new(4096);
        let a = t.add("z", 0);
        assert_eq!(t.get(a).size(), 1);
        let _ = t.get(a).addr(17); // must not panic
    }

    #[test]
    fn iter_and_len() {
        let mut t = RegionTable::new(4096);
        t.add("x", 1);
        t.add("y", 1);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let names: Vec<&str> = t.iter().map(|(_, r)| r.name()).collect();
        assert_eq!(names, ["x", "y"]);
    }

    #[test]
    fn footprint_grows() {
        let mut t = RegionTable::new(4096);
        assert_eq!(t.footprint(), 4096);
        t.add("a", 4097);
        assert_eq!(t.footprint(), 4096 + 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_rejected() {
        let _ = RegionTable::new(1000);
    }
}
