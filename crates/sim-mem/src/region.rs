//! Named memory regions.
//!
//! Higher layers (the TCP stack model, the NIC model) never compute raw
//! addresses; they allocate a [`MemRegion`] per logical object — a
//! connection's TCP context, a socket buffer, a payload buffer, a NIC
//! descriptor ring, a function's code footprint — and touch byte ranges
//! within it. The [`RegionTable`] lays regions out in a flat physical
//! address space, page-aligned so that distinct regions never share a
//! cache line or a page.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Handle to a region allocated from a [`RegionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(u32);

impl RegionId {
    /// Placeholder id (`u32::MAX`) for pre-filling fixed-capacity buffers.
    /// Never handed out by a [`RegionTable`] and not valid for lookups.
    pub const PLACEHOLDER: RegionId = RegionId(u32::MAX);

    /// Raw index into the owning table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Interned region name: stored compactly, rendered to a `String` only
/// in reports and `Debug` output.
///
/// Machine construction at the million-flow scale allocates six regions
/// per flow; naming each with an eager `format!` costs a heap allocation
/// per region. The dominant shape — `"conn{index}.{field}"` — is carried
/// here as a static prefix, a flow index, and a static suffix, so bulk
/// provisioning performs zero format allocations. Ad-hoc names (NIC
/// queues, IRQ handlers) still flow through [`RegionName::Owned`].
///
/// `Display` and `Debug` observe the *rendered* string, so an interned
/// name is indistinguishable from the eager `String` it replaces in
/// every report and snapshot. Equality is render-based for the same
/// reason: `Static("a.text") == Owned("a.text".into())`. Under the real
/// serde (the workspace ships a no-op stand-in), `Serialize` should emit
/// the rendered string and `Deserialize` should produce
/// [`RegionName::Owned`].
#[derive(Clone, Serialize, Deserialize)]
pub enum RegionName {
    /// A fixed label, e.g. `"tcp_v4_rcv.text"` — free to construct.
    Static(&'static str),
    /// An arbitrary pre-rendered name (NIC queues, IRQ handlers).
    Owned(String),
    /// Rendered as `"{prefix}{index}.{suffix}"`, e.g. `conn3.tcp_ctx`.
    Indexed {
        /// Static label before the index (`"conn"`).
        prefix: &'static str,
        /// Flow (or other entity) index.
        index: u32,
        /// Static field label after the dot (`"tcp_ctx"`).
        suffix: &'static str,
    },
}

impl RegionName {
    /// Interned `"{prefix}{index}.{suffix}"` name — no allocation.
    #[must_use]
    pub const fn indexed(prefix: &'static str, index: u32, suffix: &'static str) -> Self {
        RegionName::Indexed {
            prefix,
            index,
            suffix,
        }
    }

    /// Renders the name to an owned `String`, identical to the eager
    /// string the pre-interning code would have built.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            RegionName::Static(s) => (*s).to_string(),
            RegionName::Owned(s) => s.clone(),
            RegionName::Indexed {
                prefix,
                index,
                suffix,
            } => format!("{prefix}{index}.{suffix}"),
        }
    }
}

impl fmt::Display for RegionName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionName::Static(s) => f.write_str(s),
            RegionName::Owned(s) => f.write_str(s),
            RegionName::Indexed {
                prefix,
                index,
                suffix,
            } => write!(f, "{prefix}{index}.{suffix}"),
        }
    }
}

impl fmt::Debug for RegionName {
    /// Debug output matches the old eager-`String` representation
    /// (`"conn3.tcp_ctx"`, quoted), so snapshots and dumps are
    /// variant-blind.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.render())
    }
}

impl PartialEq for RegionName {
    /// Render-based equality: two names are equal iff they render to the
    /// same string, regardless of interning variant.
    fn eq(&self, other: &Self) -> bool {
        use RegionName::{Owned, Static};
        match (self, other) {
            (Static(a), Static(b)) => a == b,
            (Owned(a), Owned(b)) => a == b,
            (Static(a), Owned(b)) | (Owned(b), Static(a)) => *a == b.as_str(),
            _ => self.render() == other.render(),
        }
    }
}

impl Eq for RegionName {}

impl From<&'static str> for RegionName {
    fn from(s: &'static str) -> Self {
        RegionName::Static(s)
    }
}

impl From<String> for RegionName {
    fn from(s: String) -> Self {
        RegionName::Owned(s)
    }
}

/// A contiguous, page-aligned span of simulated physical memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRegion {
    name: RegionName,
    base: u64,
    size: u64,
}

impl MemRegion {
    /// Human-readable name ("conn3.tcp_context", "nic0.rx_ring", …),
    /// rendered from the interned form.
    #[must_use]
    pub fn name(&self) -> String {
        self.name.render()
    }

    /// The interned name, for allocation-free formatting via `Display`.
    #[must_use]
    pub fn raw_name(&self) -> &RegionName {
        &self.name
    }

    /// First byte address.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Byte address of `offset` within the region, wrapping at the region
    /// size so cyclic buffers (rings, reused payload buffers) can be
    /// touched with a monotonically increasing offset.
    #[must_use]
    pub fn addr(&self, offset: u64) -> u64 {
        self.base + (offset % self.size)
    }
}

/// Allocator and directory of all simulated memory regions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegionTable {
    regions: Vec<MemRegion>,
    next_base: u64,
    page_size: u64,
}

impl RegionTable {
    /// Creates a table that aligns regions to `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a positive power of two.
    #[must_use]
    pub fn new(page_size: u64) -> Self {
        assert!(
            page_size > 0 && page_size.is_power_of_two(),
            "page size must be a positive power of two"
        );
        RegionTable {
            regions: Vec::new(),
            // Leave page 0 unmapped, like a real kernel.
            next_base: page_size,
            page_size,
        }
    }

    /// Reserves table capacity for `additional` more regions, so a bulk
    /// provisioning pass never reallocates mid-loop.
    pub fn reserve(&mut self, additional: usize) {
        self.regions.reserve(additional);
    }

    /// Allocates a region of at least `size` bytes (rounded up to one line
    /// is the caller's concern; zero-size regions are rounded up to one
    /// byte so `addr()` never divides by zero).
    pub fn add(&mut self, name: impl Into<RegionName>, size: u64) -> RegionId {
        let size = size.max(1);
        let id = RegionId(self.regions.len() as u32);
        let region = MemRegion {
            name: name.into(),
            base: self.next_base,
            size,
        };
        // Advance to the next page boundary past the region.
        let end = self.next_base + size;
        self.next_base = end.div_ceil(self.page_size) * self.page_size;
        self.regions.push(region);
        id
    }

    /// Looks up a region.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    #[must_use]
    pub fn get(&self, id: RegionId) -> &MemRegion {
        &self.regions[id.index()]
    }

    /// Number of regions allocated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if no regions have been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterates over `(id, region)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &MemRegion)> {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, r)| (RegionId(i as u32), r))
    }

    /// Total bytes of simulated memory spanned (including alignment gaps).
    #[must_use]
    pub fn footprint(&self) -> u64 {
        self.next_base
    }
}

/// An ordered batch of region requests for
/// [`MemorySystem::add_regions_bulk`](crate::MemorySystem::add_regions_bulk).
///
/// The plan is just `(name, size)` pairs in allocation order; building
/// one costs no formatting when the names are interned
/// ([`RegionName::indexed`]), so a million-flow provisioning pass
/// allocates exactly one `Vec`.
#[derive(Debug, Default)]
pub struct RegionPlan {
    entries: Vec<(RegionName, u64)>,
}

impl RegionPlan {
    /// Creates an empty plan with room for `capacity` requests.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        RegionPlan {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Appends a region request. Requests are allocated in insertion
    /// order, exactly as an equivalent sequence of `add_region` calls.
    pub fn add(&mut self, name: impl Into<RegionName>, size: u64) {
        self.entries.push((name.into(), size));
    }

    /// Number of requests in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the plan holds no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes the plan, yielding the requests in allocation order.
    pub(crate) fn into_entries(self) -> Vec<(RegionName, u64)> {
        self.entries
    }
}

/// Dense handle range returned by a bulk region allocation: the `len`
/// regions with consecutive ids starting at `first`.
///
/// `RegionId`s are allocated sequentially, so a single bulk call owns a
/// contiguous id range; this span converts a slot index back into the
/// exact `RegionId` the equivalent incremental `add` loop would have
/// returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpan {
    first: u32,
    len: u32,
}

impl RegionSpan {
    /// Creates a span covering ids `first .. first + len`.
    #[must_use]
    pub(crate) fn new(first: usize, len: usize) -> Self {
        RegionSpan {
            first: first as u32,
            len: len as u32,
        }
    }

    /// The `i`-th region id in the span.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> RegionId {
        assert!(i < self.len as usize, "region span index out of range");
        RegionId(self.first + i as u32)
    }

    /// Number of regions in the span.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the span holds no regions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the span's region ids in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = RegionId> {
        let first = self.first;
        (0..self.len).map(move |i| RegionId(first + i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_page_aligned_and_disjoint() {
        let mut t = RegionTable::new(4096);
        let a = t.add("a", 100);
        let b = t.add("b", 5000);
        let c = t.add("c", 1);
        let (ra, rb, rc) = (t.get(a), t.get(b), t.get(c));
        assert_eq!(ra.base() % 4096, 0);
        assert_eq!(rb.base() % 4096, 0);
        assert!(ra.base() + ra.size() <= rb.base());
        assert!(rb.base() + rb.size() <= rc.base());
    }

    #[test]
    fn page_zero_unmapped() {
        let mut t = RegionTable::new(4096);
        let a = t.add("a", 8);
        assert!(t.get(a).base() >= 4096);
    }

    #[test]
    fn addr_wraps_at_region_size() {
        let mut t = RegionTable::new(4096);
        let a = t.add("ring", 256);
        let r = t.get(a);
        assert_eq!(r.addr(0), r.base());
        assert_eq!(r.addr(256), r.base());
        assert_eq!(r.addr(300), r.base() + 44);
    }

    #[test]
    fn zero_size_rounds_up() {
        let mut t = RegionTable::new(4096);
        let a = t.add("z", 0);
        assert_eq!(t.get(a).size(), 1);
        let _ = t.get(a).addr(17); // must not panic
    }

    #[test]
    fn iter_and_len() {
        let mut t = RegionTable::new(4096);
        t.add("x", 1);
        t.add("y", 1);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let names: Vec<String> = t.iter().map(|(_, r)| r.name()).collect();
        assert_eq!(names, ["x", "y"]);
    }

    #[test]
    fn interned_names_render_like_eager_strings() {
        let eager = RegionName::Owned("conn3.tcp_ctx".to_string());
        let interned = RegionName::indexed("conn", 3, "tcp_ctx");
        assert_eq!(interned.render(), "conn3.tcp_ctx");
        assert_eq!(format!("{interned}"), format!("{eager}"));
        assert_eq!(format!("{interned:?}"), format!("{eager:?}"));
        assert_eq!(format!("{interned:?}"), "\"conn3.tcp_ctx\"");
        let st = RegionName::Static("tcp_v4_rcv.text");
        assert_eq!(st.render(), "tcp_v4_rcv.text");
        assert_eq!(format!("{st:?}"), "\"tcp_v4_rcv.text\"");
    }

    #[test]
    fn region_name_equality_is_render_based() {
        assert_eq!(
            RegionName::Static("a.text"),
            RegionName::Owned("a.text".to_string())
        );
        assert_eq!(
            RegionName::indexed("conn", 12, "sock"),
            RegionName::Owned("conn12.sock".to_string())
        );
        assert_ne!(
            RegionName::indexed("conn", 12, "sock"),
            RegionName::indexed("conn", 21, "sock")
        );
    }

    #[test]
    fn region_span_indexes_sequential_ids() {
        let span = RegionSpan::new(5, 3);
        assert_eq!(span.len(), 3);
        assert!(!span.is_empty());
        assert_eq!(span.get(0).index(), 5);
        assert_eq!(span.get(2).index(), 7);
        let ids: Vec<usize> = span.iter().map(RegionId::index).collect();
        assert_eq!(ids, [5, 6, 7]);
        assert!(RegionSpan::new(9, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn region_span_bounds_checked() {
        let _ = RegionSpan::new(0, 2).get(2);
    }

    #[test]
    fn footprint_grows() {
        let mut t = RegionTable::new(4096);
        assert_eq!(t.footprint(), 4096);
        t.add("a", 4097);
        assert_eq!(t.footprint(), 4096 + 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_rejected() {
        let _ = RegionTable::new(1000);
    }
}
