//! Zero-touch vector growth for bulk provisioning.
//!
//! Growing the directory and the flat per-(region, CPU) tables to
//! million-flow sizes with `Vec::resize` writes every new element, which
//! at multi-gigabyte sizes means the *kernel page-fault* cost of dirtying
//! the whole allocation up front — the dominant term in large-machine
//! construction, dwarfing the simulator's own work. For element types
//! whose default value is the all-zero byte pattern, the same final state
//! is reachable without touching the tail at all: allocate the grown
//! buffer with [`alloc_zeroed`] (fresh zero pages from the OS, faulted in
//! lazily and only where the run actually reaches) and copy just the
//! existing prefix in.

// The one place in the crate where unsafe is allowed; every block carries
// its safety argument.
#![allow(unsafe_code)]

use std::alloc::{alloc_zeroed, handle_alloc_error, Layout};

/// Marker for types whose all-zero byte pattern is a valid value equal to
/// `T::default()`.
///
/// # Safety
///
/// Implementors guarantee that every field of `T` is valid — and compares
/// equal to its `Default` — when all of its bytes are zero. No padding
/// requirements arise (zeroed padding is always fine), but types holding
/// pointers, `NonZero*`, enums with non-zero niches, or non-zero default
/// values must not implement this.
pub(crate) unsafe trait ZeroDefault: Copy + 'static {}

// SAFETY: zero is the `Default` of the primitive integers.
unsafe impl ZeroDefault for u32 {}
// SAFETY: as above.
unsafe impl ZeroDefault for u64 {}

/// Grows `v` to `new_len` elements, filling the tail with
/// `T::default()`, without faulting the tail's pages.
///
/// Behaviorally identical to `v.resize(new_len, T::default())` for
/// [`ZeroDefault`] types, but the new tail lives on untouched
/// `alloc_zeroed` pages: only the copied prefix (and whatever the caller
/// later actually writes) costs real memory and fault time. No-op when
/// `new_len <= v.len()`.
///
/// # Panics
///
/// Panics if the byte size of the grown buffer overflows `isize`.
pub(crate) fn grow_zeroed<T: ZeroDefault>(v: &mut Vec<T>, new_len: usize) {
    if new_len <= v.len() {
        return;
    }
    debug_assert!(size_of::<T>() > 0, "zero-sized types need no storage");
    let layout = Layout::array::<T>(new_len).expect("grown buffer overflows isize");
    // SAFETY: `layout` has non-zero size (`new_len > len >= 0` and `T` is
    // not a ZST).
    let ptr = unsafe { alloc_zeroed(layout) }.cast::<T>();
    if ptr.is_null() {
        handle_alloc_error(layout);
    }
    // SAFETY: `ptr` holds `new_len >= v.len()` elements and cannot
    // overlap `v`'s live buffer (fresh allocation); `T: Copy` so a byte
    // copy is a valid duplication and the old elements need no drop. The
    // rebuilt Vec takes ownership of `ptr` with the exact `Layout::array`
    // size and alignment the global allocator handed out, and its tail is
    // all-zero bytes — a valid `T::default()` by the `ZeroDefault`
    // contract. The old Vec frees its own buffer on drop.
    unsafe {
        std::ptr::copy_nonoverlapping(v.as_ptr(), ptr, v.len());
        *v = Vec::from_raw_parts(ptr, new_len, new_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_matches_resize() {
        let mut a: Vec<u64> = (0..17).collect();
        let mut b = a.clone();
        grow_zeroed(&mut a, 1000);
        b.resize(1000, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn shrink_and_same_len_are_noops() {
        let mut v: Vec<u32> = vec![7; 5];
        grow_zeroed(&mut v, 3);
        assert_eq!(v, vec![7; 5]);
        grow_zeroed(&mut v, 5);
        assert_eq!(v, vec![7; 5]);
    }

    #[test]
    fn grow_from_empty() {
        let mut v: Vec<u32> = Vec::new();
        grow_zeroed(&mut v, 64);
        assert_eq!(v, vec![0u32; 64]);
    }
}
