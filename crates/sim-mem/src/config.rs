//! Memory hierarchy geometry.

use serde::{Deserialize, Serialize};

/// Geometry of the per-CPU cache hierarchy and TLBs.
///
/// Defaults ([`MemoryConfig::paper_sut`]) follow the paper's system under
/// test: dual Pentium 4 Xeon MP with 8 KB L1D, 512 KB L2 and a 2 MB
/// last-level (L3) cache. The P4's L2 line is 128 B sectored; we model a
/// uniform 64 B line throughout, which preserves miss *ratios* between
/// affinity modes (both modes see the same geometry).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Number of CPUs (one cache hierarchy each).
    pub cpus: usize,
    /// Cache line size in bytes (applies to every level).
    pub line_size: u32,
    /// L1 data cache capacity in bytes.
    pub l1_size: u32,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// L2 capacity in bytes.
    pub l2_size: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// Last-level cache capacity in bytes.
    pub llc_size: u32,
    /// LLC associativity.
    pub llc_assoc: u32,
    /// Trace-cache stand-in capacity in bytes of code footprint.
    ///
    /// The P4 trace cache holds ~12 K µops; 16 KB of decoded-instruction
    /// footprint is a reasonable stand-in.
    pub tc_size: u32,
    /// Trace-cache associativity.
    pub tc_assoc: u32,
    /// Page size in bytes.
    pub page_size: u32,
    /// Instruction TLB entries.
    pub itlb_entries: u32,
    /// Data TLB entries.
    pub dtlb_entries: u32,
}

impl MemoryConfig {
    /// Geometry of the paper's system under test for `cpus` processors.
    #[must_use]
    pub fn paper_sut(cpus: usize) -> Self {
        MemoryConfig {
            cpus,
            line_size: 64,
            l1_size: 8 * 1024,
            l1_assoc: 4,
            l2_size: 512 * 1024,
            l2_assoc: 8,
            llc_size: 2 * 1024 * 1024,
            llc_assoc: 8,
            tc_size: 16 * 1024,
            tc_assoc: 8,
            page_size: 4096,
            itlb_entries: 64,
            dtlb_entries: 64,
        }
    }

    /// A tiny geometry for unit tests: misses are easy to provoke.
    #[must_use]
    pub fn tiny(cpus: usize) -> Self {
        MemoryConfig {
            cpus,
            line_size: 64,
            l1_size: 256,
            l1_assoc: 2,
            l2_size: 1024,
            l2_assoc: 2,
            llc_size: 4096,
            llc_assoc: 4,
            tc_size: 512,
            tc_assoc: 2,
            page_size: 4096,
            itlb_entries: 4,
            dtlb_entries: 4,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`sim_core::SimError::InvalidConfig`] if any capacity is not
    /// a positive multiple of the line size, an associativity is zero or
    /// exceeds the number of lines, or there are no CPUs.
    pub fn validate(&self) -> sim_core::Result<()> {
        use sim_core::SimError;
        if self.cpus == 0 {
            return Err(SimError::config("need at least one cpu"));
        }
        if self.line_size == 0 || !self.line_size.is_power_of_two() {
            return Err(SimError::config("line size must be a power of two"));
        }
        if self.page_size < self.line_size || !self.page_size.is_power_of_two() {
            return Err(SimError::config(
                "page size must be a power of two >= line size",
            ));
        }
        for (name, size, assoc) in [
            ("l1", self.l1_size, self.l1_assoc),
            ("l2", self.l2_size, self.l2_assoc),
            ("llc", self.llc_size, self.llc_assoc),
            ("tc", self.tc_size, self.tc_assoc),
        ] {
            if size == 0 || size % self.line_size != 0 {
                return Err(SimError::config(format!(
                    "{name} size must be a positive multiple of line size"
                )));
            }
            let lines = size / self.line_size;
            if assoc == 0 || assoc > lines {
                return Err(SimError::config(format!(
                    "{name} associativity must be in 1..={lines}"
                )));
            }
            if (lines / assoc) == 0 || !(lines / assoc).is_power_of_two() {
                return Err(SimError::config(format!(
                    "{name} set count must be a power of two"
                )));
            }
        }
        if self.itlb_entries == 0 || self.dtlb_entries == 0 {
            return Err(SimError::config("tlbs need at least one entry"));
        }
        Ok(())
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::paper_sut(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sut_is_valid() {
        MemoryConfig::paper_sut(2).validate().unwrap();
        MemoryConfig::paper_sut(4).validate().unwrap();
        MemoryConfig::tiny(2).validate().unwrap();
    }

    #[test]
    fn default_matches_paper() {
        let c = MemoryConfig::default();
        assert_eq!(c.llc_size, 2 * 1024 * 1024);
        assert_eq!(c.l2_size, 512 * 1024);
        assert_eq!(c.cpus, 2);
    }

    #[test]
    fn rejects_zero_cpus() {
        let mut c = MemoryConfig::paper_sut(2);
        c.cpus = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_non_power_of_two_line() {
        let mut c = MemoryConfig::paper_sut(2);
        c.line_size = 48;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_assoc() {
        let mut c = MemoryConfig::paper_sut(2);
        c.l2_assoc = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_size_not_multiple_of_line() {
        let mut c = MemoryConfig::paper_sut(2);
        c.l1_size = 1000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        let mut c = MemoryConfig::paper_sut(2);
        // 3 lines per way -> set count 3, not a power of two.
        c.l1_size = 3 * 64;
        c.l1_assoc = 1;
        assert!(c.validate().is_err());
    }
}
