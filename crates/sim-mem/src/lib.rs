//! # sim-mem
//!
//! Memory-hierarchy substrate for the ISPASS 2005 affinity reproduction.
//!
//! The paper attributes most of the affinity win to **last-level-cache
//! locality**: with interrupts and the consuming process on the same CPU,
//! TCP contexts, socket structures and skb metadata stay resident in one
//! cache hierarchy instead of ping-ponging between two. This crate models
//! exactly the machinery needed for that effect to *emerge*:
//!
//! * [`Cache`] — set-associative, LRU, write-allocate cache with
//!   hit/miss/eviction accounting;
//! * [`Tlb`] — small fully/set-associative translation buffer (ITLB and
//!   DTLB instances);
//! * [`MemorySystem`] — per-CPU three-level hierarchies (L1D, L2, LLC)
//!   plus a trace-cache stand-in for instruction delivery, glued together
//!   by a directory that invalidates remote copies on writes (MESI-lite)
//!   and services device DMA (which, as on real hardware, leaves arriving
//!   packet payload *uncached* — the paper's RX-copy observation);
//! * [`RegionTable`] / [`MemRegion`] — named memory regions (connection
//!   contexts, socket buffers, payload, descriptor rings, kernel text)
//!   that higher layers touch without doing raw address arithmetic.
//!
//! The geometry defaults mirror the paper's system under test (Pentium 4
//! Xeon MP: 8 KB L1D, 512 KB L2, 2 MB L3).
//!
//! ## Example
//!
//! ```
//! use sim_core::CpuId;
//! use sim_mem::{MemoryConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
//! let ctx = mem.add_region("tcp_context", 512);
//! let cpu0 = CpuId::new(0);
//! let cold = mem.data_touch(cpu0, ctx, 0, 512, false);
//! assert!(cold.llc_misses > 0); // first touch: compulsory misses
//! let warm = mem.data_touch(cpu0, ctx, 0, 512, false);
//! assert_eq!(warm.llc_misses, 0); // now resident
//! ```

// Unsafe is denied everywhere except the single audited `zeroed` module
// (calloc-backed vector growth for O(1)-fault bulk provisioning).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod region;
mod system;
mod tlb;
mod zeroed;

pub use cache::{AccessKind, Cache, CacheStats};
pub use config::MemoryConfig;
pub use region::{MemRegion, RegionId, RegionName, RegionPlan, RegionSpan, RegionTable};
pub use system::{ConstructionLayout, FetchResult, MemorySystem, TouchResult};
pub use tlb::{Tlb, TlbStats};
