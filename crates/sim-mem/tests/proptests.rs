//! Property-based tests for the cache/coherence invariants the machine
//! model depends on.

use proptest::prelude::*;
use sim_core::CpuId;
use sim_mem::{AccessKind, Cache, MemoryConfig, MemorySystem, RegionName, RegionPlan, Tlb};

proptest! {
    /// Hits + misses always equals accesses, and residency never exceeds
    /// capacity, for arbitrary access streams.
    #[test]
    fn cache_accounting_identities(lines in prop::collection::vec(0u64..512, 1..400)) {
        let mut c = Cache::new("t", 8, 4); // 32 lines
        for (i, &l) in lines.iter().enumerate() {
            let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
            c.access(l, kind);
            prop_assert!(c.resident_lines() <= c.capacity_lines());
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, lines.len() as u64);
    }

    /// An access immediately after an access to the same line always hits.
    #[test]
    fn cache_back_to_back_hits(lines in prop::collection::vec(0u64..256, 1..100)) {
        let mut c = Cache::new("t", 16, 4);
        for &l in &lines {
            c.access(l, AccessKind::Read);
            let again = c.access(l, AccessKind::Read);
            prop_assert!(again.hit, "immediate re-access of line {l} missed");
        }
    }

    /// Invalidate really removes: a subsequent access misses.
    #[test]
    fn cache_invalidate_forces_miss(line in 0u64..1024) {
        let mut c = Cache::new("t", 16, 4);
        c.access(line, AccessKind::Write);
        prop_assert!(c.contains(line));
        c.invalidate(line);
        prop_assert!(!c.contains(line));
        prop_assert!(!c.access(line, AccessKind::Read).hit);
    }

    /// TLB: hits + misses == accesses; capacity bound holds.
    #[test]
    fn tlb_accounting(pages in prop::collection::vec(0u64..64, 1..200)) {
        let mut t = Tlb::new(8);
        for &p in &pages {
            t.access(p);
            prop_assert!(t.resident() <= 8);
        }
        let s = t.stats();
        prop_assert_eq!(s.hits + s.misses, pages.len() as u64);
    }

    /// Coherence safety: a CPU re-reading data it just read hits, unless
    /// another CPU wrote or a device DMA'd in between.
    #[test]
    fn reread_without_remote_write_hits(
        offsets in prop::collection::vec(0u64..4000, 1..40),
    ) {
        let mut m = MemorySystem::new(MemoryConfig::tiny(2));
        let r = m.add_region("x", 4096);
        let cpu = CpuId::new(0);
        for &off in &offsets {
            m.data_touch(cpu, r, off, 64, false);
            let again = m.data_touch(cpu, r, off, 64, false);
            prop_assert_eq!(again.llc_misses, 0, "re-read missed at {}", off);
        }
    }

    /// Coherence: after a remote write, the next local read misses the
    /// local hierarchy; after a local re-read it hits again.
    #[test]
    fn remote_write_invalidates_then_recovers(off in 0u64..1024) {
        let mut m = MemorySystem::new(MemoryConfig::tiny(2));
        let r = m.add_region("x", 2048);
        let (c0, c1) = (CpuId::new(0), CpuId::new(1));
        m.data_touch(c0, r, off, 64, false);
        m.data_touch(c1, r, off, 64, true); // remote write
        let miss = m.data_touch(c0, r, off, 64, false);
        prop_assert!(miss.llc_misses > 0);
        let hit = m.data_touch(c0, r, off, 64, false);
        prop_assert_eq!(hit.llc_misses, 0);
    }

    /// DMA writes make the touched range uncached for every CPU.
    #[test]
    fn dma_uncaches_everywhere(off in 0u64..1000, len in 1u64..512) {
        let mut m = MemorySystem::new(MemoryConfig::tiny(2));
        let r = m.add_region("buf", 2048);
        for c in 0..2 {
            m.data_touch(CpuId::new(c), r, off, len, false);
        }
        m.dma_write(r, off, len);
        for c in 0..2 {
            let res = m.data_touch(CpuId::new(c), r, off, len, false);
            prop_assert!(res.llc_misses >= 1, "cpu{c} still had DMA'd data cached");
        }
    }

    /// Touch accounting: misses never exceed lines touched, per level.
    #[test]
    fn touch_miss_bounds(off in 0u64..100_000, len in 1u64..8192) {
        let mut m = MemorySystem::new(MemoryConfig::paper_sut(1));
        let r = m.add_region("big", 128 * 1024);
        let res = m.data_touch(CpuId::new(0), r, off, len, true);
        prop_assert!(res.llc_misses <= res.lines);
        prop_assert!(res.l2_misses <= res.lines);
        prop_assert!(res.l1_misses <= res.lines);
        prop_assert!(res.llc_misses <= res.l2_misses);
        prop_assert!(res.l2_misses <= res.l1_misses);
    }

    /// The incremental coherence directory (live `excl` exclusivity
    /// counts, sharer-bit ⟺ LLC-residency, inclusion) matches a naive
    /// full-recompute model directory after **every** step of an
    /// arbitrary operation sequence — reads, writes, instruction
    /// fetches, DMA invalidations and writebacks, issued by randomly
    /// steered CPUs against overlapping regions. Same idiom as the
    /// calendar-vs-heap and SPSC-vs-VecDeque model tests:
    /// `verify_incremental_state` rebuilds the aggregates from the
    /// directory and the actual cache contents and panics on any
    /// divergence, so a bug in any delta-update site shrinks to a
    /// minimal op sequence.
    #[test]
    fn incremental_directory_matches_full_recompute(
        ops in prop::collection::vec(
            (0u8..6, 0u32..3, 0usize..2, 0u64..6000, 1u64..700),
            1..60,
        ),
    ) {
        // Tiny geometry (64-line LLC) so capacity evictions,
        // back-invalidations and cross-CPU steals happen constantly.
        let mut m = MemorySystem::new(MemoryConfig::tiny(3));
        let regions = [m.add_region("a", 4096), m.add_region("b", 8192)];
        for &(kind, cpu, rix, off, len) in &ops {
            let cpu = CpuId::new(cpu);
            let r = regions[rix];
            match kind {
                0 => { m.data_touch(cpu, r, off, len, false); }
                1 => { m.data_touch(cpu, r, off, len, true); }
                2 => { m.code_fetch(cpu, r, off, len.min(300)); }
                3 => m.dma_write(r, off, len),
                4 => m.dma_read(r, off, len),
                _ => m.flush_tlbs(cpu),
            }
            m.verify_incremental_state();
        }
    }

    /// `add_regions_bulk` is byte-identical to a loop of `add_region`
    /// calls: same `RegionId`s, names, bases, sizes, footprint, directory
    /// and page-table shape, full page ownership, and per-CPU vector
    /// state — for arbitrary size sequences (including zero-size regions
    /// and the overlap case where a large region's cover runs past later
    /// small regions' pages), optionally on top of pre-existing
    /// incrementally-added regions.
    #[test]
    fn bulk_region_allocation_matches_incremental(
        pre in prop::collection::vec(1u64..5000, 0..4),
        sizes in prop::collection::vec(0u64..40_000, 1..40),
    ) {
        let mut inc = MemorySystem::new(MemoryConfig::tiny(3));
        let mut bulk = MemorySystem::new(MemoryConfig::tiny(3));
        for (i, &s) in pre.iter().enumerate() {
            let a = inc.add_region(format!("pre{i}"), s);
            let b = bulk.add_region(format!("pre{i}"), s);
            prop_assert_eq!(a, b);
        }
        let mut plan = RegionPlan::with_capacity(sizes.len());
        let mut inc_ids = Vec::with_capacity(sizes.len());
        for (i, &s) in sizes.iter().enumerate() {
            inc_ids.push(inc.add_region(format!("r{i}.buf"), s));
            plan.add(RegionName::indexed("r", i as u32, "buf"), s);
        }
        let span = bulk.add_regions_bulk(plan);
        prop_assert_eq!(span.len(), sizes.len());
        for (i, &want) in inc_ids.iter().enumerate() {
            prop_assert_eq!(span.get(i), want);
            let (ri, rb) = (inc.regions().get(want), bulk.regions().get(want));
            prop_assert_eq!(ri, rb, "region {} diverged", i);
        }
        prop_assert_eq!(inc.regions().len(), bulk.regions().len());
        prop_assert_eq!(inc.regions().footprint(), bulk.regions().footprint());
        prop_assert_eq!(inc.construction_layout(), bulk.construction_layout());
        bulk.verify_incremental_state();
    }
}
