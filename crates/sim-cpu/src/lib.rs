//! # sim-cpu
//!
//! CPU core model for the ISPASS 2005 affinity reproduction.
//!
//! The paper's methodology (its Figure 5) prices each architectural event
//! with a first-order penalty — a machine clear costs ~500 cycles, a
//! last-level-cache miss ~300, a branch mispredict ~30 — and checks that
//! those penalties explain where the time went. This crate turns that
//! methodology into the *forward* model: executing a unit of work costs
//!
//! ```text
//! cycles = instructions × base_cpi
//!        + Σ_event  count(event) × penalty(event)
//! ```
//!
//! where the event counts come from the real cache/TLB models in
//! [`sim_mem`] and from interrupt/IPI deliveries (machine clears). CPI and
//! MPI in the reproduced tables are therefore *measured outputs* of the
//! simulation, not inputs.
//!
//! Key types:
//!
//! * [`HwEvent`] / [`EventCosts`] — the event vocabulary and the penalty
//!   table (defaults are the paper's Figure 5 numbers);
//! * [`PerfCounters`] — a bank of per-event counters, the simulated
//!   analogue of the P4's performance-monitoring registers;
//! * [`WorkItem`] — a unit of work (a function body execution): an
//!   instruction count, a code footprint, a list of data touches,
//!   branch statistics;
//! * [`Core`] — executes work items against a [`sim_mem::MemorySystem`],
//!   charges machine clears for interrupt/IPI deliveries, and keeps
//!   cumulative counters.
//!
//! ## Example
//!
//! ```
//! use sim_core::CpuId;
//! use sim_cpu::{ClearReason, Core, CpuConfig, DataTouch, WorkItem};
//! use sim_mem::{MemoryConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemoryConfig::paper_sut(1));
//! let code = mem.add_region("f.text", 512);
//! let data = mem.add_region("f.data", 4096);
//! let mut core = Core::new(CpuId::new(0), CpuConfig::paper_sut());
//!
//! let item = WorkItem::new(1000)
//!     .code(code, 512)
//!     .touch(DataTouch::read(data, 0, 4096))
//!     .branch_fraction(0.15)
//!     .mispredict_rate(0.01);
//! let out = core.execute(&mut mem, &item);
//! assert!(out.cycles > 1000); // misses make CPI > base
//! let penalty = core.machine_clear(ClearReason::DeviceInterrupt);
//! assert_eq!(penalty, 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core_model;
mod counters;
mod events;
mod work;

pub use core_model::{Core, CpuConfig, ExecOutcome};
pub use counters::PerfCounters;
pub use events::{ClearReason, EventCosts, HwEvent};
pub use work::{DataTouch, TouchList, WorkItem};
