//! Performance counter bank.

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::events::HwEvent;

/// A bank of per-event counters — the simulated analogue of the Pentium
/// 4's performance-monitoring registers that Oprofile samples.
///
/// # Example
///
/// ```
/// use sim_cpu::{HwEvent, PerfCounters};
///
/// let mut c = PerfCounters::default();
/// c.bump(HwEvent::Instructions, 100);
/// c.bump(HwEvent::Cycles, 420);
/// assert!((c.cpi() - 4.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Unhalted cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Machine clears (pipeline flushes).
    pub machine_clears: u64,
    /// Trace-cache misses.
    pub tc_misses: u64,
    /// L2 misses (hit LLC).
    pub l2_misses: u64,
    /// LLC misses (memory accesses).
    pub llc_misses: u64,
    /// ITLB page walks.
    pub itlb_misses: u64,
    /// DTLB page walks.
    pub dtlb_misses: u64,
    /// Retired branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub br_mispredicts: u64,
}

impl PerfCounters {
    /// Increments the counter for `event` by `count`.
    pub fn bump(&mut self, event: HwEvent, count: u64) {
        *self.slot_mut(event) += count;
    }

    /// Reads the counter for `event`.
    #[must_use]
    pub fn get(&self, event: HwEvent) -> u64 {
        match event {
            HwEvent::Cycles => self.cycles,
            HwEvent::Instructions => self.instructions,
            HwEvent::MachineClear => self.machine_clears,
            HwEvent::TcMiss => self.tc_misses,
            HwEvent::L2Miss => self.l2_misses,
            HwEvent::LlcMiss => self.llc_misses,
            HwEvent::ItlbMiss => self.itlb_misses,
            HwEvent::DtlbMiss => self.dtlb_misses,
            HwEvent::Branch => self.branches,
            HwEvent::BranchMispredict => self.br_mispredicts,
        }
    }

    fn slot_mut(&mut self, event: HwEvent) -> &mut u64 {
        match event {
            HwEvent::Cycles => &mut self.cycles,
            HwEvent::Instructions => &mut self.instructions,
            HwEvent::MachineClear => &mut self.machine_clears,
            HwEvent::TcMiss => &mut self.tc_misses,
            HwEvent::L2Miss => &mut self.l2_misses,
            HwEvent::LlcMiss => &mut self.llc_misses,
            HwEvent::ItlbMiss => &mut self.itlb_misses,
            HwEvent::DtlbMiss => &mut self.dtlb_misses,
            HwEvent::Branch => &mut self.branches,
            HwEvent::BranchMispredict => &mut self.br_mispredicts,
        }
    }

    /// Cycles per instruction (0 when no instructions retired).
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// LLC misses per instruction — the paper's "MPI".
    #[must_use]
    pub fn mpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.instructions as f64
        }
    }

    /// Branches as a fraction of instructions — the paper's "% Branches".
    #[must_use]
    pub fn branch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branches as f64 / self.instructions as f64
        }
    }

    /// Mispredicted branches as a fraction of branches — the paper's
    /// "% Br mispredicted".
    #[must_use]
    pub fn mispredict_fraction(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.br_mispredicts as f64 / self.branches as f64
        }
    }

    /// True if every counter is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let PerfCounters {
            cycles,
            instructions,
            machine_clears,
            tc_misses,
            l2_misses,
            llc_misses,
            itlb_misses,
            dtlb_misses,
            branches,
            br_mispredicts,
        } = *self;
        cycles
            | instructions
            | machine_clears
            | tc_misses
            | l2_misses
            | llc_misses
            | itlb_misses
            | dtlb_misses
            | branches
            | br_mispredicts
            == 0
    }
}

impl Add for PerfCounters {
    type Output = PerfCounters;

    fn add(mut self, rhs: PerfCounters) -> PerfCounters {
        self += rhs;
        self
    }
}

impl AddAssign for PerfCounters {
    fn add_assign(&mut self, rhs: PerfCounters) {
        // Field-by-field: this runs once per modelled function call, and
        // the `HwEvent` round-trip (enum match per event) showed up on the
        // profile. Destructuring keeps it exhaustive: adding a counter
        // field without extending this impl is a compile error.
        let PerfCounters {
            cycles,
            instructions,
            machine_clears,
            tc_misses,
            l2_misses,
            llc_misses,
            itlb_misses,
            dtlb_misses,
            branches,
            br_mispredicts,
        } = rhs;
        self.cycles += cycles;
        self.instructions += instructions;
        self.machine_clears += machine_clears;
        self.tc_misses += tc_misses;
        self.l2_misses += l2_misses;
        self.llc_misses += llc_misses;
        self.itlb_misses += itlb_misses;
        self.dtlb_misses += dtlb_misses;
        self.branches += branches;
        self.br_mispredicts += br_mispredicts;
    }
}

impl std::iter::Sum for PerfCounters {
    fn sum<I: Iterator<Item = PerfCounters>>(iter: I) -> PerfCounters {
        iter.fold(PerfCounters::default(), |acc, c| acc + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get_roundtrip() {
        let mut c = PerfCounters::default();
        for (i, e) in HwEvent::ALL.into_iter().enumerate() {
            c.bump(e, (i + 1) as u64);
        }
        for (i, e) in HwEvent::ALL.into_iter().enumerate() {
            assert_eq!(c.get(e), (i + 1) as u64);
        }
    }

    #[test]
    fn derived_ratios() {
        let mut c = PerfCounters::default();
        c.cycles = 500;
        c.instructions = 100;
        c.llc_misses = 2;
        c.branches = 20;
        c.br_mispredicts = 1;
        assert!((c.cpi() - 5.0).abs() < 1e-12);
        assert!((c.mpi() - 0.02).abs() < 1e-12);
        assert!((c.branch_fraction() - 0.2).abs() < 1e-12);
        assert!((c.mispredict_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ratios_safe_when_empty() {
        let c = PerfCounters::default();
        assert!(c.is_empty());
        assert_eq!(c.cpi(), 0.0);
        assert_eq!(c.mpi(), 0.0);
        assert_eq!(c.branch_fraction(), 0.0);
        assert_eq!(c.mispredict_fraction(), 0.0);
    }

    #[test]
    fn add_and_sum() {
        let mut a = PerfCounters::default();
        a.bump(HwEvent::Cycles, 10);
        let mut b = PerfCounters::default();
        b.bump(HwEvent::Cycles, 5);
        b.bump(HwEvent::LlcMiss, 1);
        let c = a + b;
        assert_eq!(c.cycles, 15);
        assert_eq!(c.llc_misses, 1);
        let total: PerfCounters = [a, b, c].into_iter().sum();
        assert_eq!(total.cycles, 30);
    }
}
