//! Units of executable work.
//!
//! A [`WorkItem`] describes one execution of a function body: how many
//! instructions retire, what code footprint is fetched, which memory it
//! touches, and its branch statistics. The TCP stack model (`sim-tcp`)
//! builds these from calibrated per-function profiles.

use serde::{Deserialize, Serialize};
use sim_mem::RegionId;

/// One contiguous data access within a work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataTouch {
    /// Region touched.
    pub region: RegionId,
    /// Byte offset within the region (wraps at the region size).
    pub offset: u64,
    /// Bytes touched.
    pub bytes: u64,
    /// Whether the touch writes (write-allocate, invalidates remote copies).
    pub write: bool,
}

impl DataTouch {
    /// A read of `bytes` bytes at `offset`.
    #[must_use]
    pub fn read(region: RegionId, offset: u64, bytes: u64) -> Self {
        DataTouch {
            region,
            offset,
            bytes,
            write: false,
        }
    }

    /// A write of `bytes` bytes at `offset`.
    #[must_use]
    pub fn write(region: RegionId, offset: u64, bytes: u64) -> Self {
        DataTouch {
            region,
            offset,
            bytes,
            write: true,
        }
    }
}

/// Inline, fixed-capacity list of [`DataTouch`]es.
///
/// Work items are built on the hot path (one per modelled function call)
/// and no stack function touches more than [`TouchList::CAPACITY`] ranges,
/// so the touches live inline in the `WorkItem` instead of behind a heap
/// allocation. Derefs to `[DataTouch]` for iteration and indexing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TouchList {
    items: [DataTouch; TouchList::CAPACITY],
    len: u8,
}

impl TouchList {
    /// Maximum touches one work item can carry.
    pub const CAPACITY: usize = 4;

    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        TouchList {
            items: [DataTouch::read(RegionId::PLACEHOLDER, 0, 0); TouchList::CAPACITY],
            len: 0,
        }
    }

    /// Appends a touch.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds [`TouchList::CAPACITY`] touches.
    pub fn push(&mut self, touch: DataTouch) {
        assert!(
            (self.len as usize) < TouchList::CAPACITY,
            "work item exceeds {} data touches",
            TouchList::CAPACITY
        );
        self.items[self.len as usize] = touch;
        self.len += 1;
    }

    /// The touches as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[DataTouch] {
        &self.items[..self.len as usize]
    }
}

impl Default for TouchList {
    fn default() -> Self {
        TouchList::new()
    }
}

impl std::ops::Deref for TouchList {
    type Target = [DataTouch];

    fn deref(&self) -> &[DataTouch] {
        self.as_slice()
    }
}

impl PartialEq for TouchList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TouchList {}

impl<'a> IntoIterator for &'a TouchList {
    type Item = &'a DataTouch;
    type IntoIter = std::slice::Iter<'a, DataTouch>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A unit of work for [`crate::Core::execute`].
///
/// Construct with [`WorkItem::new`] and chain the builder-style setters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Instructions retired by this execution.
    pub instructions: u64,
    /// Base cycles-per-instruction with a perfect memory system.
    ///
    /// The P4 retires up to 3 µops/cycle, so 0.33 is the floor; code with
    /// long dependency chains or serializing instructions (syscall entry)
    /// carries a higher base.
    pub base_cpi: f64,
    /// Fixed cycles charged regardless of instruction count (e.g. the
    /// privilege-transition cost of a syscall).
    pub fixed_cycles: u64,
    /// Code footprint fetched through the trace cache.
    pub code: Option<(RegionId, u64)>,
    /// Data touches performed, in order.
    pub touches: TouchList,
    /// Fraction of instructions that are branches.
    pub branch_fraction: f64,
    /// Fraction of branches mispredicted.
    pub mispredict_rate: f64,
}

impl WorkItem {
    /// Creates a work item retiring `instructions` instructions with
    /// default base CPI (0.5), no code/data footprint and no branches.
    #[must_use]
    pub fn new(instructions: u64) -> Self {
        WorkItem {
            instructions,
            base_cpi: 0.5,
            fixed_cycles: 0,
            code: None,
            touches: TouchList::new(),
            branch_fraction: 0.0,
            mispredict_rate: 0.0,
        }
    }

    /// Sets the code footprint: `bytes` bytes fetched from `region`.
    #[must_use]
    pub fn code(mut self, region: RegionId, bytes: u64) -> Self {
        self.code = Some((region, bytes));
        self
    }

    /// Adds a data touch.
    #[must_use]
    pub fn touch(mut self, touch: DataTouch) -> Self {
        self.touches.push(touch);
        self
    }

    /// Sets the base CPI.
    ///
    /// # Panics
    ///
    /// Panics if `cpi` is not positive and finite.
    #[must_use]
    pub fn base_cpi(mut self, cpi: f64) -> Self {
        assert!(cpi.is_finite() && cpi > 0.0, "base CPI must be positive");
        self.base_cpi = cpi;
        self
    }

    /// Sets fixed cycles charged on top of per-instruction cost.
    #[must_use]
    pub fn fixed_cycles(mut self, cycles: u64) -> Self {
        self.fixed_cycles = cycles;
        self
    }

    /// Sets the branch fraction (clamped to `[0, 1]`).
    #[must_use]
    pub fn branch_fraction(mut self, f: f64) -> Self {
        self.branch_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the branch mispredict rate (clamped to `[0, 1]`).
    #[must_use]
    pub fn mispredict_rate(mut self, r: f64) -> Self {
        self.mispredict_rate = r.clamp(0.0, 1.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> RegionId {
        let mut t = sim_mem::RegionTable::new(4096);
        t.add("x", 64)
    }

    #[test]
    fn builder_chains() {
        let r = region();
        let w = WorkItem::new(100)
            .code(r, 64)
            .touch(DataTouch::read(r, 0, 32))
            .touch(DataTouch::write(r, 32, 32))
            .base_cpi(0.4)
            .fixed_cycles(250)
            .branch_fraction(0.2)
            .mispredict_rate(0.05);
        assert_eq!(w.instructions, 100);
        assert_eq!(w.code, Some((r, 64)));
        assert_eq!(w.touches.len(), 2);
        assert!(w.touches[1].write);
        assert_eq!(w.fixed_cycles, 250);
    }

    #[test]
    fn fractions_clamped() {
        let w = WorkItem::new(1).branch_fraction(3.0).mispredict_rate(-1.0);
        assert_eq!(w.branch_fraction, 1.0);
        assert_eq!(w.mispredict_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cpi_rejected() {
        let _ = WorkItem::new(1).base_cpi(0.0);
    }
}
