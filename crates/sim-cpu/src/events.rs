//! Hardware event vocabulary and the penalty table.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The architectural events the paper monitors (its §6.2 selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HwEvent {
    /// Unhalted clock cycles.
    Cycles,
    /// Retired instructions.
    Instructions,
    /// Pipeline flushes ("machine clears"): interrupts, IPIs, memory
    /// ordering violations, self-modifying code.
    MachineClear,
    /// Trace-cache misses (decode path re-entered).
    TcMiss,
    /// L2 misses that hit the last-level cache.
    L2Miss,
    /// Last-level cache misses (memory accesses).
    LlcMiss,
    /// Instruction-TLB page walks.
    ItlbMiss,
    /// Data-TLB page walks.
    DtlbMiss,
    /// Retired branches.
    Branch,
    /// Mispredicted branches.
    BranchMispredict,
}

impl HwEvent {
    /// Every event, in a stable order (used for iteration in reports).
    pub const ALL: [HwEvent; 10] = [
        HwEvent::Cycles,
        HwEvent::Instructions,
        HwEvent::MachineClear,
        HwEvent::TcMiss,
        HwEvent::L2Miss,
        HwEvent::LlcMiss,
        HwEvent::ItlbMiss,
        HwEvent::DtlbMiss,
        HwEvent::Branch,
        HwEvent::BranchMispredict,
    ];

    /// Short label used in tables ("LLC miss", "Machine clear", …).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HwEvent::Cycles => "Cycles",
            HwEvent::Instructions => "Instr",
            HwEvent::MachineClear => "Machine clear",
            HwEvent::TcMiss => "TC miss",
            HwEvent::L2Miss => "L2 miss",
            HwEvent::LlcMiss => "LLC miss",
            HwEvent::ItlbMiss => "ITLB miss",
            HwEvent::DtlbMiss => "DTLB miss",
            HwEvent::Branch => "Branch",
            HwEvent::BranchMispredict => "Br Mispredict",
        }
    }
}

impl fmt::Display for HwEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a machine clear happened.
///
/// The paper verifies that memory-ordering and self-modifying-code clears
/// are "near zero" in this workload, leaving interrupts (device and IPI)
/// as the dominant cause — we track the breakdown so that claim can be
/// checked in the reproduction too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ClearReason {
    /// A device (NIC) interrupt was delivered to this CPU.
    DeviceInterrupt,
    /// An inter-processor interrupt was delivered to this CPU.
    Ipi,
    /// A page fault or other exception.
    PageFault,
    /// A memory-ordering violation (rare in this workload).
    MemoryOrdering,
    /// Self-modifying code (absent in this workload).
    SelfModifyingCode,
}

impl ClearReason {
    /// Every reason, in a stable order.
    pub const ALL: [ClearReason; 5] = [
        ClearReason::DeviceInterrupt,
        ClearReason::Ipi,
        ClearReason::PageFault,
        ClearReason::MemoryOrdering,
        ClearReason::SelfModifyingCode,
    ];

    /// Index into per-reason count arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ClearReason::DeviceInterrupt => 0,
            ClearReason::Ipi => 1,
            ClearReason::PageFault => 2,
            ClearReason::MemoryOrdering => 3,
            ClearReason::SelfModifyingCode => 4,
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ClearReason::DeviceInterrupt => "device interrupt",
            ClearReason::Ipi => "IPI",
            ClearReason::PageFault => "page fault",
            ClearReason::MemoryOrdering => "memory ordering",
            ClearReason::SelfModifyingCode => "self-modifying code",
        }
    }
}

impl fmt::Display for ClearReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycle penalties per event occurrence.
///
/// Defaults are the paper's Figure 5 "expected event penalties" for the
/// Pentium 4 (taken from the VTune 7.1 tuning assistant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCosts {
    /// Machine clear (pipeline flush): highly workload dependent; the
    /// paper uses 500 as a reasonable average for the P4's deep pipeline.
    pub machine_clear: u64,
    /// Trace-cache miss.
    pub tc_miss: u64,
    /// L2 miss that hits the LLC.
    pub l2_miss: u64,
    /// LLC miss (memory access).
    pub llc_miss: u64,
    /// ITLB page walk.
    pub itlb_miss: u64,
    /// DTLB page walk.
    pub dtlb_miss: u64,
    /// Branch mispredict.
    pub br_mispredict: u64,
    /// L1 miss that hits L2. Not one of the paper's Figure 5 indicator
    /// events (it is folded into "everything else"), but the forward model
    /// needs it to charge *some* latency for L2 hits.
    pub l1_miss: u64,
}

impl EventCosts {
    /// The paper's Figure 5 penalty table.
    #[must_use]
    pub const fn paper() -> Self {
        EventCosts {
            machine_clear: 500,
            tc_miss: 20,
            l2_miss: 10,
            llc_miss: 300,
            itlb_miss: 30,
            dtlb_miss: 36,
            br_mispredict: 30,
            l1_miss: 7,
        }
    }

    /// Penalty for an event, if it is an indicator event with a cost
    /// (cycles and instructions have none).
    #[must_use]
    pub fn penalty(&self, event: HwEvent) -> Option<u64> {
        match event {
            HwEvent::MachineClear => Some(self.machine_clear),
            HwEvent::TcMiss => Some(self.tc_miss),
            HwEvent::L2Miss => Some(self.l2_miss),
            HwEvent::LlcMiss => Some(self.llc_miss),
            HwEvent::ItlbMiss => Some(self.itlb_miss),
            HwEvent::DtlbMiss => Some(self.dtlb_miss),
            HwEvent::BranchMispredict => Some(self.br_mispredict),
            HwEvent::Cycles | HwEvent::Instructions | HwEvent::Branch => None,
        }
    }
}

impl Default for EventCosts {
    fn default() -> Self {
        EventCosts::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs_match_figure5() {
        let c = EventCosts::paper();
        assert_eq!(c.machine_clear, 500);
        assert_eq!(c.tc_miss, 20);
        assert_eq!(c.l2_miss, 10);
        assert_eq!(c.llc_miss, 300);
        assert_eq!(c.itlb_miss, 30);
        assert_eq!(c.dtlb_miss, 36);
        assert_eq!(c.br_mispredict, 30);
    }

    #[test]
    fn penalty_lookup() {
        let c = EventCosts::default();
        assert_eq!(c.penalty(HwEvent::LlcMiss), Some(300));
        assert_eq!(c.penalty(HwEvent::Cycles), None);
        assert_eq!(c.penalty(HwEvent::Instructions), None);
        assert_eq!(c.penalty(HwEvent::Branch), None);
    }

    #[test]
    fn event_labels_stable() {
        assert_eq!(HwEvent::LlcMiss.label(), "LLC miss");
        assert_eq!(HwEvent::MachineClear.to_string(), "Machine clear");
        assert_eq!(HwEvent::ALL.len(), 10);
    }

    #[test]
    fn clear_reason_indices_are_distinct() {
        let mut seen = [false; 5];
        for r in ClearReason::ALL {
            assert!(!seen[r.index()], "duplicate index for {r}");
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
