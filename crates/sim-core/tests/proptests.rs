//! Property-based tests for the simulation engine's invariants.

use proptest::prelude::*;
use sim_core::{Accumulator, EventQueue, Histogram, SimRng, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, and equal-time
    /// events pop in insertion order.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_cycles(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated for equal times");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Popping never yields more or fewer events than were pushed.
    #[test]
    fn event_queue_conserves_events(times in prop::collection::vec(0u64..100, 0..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_cycles(t), ());
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// `next_below(b)` is always `< b`, for any seed and bound.
    #[test]
    fn rng_next_below_in_bounds(seed: u64, bound in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// `range(lo, hi)` stays inside the half-open interval.
    #[test]
    fn rng_range_in_bounds(seed: u64, lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        let hi = lo + width;
        for _ in 0..20 {
            let x = rng.range(lo, hi);
            prop_assert!((lo..hi).contains(&x));
        }
    }

    /// Identical seeds give identical streams; shuffles are permutations.
    #[test]
    fn rng_shuffle_is_permutation(seed: u64, n in 0usize..64) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Parallel (merged) Welford equals the sequential accumulation.
    #[test]
    fn accumulator_merge_equals_sequential(
        xs in prop::collection::vec(-1e6f64..1e6, 0..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..split] {
            left.add(x);
        }
        for &x in &xs[split..] {
            right.add(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - whole.variance()).abs() < 1.0);
        }
    }

    /// Histogram never loses observations.
    #[test]
    fn histogram_conserves_counts(values in prop::collection::vec(0u64..10_000, 0..200)) {
        let mut h = Histogram::new(64, 32);
        for &v in &values {
            h.record(v);
        }
        let bucketed: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucketed + h.overflow(), values.len() as u64);
        prop_assert_eq!(h.total(), values.len() as u64);
    }
}
