//! Property-based tests for the simulation engine's invariants.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use sim_core::{Accumulator, EventQueue, Histogram, ShardedEventQueue, SimRng, SimTime};

/// Reference model of the pre-calendar event queue: one binary heap
/// ordered by `(time, seq)`, with the same causality watermark. The
/// calendar-backed [`EventQueue`] must be observationally identical to
/// this on every interleaving.
#[derive(Default)]
struct ModelQueue {
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    next_seq: u64,
    watermark: u64,
}

impl ModelQueue {
    fn push(&mut self, time: u64, payload: usize) {
        assert!(time >= self.watermark, "model: push into the past");
        self.heap.push(Reverse((time, self.next_seq, payload)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        let Reverse((time, _seq, payload)) = self.heap.pop()?;
        self.watermark = time;
        Some((time, payload))
    }

    fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((t, _, _))| t)
    }
}

proptest! {
    /// Events always pop in non-decreasing time order, and equal-time
    /// events pop in insertion order.
    #[test]
    fn event_queue_pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_cycles(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated for equal times");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Popping never yields more or fewer events than were pushed.
    #[test]
    fn event_queue_conserves_events(times in prop::collection::vec(0u64..100, 0..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_cycles(t), ());
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// `next_below(b)` is always `< b`, for any seed and bound.
    #[test]
    fn rng_next_below_in_bounds(seed: u64, bound in 1u64..u64::MAX) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// `range(lo, hi)` stays inside the half-open interval.
    #[test]
    fn rng_range_in_bounds(seed: u64, lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        let hi = lo + width;
        for _ in 0..20 {
            let x = rng.range(lo, hi);
            prop_assert!((lo..hi).contains(&x));
        }
    }

    /// Identical seeds give identical streams; shuffles are permutations.
    #[test]
    fn rng_shuffle_is_permutation(seed: u64, n in 0usize..64) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Parallel (merged) Welford equals the sequential accumulation.
    #[test]
    fn accumulator_merge_equals_sequential(
        xs in prop::collection::vec(-1e6f64..1e6, 0..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &xs[..split] {
            left.add(x);
        }
        for &x in &xs[split..] {
            right.add(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if !xs.is_empty() {
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((left.variance() - whole.variance()).abs() < 1.0);
        }
    }

    /// The calendar-backed queue matches the old binary-heap queue on
    /// random push/pop/schedule_now interleavings: identical pop order,
    /// watermarks, peeks, and lengths. Offsets span both the near ring
    /// and the far heap so the merge between the two stores is exercised,
    /// and a lane-striped [`ShardedEventQueue`] rides along to prove lane
    /// assignment never leaks into the observable order.
    #[test]
    fn calendar_queue_matches_binary_heap_model(
        ops in prop::collection::vec((0u8..4, 0u64..40_000), 1..300),
    ) {
        let mut model = ModelQueue::default();
        let mut cal = EventQueue::new();
        let mut sharded = ShardedEventQueue::new(3);
        for (i, &(op, offset)) in ops.iter().enumerate() {
            match op {
                // Near push: lands in the calendar ring.
                0 => {
                    let t = model.watermark + (offset % 1500);
                    model.push(t, i);
                    cal.push(SimTime::from_cycles(t), i);
                    sharded.push(i % 3, SimTime::from_cycles(t), i);
                }
                // Far push: overflows past the ring span.
                1 => {
                    let t = model.watermark + offset;
                    model.push(t, i);
                    cal.push(SimTime::from_cycles(t), i);
                    sharded.push(i % 3, SimTime::from_cycles(t), i);
                }
                2 => {
                    model.push(model.watermark, i);
                    cal.schedule_now(i);
                    sharded.schedule_now(i % 3, i);
                }
                _ => {
                    let want = model.pop();
                    let got = cal.pop().map(|(t, p)| (t.cycles(), p));
                    prop_assert_eq!(got, want);
                    let got = sharded.pop().map(|(t, p)| (t.cycles(), p));
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(cal.peek_time().map(SimTime::cycles), model.peek_time());
            prop_assert_eq!(sharded.peek_time().map(SimTime::cycles), model.peek_time());
            prop_assert_eq!(cal.len(), model.heap.len());
            prop_assert_eq!(sharded.len(), model.heap.len());
            prop_assert_eq!(cal.now().cycles(), model.watermark);
            prop_assert_eq!(sharded.now().cycles(), model.watermark);
        }
        // Drain: the full remaining order must agree.
        loop {
            let want = model.pop();
            let got = cal.pop().map(|(t, p)| (t.cycles(), p));
            prop_assert_eq!(got, want);
            let got = sharded.pop().map(|(t, p)| (t.cycles(), p));
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// The calendar queue panics on a push into the past exactly when the
    /// heap model would (time below the watermark), with the same
    /// causality message.
    #[test]
    fn calendar_queue_watermark_panics_match_model(
        warm in prop::collection::vec(0u64..5000, 1..20),
        t in 0u64..6000,
    ) {
        let mut q = EventQueue::new();
        for (i, &w) in warm.iter().enumerate() {
            q.push(SimTime::from_cycles(w), i);
        }
        // Pop half to advance the watermark.
        for _ in 0..(warm.len() + 1) / 2 {
            q.pop();
        }
        let watermark = q.now().cycles();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.push(SimTime::from_cycles(t), usize::MAX);
        }));
        if t < watermark {
            let payload = result.expect_err("push into the past must panic");
            let msg = payload.downcast_ref::<String>().expect("panic message");
            prop_assert!(
                msg.contains("already advanced"),
                "unexpected panic message: {}", msg
            );
        } else {
            prop_assert!(result.is_ok(), "push at/after the watermark must not panic");
        }
    }

    /// Histogram never loses observations.
    #[test]
    fn histogram_conserves_counts(values in prop::collection::vec(0u64..10_000, 0..200)) {
        let mut h = Histogram::new(64, 32);
        for &v in &values {
            h.record(v);
        }
        let bucketed: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucketed + h.overflow(), values.len() as u64);
        prop_assert_eq!(h.total(), values.len() as u64);
    }
}
