//! Error type shared by the simulation crates.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the simulation engine and the machine model built on
/// top of it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A component was addressed with an id that does not exist
    /// (e.g. pinning a task to a CPU the machine does not have).
    UnknownId {
        /// What kind of entity was looked up (`"cpu"`, `"task"`, …).
        kind: &'static str,
        /// The offending index.
        index: usize,
    },
    /// A configuration value was rejected.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An affinity mask excluded every CPU in the system.
    EmptyAffinityMask,
    /// An operation needed the simulation to have produced data it has not
    /// produced yet (e.g. reading results before `run`).
    NotRun,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownId { kind, index } => {
                write!(f, "unknown {kind} index {index}")
            }
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            SimError::EmptyAffinityMask => {
                write!(f, "affinity mask selects no cpu")
            }
            SimError::NotRun => write!(f, "simulation has not been run yet"),
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// Convenience constructor for configuration errors.
    #[must_use]
    pub fn config(reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::UnknownId {
            kind: "cpu",
            index: 9,
        };
        assert_eq!(e.to_string(), "unknown cpu index 9");
        assert_eq!(
            SimError::config("bad").to_string(),
            "invalid configuration: bad"
        );
        assert_eq!(
            SimError::EmptyAffinityMask.to_string(),
            "affinity mask selects no cpu"
        );
        assert_eq!(
            SimError::NotRun.to_string(),
            "simulation has not been run yet"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
