//! A small, fully deterministic random number generator.
//!
//! The simulator needs reproducible pseudo-randomness (packet arrival
//! jitter, scheduler tie-breaks, sampling-skid draws). We use
//! xoshiro256**, seeded through SplitMix64, implemented locally so that
//! simulation results never change underneath us when an external RNG
//! crate rolls a new version.

use serde::{Deserialize, Serialize};

/// Deterministic PRNG (xoshiro256** seeded via SplitMix64).
///
/// Two `SimRng`s created from the same seed produce identical streams; the
/// full simulator is therefore replayable from a single `u64` seed.
///
/// # Example
///
/// ```
/// use sim_core::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion guarantees a non-zero xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// component its own stream so adding a draw in one component does not
    /// perturb another.
    #[must_use]
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method: unbiased and fast.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                // Fast path: no bias possible.
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean; used for
    /// inter-arrival jitter. Returns 0 for a non-positive mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds look identical");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
        assert_ne!(x, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SimRng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::new(13);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(17);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean} far from 10");
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(19);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::new(29);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn fork_gives_independent_streams() {
        let mut parent = SimRng::new(31);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::new(37);
        for _ in 0..1000 {
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }
}
