//! # sim-core
//!
//! Deterministic discrete-event simulation engine underpinning the
//! reproduction of *Architectural Characterization of Processor Affinity in
//! Network Processing* (ISPASS 2005).
//!
//! The engine is deliberately generic: it knows nothing about CPUs, NICs or
//! TCP. It provides
//!
//! * [`SimTime`] — simulated time measured in clock cycles,
//! * [`EventQueue`] — a stable priority queue of timestamped events,
//! * [`SimRng`] — a small, fully deterministic random number generator,
//! * identifier newtypes ([`CpuId`], [`TaskId`], [`IrqVector`], [`DeviceId`]),
//! * statistics helpers ([`Accumulator`], [`Histogram`], [`RateMeter`]).
//!
//! Higher layers (`sim-cpu`, `sim-os`, `sim-net`, `sim-tcp`) compose these
//! into a machine model.
//!
//! ## Example
//!
//! ```
//! use sim_core::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::from_cycles(20), "second");
//! q.push(SimTime::from_cycles(10), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.cycles(), ev), (10, "first"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod event;
mod ids;
mod rng;
mod stats;
mod time;
mod trace;

pub use error::SimError;
pub use event::{EventQueue, ScheduledEvent, ShardedEventQueue};
pub use ids::{ConnectionId, CpuId, DeviceId, IrqVector, TaskId};
pub use rng::SimRng;
pub use stats::{Accumulator, Histogram, RateMeter};
pub use time::{Frequency, SimTime};
pub use trace::{TraceEntry, TraceRing};

/// Result alias used across the simulation crates.
pub type Result<T> = std::result::Result<T, SimError>;
