//! Statistics helpers used by the measurement and analysis layers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Running mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use sim_core::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [2.0, 4.0, 6.0] {
///     acc.add(x);
/// }
/// assert_eq!(acc.count(), 3);
/// assert!((acc.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Fixed-bucket histogram over `[0, bound)` with an overflow bucket.
///
/// Used for e.g. per-operation latency distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    #[must_use]
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations that fell past the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `idx` (0 when out of range).
    #[must_use]
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// Iterator over `(bucket_lower_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }

    /// Approximate quantile (lower bound of the bucket containing it).
    /// Returns `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(i as u64 * self.bucket_width);
            }
        }
        Some(self.buckets.len() as u64 * self.bucket_width)
    }
}

/// Tracks an amount accumulated over simulated time and converts it to a
/// rate; used for throughput (bits over cycles) and utilization (busy
/// cycles over wall cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateMeter {
    amount: u64,
}

impl RateMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        RateMeter::default()
    }

    /// Adds to the accumulated amount.
    pub fn add(&mut self, amount: u64) {
        self.amount = self.amount.saturating_add(amount);
    }

    /// Accumulated amount.
    #[must_use]
    pub fn amount(&self) -> u64 {
        self.amount
    }

    /// Amount per cycle over an elapsed window (0 rate for a 0 window).
    #[must_use]
    pub fn per_cycle(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            0.0
        } else {
            self.amount as f64 / elapsed_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_mean_and_variance() {
        let mut acc = Accumulator::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            acc.add(x);
        }
        assert_eq!(acc.count(), 4);
        assert!((acc.mean() - 2.5).abs() < 1e-12);
        assert!((acc.variance() - 1.25).abs() < 1e-12);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 4.0);
    }

    #[test]
    fn accumulator_empty_is_zeroish() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &data {
            whole.add(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &data[..37] {
            left.add(x);
        }
        for &x in &data[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn accumulator_merge_with_empty() {
        let mut a = Accumulator::new();
        a.add(5.0);
        let b = Accumulator::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Accumulator::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn histogram_basic_buckets() {
        let mut h = Histogram::new(10, 5);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(49);
        h.record(50); // overflow
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(49));
        assert_eq!(h.quantile(1.0), Some(99));
        let empty = Histogram::new(1, 10);
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn histogram_iter_lower_bounds() {
        let h = Histogram::new(8, 3);
        let bounds: Vec<u64> = h.iter().map(|(b, _)| b).collect();
        assert_eq!(bounds, [0, 8, 16]);
    }

    #[test]
    fn rate_meter() {
        let mut m = RateMeter::new();
        m.add(1000);
        m.add(500);
        assert_eq!(m.amount(), 1500);
        assert!((m.per_cycle(3000) - 0.5).abs() < 1e-12);
        assert_eq!(m.per_cycle(0), 0.0);
    }
}
