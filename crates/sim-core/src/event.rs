//! A stable, deterministic event queue.
//!
//! Discrete-event simulators live or die by the determinism of their event
//! ordering. [`EventQueue`] orders events first by timestamp and breaks
//! ties by insertion sequence number, so two events scheduled for the same
//! cycle always pop in the order they were pushed, regardless of storage
//! internals.
//!
//! # Causality contract
//!
//! The queue tracks a *watermark*: the timestamp of the most recently
//! popped event, i.e. how far simulated time has provably advanced. Every
//! [`EventQueue::push`] must satisfy `time >= watermark` — scheduling
//! behind the watermark would mean an event fires in the caller's past,
//! and the queue panics rather than silently reordering history.
//! Scheduling *at* the watermark is always legal (the new event pops
//! after anything already pending at that cycle, FIFO). Callers reacting
//! to the event being processed right now should use
//! [`EventQueue::schedule_now`], which pins the timestamp to the
//! watermark and therefore can never violate the contract; callers
//! computing a future timestamp from per-CPU clocks that may trail the
//! queue (the machine's CPUs run ahead of and behind device time) must
//! clamp with `at.max(queue.now().cycles())` before pushing.
//!
//! # Storage: a hierarchical calendar
//!
//! Events are kept in a two-level calendar ([`Calendar`]) instead of one
//! binary heap: a ring of per-cycle FIFO buckets covers the *near future*
//! (`SPAN` cycles past the watermark), and an overflow [`BinaryHeap`]
//! holds everything beyond it. Near-future scheduling — "continue this
//! work now" events pinned at or just past the watermark, which dominate
//! a busy simulation — becomes a bucket append instead of a heap
//! percolation; far-future events (wire and RTT delays, timers) pay
//! exactly the old heap cost.
//!
//! ## Ordering-contract proof sketch
//!
//! The pop order is the total order `(time, seq)`; the calendar preserves
//! it exactly:
//!
//! * **Routing.** A push at `time < watermark + SPAN` goes to bucket
//!   `time % SPAN`; later pushes go to the far heap. Every ring event
//!   therefore satisfies `time < watermark_at_push + SPAN`.
//! * **No bucket collisions.** Every pending ring event also satisfies
//!   `time >= watermark` (an event below the watermark would have been
//!   the global minimum earlier and popped before the watermark advanced
//!   past it, because pops always take the global minimum). Pending ring
//!   times thus live in one window of length `SPAN`, so two events in
//!   the same bucket are at the *same* cycle — a bucket is a
//!   single-cycle FIFO, and appending in push order is exactly seq
//!   order, because seq is monotonic.
//! * **Merge.** [`Calendar::peek`] compares the earliest ring event (the
//!   cached head bucket's front) with the far heap's top by `(time,
//!   seq)`, and [`Calendar::pop`] takes the smaller — so the far heap
//!   never migrates into the ring: a far event simply wins the
//!   comparison once everything earlier has drained. Ties across the two
//!   stores are broken by `seq` like everywhere else, so the merged
//!   sequence is the same total order the old single heap produced.
//!
//! [`ShardedEventQueue`] extends the same argument across per-CPU lanes:
//! the lanes share one sequence counter and one watermark, and every pop
//! takes the `(time, seq)`-minimum across lanes, so *which* lane stores
//! an event is pure storage layout and cannot affect pop order.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::SimTime;

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index; earlier pushes pop first on time ties.
    pub seq: u64,
    /// The caller-defined payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Cycles of near future covered by the calendar ring (one bucket per
/// cycle). Power of two so the bucket index is a mask, sized to cover the
/// dense short-delay band (interrupt latencies, context switches,
/// bottom-half continuations) while long wire/RTT delays overflow to the
/// far heap.
const SPAN: usize = 2048;
/// Bit width of one occupancy word.
const WORD_BITS: usize = 64;

/// Two-level deterministic calendar: near-future per-cycle ring + far
/// overflow heap. Sequence numbers and the causality watermark live in
/// the wrapper types ([`EventQueue`], [`ShardedEventQueue`]) so several
/// calendars can share one sequence space. See the module docs for the
/// ordering proof.
#[derive(Debug, Clone)]
struct Calendar<E> {
    /// `ring[time % SPAN]`: the FIFO of events for one near cycle.
    ring: Vec<VecDeque<(u64, E)>>,
    /// Occupancy bit per bucket, for finding the next head bucket.
    occupied: Vec<u64>,
    /// Cycle of the earliest ring event, cached for O(1) peeks.
    ring_head: Option<u64>,
    /// Pending events in the ring.
    ring_len: usize,
    /// Far future: everything at or past `watermark + SPAN` when pushed.
    far: BinaryHeap<ScheduledEvent<E>>,
}

impl<E> Calendar<E> {
    fn with_capacity(capacity: usize) -> Self {
        Calendar {
            ring: (0..SPAN).map(|_| VecDeque::new()).collect(),
            occupied: vec![0; SPAN / WORD_BITS],
            ring_head: None,
            ring_len: 0,
            far: BinaryHeap::with_capacity(capacity),
        }
    }

    fn len(&self) -> usize {
        self.ring_len + self.far.len()
    }

    /// Stores an event. `watermark` decides near/far routing; the caller
    /// has already enforced `time >= watermark`.
    #[inline]
    fn push(&mut self, watermark: SimTime, time: SimTime, seq: u64, event: E) {
        let t = time.cycles();
        if t - watermark.cycles() < SPAN as u64 {
            let b = t as usize & (SPAN - 1);
            self.ring[b].push_back((seq, event));
            self.occupied[b / WORD_BITS] |= 1 << (b % WORD_BITS);
            self.ring_len += 1;
            if self.ring_head.is_none() || Some(t) < self.ring_head {
                self.ring_head = Some(t);
            }
        } else {
            self.far.push(ScheduledEvent { time, seq, event });
        }
    }

    /// `(time, seq)` of the earliest stored event, if any.
    #[inline]
    fn peek(&self) -> Option<(SimTime, u64)> {
        let ring = self.ring_head.map(|t| {
            let front = self.ring[t as usize & (SPAN - 1)]
                .front()
                .expect("head bucket non-empty");
            (SimTime::from_cycles(t), front.0)
        });
        match (ring, self.far.peek()) {
            (Some(r), Some(f)) => {
                let f = (f.time, f.seq);
                Some(if r <= f { r } else { f })
            }
            (r, f) => r.or_else(|| f.map(|ev| (ev.time, ev.seq))),
        }
    }

    /// Removes and returns the earliest stored event.
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let take_far = match (self.ring_head, self.far.peek()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(t), Some(f)) => {
                let seq = self.ring[t as usize & (SPAN - 1)]
                    .front()
                    .expect("head bucket non-empty")
                    .0;
                (f.time.cycles(), f.seq) < (t, seq)
            }
        };
        if take_far {
            let ev = self.far.pop().expect("checked non-empty");
            return Some((ev.time, ev.seq, ev.event));
        }
        let t = self.ring_head.expect("checked non-empty");
        let bi = t as usize & (SPAN - 1);
        let (seq, event) = self.ring[bi].pop_front().expect("head bucket non-empty");
        self.ring_len -= 1;
        if self.ring[bi].is_empty() {
            self.occupied[bi / WORD_BITS] &= !(1 << (bi % WORD_BITS));
            self.ring_head = if self.ring_len == 0 {
                None
            } else {
                Some(self.next_occupied_cycle(t))
            };
        }
        Some((SimTime::from_cycles(t), seq, event))
    }

    /// Smallest occupied cycle strictly after `from`. Pending ring cycles
    /// all lie in `(from, from + SPAN]` when this is called (the head at
    /// `from` just drained), so the wrapped bitmap distance from `from +
    /// 1` recovers the cycle. Caller guarantees `ring_len > 0`.
    fn next_occupied_cycle(&self, from: u64) -> u64 {
        let words = SPAN / WORD_BITS;
        let start = (from as usize + 1) & (SPAN - 1);
        let mut word = start / WORD_BITS;
        // Mask off bits below `start` in its word.
        let mut bits = self.occupied[word] & (!0u64 << (start % WORD_BITS));
        let mut scanned = 0;
        loop {
            if bits != 0 {
                let b = word * WORD_BITS + bits.trailing_zeros() as usize;
                let dist = (b + SPAN - start) & (SPAN - 1);
                return from + 1 + dist as u64;
            }
            scanned += 1;
            assert!(scanned <= words, "occupancy bitmap empty with ring_len > 0");
            word = (word + 1) % words;
            bits = self.occupied[word];
        }
    }

    /// Drops every stored event.
    fn clear(&mut self) {
        if self.ring_len != 0 {
            for b in &mut self.ring {
                b.clear();
            }
            self.occupied.fill(0);
            self.ring_len = 0;
            self.ring_head = None;
        }
        self.far.clear();
    }
}

/// A deterministic min-queue of timestamped events.
///
/// # Example
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_cycles(5), 'b');
/// q.push(SimTime::from_cycles(5), 'c'); // same cycle: FIFO order
/// q.push(SimTime::from_cycles(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    calendar: Calendar<E>,
    next_seq: u64,
    /// Highest timestamp ever popped; used to reject scheduling in the past.
    watermark: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` far-future events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            calendar: Calendar::with_capacity(capacity),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the timestamp of the most recently
    /// popped event: scheduling into the past would violate causality and
    /// indicates a bug in the caller.
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.watermark,
            "event scheduled at {time} but simulation already advanced to {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.calendar.push(self.watermark, time, seq, event);
    }

    /// Schedules `event` for the current watermark — "as soon as
    /// possible" from the queue's point of view. Unlike [`EventQueue::push`]
    /// with a caller-computed timestamp, this can never panic: the
    /// watermark trivially satisfies the causality contract.
    pub fn schedule_now(&mut self, event: E) {
        let now = self.watermark;
        self.push(now, event);
    }

    /// Removes and returns the earliest event, advancing the causality
    /// watermark to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (time, _seq, event) = self.calendar.pop()?;
        self.watermark = time;
        Some((time, event))
    }

    /// Returns the timestamp of the earliest pending event without
    /// removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.calendar.peek().map(|(t, _)| t)
    }

    /// Returns the number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.calendar.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.calendar.len() == 0
    }

    /// Timestamp of the most recently popped event (the current simulated
    /// "now" from the queue's point of view).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Drops every pending event, keeping the watermark.
    pub fn clear(&mut self) {
        self.calendar.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

/// A deterministic event queue sharded into per-lane calendars.
///
/// Lanes let a caller keep (say) CPU-local events in CPU-local storage:
/// pushes name a lane, and pops take the `(time, seq)`-minimum across all
/// lanes. Because every lane shares one sequence counter and one
/// causality watermark, the merged pop order is *identical* to pushing
/// everything through a single [`EventQueue`] — lane assignment is pure
/// storage layout (see the module docs). The per-lane `(time, seq)` heads
/// are cached, so `peek_time` is O(1) and only a pop pays the O(lanes)
/// argmin rescan.
///
/// # Example
///
/// ```
/// use sim_core::{ShardedEventQueue, SimTime};
///
/// let mut q = ShardedEventQueue::new(2);
/// q.push(0, SimTime::from_cycles(5), 'b');
/// q.push(1, SimTime::from_cycles(5), 'c'); // same cycle, later seq
/// q.push(1, SimTime::from_cycles(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEventQueue<E> {
    lanes: Vec<Calendar<E>>,
    /// `(time, seq, lane)` of the global head, cached across peeks.
    head: Option<(SimTime, u64, usize)>,
    next_seq: u64,
    watermark: SimTime,
}

impl<E> ShardedEventQueue<E> {
    /// Creates a queue with `lanes` empty lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        Self::with_capacity(lanes, 0)
    }

    /// Creates a queue with `lanes` lanes, each with room for `capacity`
    /// far-future events.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn with_capacity(lanes: usize, capacity: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        ShardedEventQueue {
            lanes: (0..lanes)
                .map(|_| Calendar::with_capacity(capacity))
                .collect(),
            head: None,
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Schedules `event` to fire at `time`, stored in `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range, or if `time` is earlier than the
    /// timestamp of the most recently popped event (causality, as for
    /// [`EventQueue::push`]).
    pub fn push(&mut self, lane: usize, time: SimTime, event: E) {
        assert!(
            time >= self.watermark,
            "event scheduled at {time} but simulation already advanced to {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes[lane].push(self.watermark, time, seq, event);
        if self.head.is_none() || (time, seq) < (self.head.unwrap().0, self.head.unwrap().1) {
            self.head = Some((time, seq, lane));
        }
    }

    /// Schedules `event` on `lane` at the current watermark (cannot
    /// violate causality).
    pub fn schedule_now(&mut self, lane: usize, event: E) {
        let now = self.watermark;
        self.push(lane, now, event);
    }

    /// Removes and returns the globally earliest event, advancing the
    /// causality watermark to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (time, _, lane) = self.head?;
        let (t, _seq, event) = self.lanes[lane].pop().expect("cached head exists");
        debug_assert_eq!(t, time);
        self.watermark = t;
        self.head = self.rescan_head();
        Some((t, event))
    }

    /// `(time, seq, lane)` minimum across lane heads.
    fn rescan_head(&self) -> Option<(SimTime, u64, usize)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some((t, s)) = lane.peek() {
                if best.is_none() || (t, s) < (best.unwrap().0, best.unwrap().1) {
                    best = Some((t, s, i));
                }
            }
        }
        best
    }

    /// Timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.head.map(|(t, _, _)| t)
    }

    /// Total pending events across lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Calendar::len).sum()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head.is_none()
    }

    /// Timestamp of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Drops every pending event, keeping the watermark.
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.head = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(30), 3);
        q.push(SimTime::from_cycles(10), 1);
        q.push(SimTime::from_cycles(20), 2);
        let seq: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(seq, [1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_cycles(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let seq: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(seq, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn watermark_tracks_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_cycles(5));
    }

    #[test]
    #[should_panic(expected = "already advanced")]
    fn rejects_scheduling_in_the_past() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), ());
        q.pop();
        q.push(SimTime::from_cycles(9), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), 1);
        q.pop();
        q.push(SimTime::from_cycles(10), 2); // same cycle as "now": fine
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn schedule_now_lands_on_the_watermark() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), 1);
        q.pop();
        q.schedule_now(2); // at the watermark: legal, pops next
        assert_eq!(q.pop(), Some((SimTime::from_cycles(10), 2)));
        // On a fresh queue the watermark is time zero.
        let mut fresh = EventQueue::new();
        fresh.schedule_now('a');
        assert_eq!(fresh.pop(), Some((SimTime::ZERO, 'a')));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(3), 'x');
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn extend_pushes_all() {
        let mut q = EventQueue::new();
        q.extend((0..5).map(|i| (SimTime::from_cycles(i), i)));
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn clear_keeps_watermark() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), ());
        q.pop();
        q.push(SimTime::from_cycles(20), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_cycles(10));
    }

    #[test]
    fn far_future_events_cross_the_ring_boundary() {
        let mut q = EventQueue::new();
        // One event far beyond the ring span, one inside it.
        q.push(SimTime::from_cycles(1_000_000), 'f');
        q.push(SimTime::from_cycles(3), 'n');
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(3)));
        assert_eq!(q.pop(), Some((SimTime::from_cycles(3), 'n')));
        // After the near event drains, the far event surfaces.
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(1_000_000)));
        // An event that is near *relative to the new watermark* but maps
        // to the same bucket as an old cycle must still order correctly.
        q.push(SimTime::from_cycles(3 + SPAN as u64), 'w');
        assert_eq!(q.pop(), Some((SimTime::from_cycles(3 + SPAN as u64), 'w')));
        assert_eq!(q.pop(), Some((SimTime::from_cycles(1_000_000), 'f')));
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_ties_across_ring_and_far_break_by_seq() {
        let mut q = EventQueue::new();
        let t = SimTime::from_cycles(SPAN as u64 + 100);
        // First push: beyond watermark + SPAN, lands in the far heap.
        q.push(t, 'f');
        // Advance the watermark into range so the same cycle now maps to
        // the ring.
        q.push(SimTime::from_cycles(200), 'x');
        q.pop();
        q.push(t, 'r'); // near now: same cycle in the ring, later seq
        assert_eq!(q.pop(), Some((t, 'f')));
        assert_eq!(q.pop(), Some((t, 'r')));
    }

    #[test]
    fn sharded_merge_matches_single_queue() {
        // Same pushes, lane-striped vs single queue: identical pop order.
        let mut sharded = ShardedEventQueue::new(3);
        let mut single = EventQueue::new();
        let times = [5u64, 5, 1, 9000, 7, 5, 12000, 2, 2, 9000];
        for (i, &t) in times.iter().enumerate() {
            sharded.push(i % 3, SimTime::from_cycles(t), i);
            single.push(SimTime::from_cycles(t), i);
        }
        assert_eq!(sharded.len(), single.len());
        loop {
            let a = sharded.pop();
            let b = single.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            assert_eq!(sharded.now(), single.now());
            assert_eq!(sharded.peek_time(), single.peek_time());
        }
    }

    #[test]
    #[should_panic(expected = "already advanced")]
    fn sharded_rejects_scheduling_in_the_past() {
        let mut q = ShardedEventQueue::new(2);
        q.push(1, SimTime::from_cycles(10), ());
        q.pop();
        q.push(0, SimTime::from_cycles(9), ());
    }

    #[test]
    fn sharded_schedule_now_and_clear() {
        let mut q = ShardedEventQueue::new(2);
        q.push(0, SimTime::from_cycles(10), 1);
        q.pop();
        q.schedule_now(1, 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(10)));
        assert_eq!(q.pop(), Some((SimTime::from_cycles(10), 2)));
        q.push(0, SimTime::from_cycles(20), 3);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), SimTime::from_cycles(10));
    }
}
