//! A stable, deterministic event queue.
//!
//! Discrete-event simulators live or die by the determinism of their event
//! ordering. [`EventQueue`] orders events first by timestamp and breaks
//! ties by insertion sequence number, so two events scheduled for the same
//! cycle always pop in the order they were pushed, regardless of heap
//! internals.
//!
//! # Causality contract
//!
//! The queue tracks a *watermark*: the timestamp of the most recently
//! popped event, i.e. how far simulated time has provably advanced. Every
//! [`EventQueue::push`] must satisfy `time >= watermark` — scheduling
//! behind the watermark would mean an event fires in the caller's past,
//! and the queue panics rather than silently reordering history.
//! Scheduling *at* the watermark is always legal (the new event pops
//! after anything already pending at that cycle, FIFO). Callers reacting
//! to the event being processed right now should use
//! [`EventQueue::schedule_now`], which pins the timestamp to the
//! watermark and therefore can never violate the contract; callers
//! computing a future timestamp from per-CPU clocks that may trail the
//! queue (the machine's CPUs run ahead of and behind device time) must
//! clamp with `at.max(queue.now().cycles())` before pushing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index; earlier pushes pop first on time ties.
    pub seq: u64,
    /// The caller-defined payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of timestamped events.
///
/// # Example
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_cycles(5), 'b');
/// q.push(SimTime::from_cycles(5), 'c'); // same cycle: FIFO order
/// q.push(SimTime::from_cycles(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    /// Highest timestamp ever popped; used to reject scheduling in the past.
    watermark: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the timestamp of the most recently
    /// popped event: scheduling into the past would violate causality and
    /// indicates a bug in the caller.
    pub fn push(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.watermark,
            "event scheduled at {time} but simulation already advanced to {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Schedules `event` for the current watermark — "as soon as
    /// possible" from the queue's point of view. Unlike [`EventQueue::push`]
    /// with a caller-computed timestamp, this can never panic: the
    /// watermark trivially satisfies the causality contract.
    pub fn schedule_now(&mut self, event: E) {
        let now = self.watermark;
        self.push(now, event);
    }

    /// Removes and returns the earliest event, advancing the causality
    /// watermark to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        self.watermark = ev.time;
        Some((ev.time, ev.event))
    }

    /// Returns the timestamp of the earliest pending event without
    /// removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.time)
    }

    /// Returns the number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the most recently popped event (the current simulated
    /// "now" from the queue's point of view).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Drops every pending event, keeping the watermark.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.push(t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(30), 3);
        q.push(SimTime::from_cycles(10), 1);
        q.push(SimTime::from_cycles(20), 2);
        let seq: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(seq, [1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_cycles(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let seq: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(seq, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn watermark_tracks_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_cycles(5));
    }

    #[test]
    #[should_panic(expected = "already advanced")]
    fn rejects_scheduling_in_the_past() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), ());
        q.pop();
        q.push(SimTime::from_cycles(9), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), 1);
        q.pop();
        q.push(SimTime::from_cycles(10), 2); // same cycle as "now": fine
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn schedule_now_lands_on_the_watermark() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), 1);
        q.pop();
        q.schedule_now(2); // at the watermark: legal, pops next
        assert_eq!(q.pop(), Some((SimTime::from_cycles(10), 2)));
        // On a fresh queue the watermark is time zero.
        let mut fresh = EventQueue::new();
        fresh.schedule_now('a');
        assert_eq!(fresh.pop(), Some((SimTime::ZERO, 'a')));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(3), 'x');
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn extend_pushes_all() {
        let mut q = EventQueue::new();
        q.extend((0..5).map(|i| (SimTime::from_cycles(i), i)));
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn clear_keeps_watermark() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), ());
        q.pop();
        q.push(SimTime::from_cycles(20), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_cycles(10));
    }
}
