//! Bounded execution tracing.
//!
//! A [`TraceRing`] keeps the last *N* timestamped entries of a
//! simulation run — enough to reconstruct "what just happened" when a
//! run wedges or produces a surprising number, without unbounded memory
//! growth over multi-million-event runs.

use std::collections::VecDeque;
use std::fmt;

use crate::SimTime;

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry<E> {
    /// When the event was recorded.
    pub time: SimTime,
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

/// A fixed-capacity ring of timestamped trace entries.
///
/// # Example
///
/// ```
/// use sim_core::{SimTime, TraceRing};
///
/// let mut trace = TraceRing::new(2);
/// trace.record(SimTime::from_cycles(1), "a");
/// trace.record(SimTime::from_cycles(2), "b");
/// trace.record(SimTime::from_cycles(3), "c"); // evicts "a"
/// let events: Vec<&str> = trace.iter().map(|e| e.event).collect();
/// assert_eq!(events, ["b", "c"]);
/// assert_eq!(trace.recorded(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRing<E> {
    entries: VecDeque<TraceEntry<E>>,
    capacity: usize,
    next_seq: u64,
    enabled: bool,
}

impl<E> TraceRing<E> {
    /// Creates a ring holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceRing {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            enabled: true,
        }
    }

    /// Records an entry (dropped silently when disabled).
    pub fn record(&mut self, time: SimTime, event: E) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Turns recording on or off (off = `record` is a cheap no-op).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Entries currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry<E>> {
        self.entries.iter()
    }

    /// Number of entries currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries ever recorded (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Drops all retained entries (keeps the sequence counter).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The most recent entry, if any.
    #[must_use]
    pub fn last(&self) -> Option<&TraceEntry<E>> {
        self.entries.back()
    }
}

impl<E: fmt::Display> TraceRing<E> {
    /// Renders the retained entries one per line — the "tail" a panic
    /// handler or debugger wants.
    #[must_use]
    pub fn render_tail(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "[{:>12}] #{:<8} {}", e.time, e.seq, e.event);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_tail() {
        let mut t = TraceRing::new(3);
        for i in 0..10u32 {
            t.record(SimTime::from_cycles(u64::from(i)), i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 10);
        let seqs: Vec<u64> = t.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [7, 8, 9]);
        assert_eq!(t.last().unwrap().event, 9);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceRing::new(4);
        t.record(SimTime::ZERO, 'a');
        t.set_enabled(false);
        assert!(!t.is_enabled());
        t.record(SimTime::ZERO, 'b');
        assert_eq!(t.len(), 1);
        assert_eq!(t.recorded(), 1);
        t.set_enabled(true);
        t.record(SimTime::ZERO, 'c');
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clear_keeps_counter() {
        let mut t = TraceRing::new(2);
        t.record(SimTime::ZERO, 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 1);
        t.record(SimTime::ZERO, 2);
        assert_eq!(t.iter().next().unwrap().seq, 1);
    }

    #[test]
    fn render_tail_lines() {
        let mut t = TraceRing::new(2);
        t.record(SimTime::from_cycles(5), "wake ttcp0");
        t.record(SimTime::from_cycles(9), "irq 0x19");
        let s = t.render_tail();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("wake ttcp0"));
        assert!(s.contains("9cy"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: TraceRing<()> = TraceRing::new(0);
    }
}
