//! Simulated time.
//!
//! All simulation crates measure time in *cycles* of a single global clock.
//! The system under test in the paper runs every processor at the same
//! 2 GHz clock, so a cycle count plus a [`Frequency`] is sufficient to
//! recover wall-clock durations and throughput figures.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in clock cycles since simulation
/// start.
///
/// `SimTime` is an absolute timestamp; durations are plain `u64` cycle
/// counts. Arithmetic saturates on overflow rather than wrapping, so a
/// runaway simulation fails loudly (times stop advancing past `u64::MAX`)
/// instead of silently reordering events.
///
/// # Example
///
/// ```
/// use sim_core::SimTime;
///
/// let t = SimTime::ZERO + 250;
/// assert_eq!(t.cycles(), 250);
/// assert_eq!(t - SimTime::from_cycles(50), 200);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time, used as an "infinitely far away"
    /// sentinel for deadlines that are not currently armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp at `cycles` cycles after simulation start.
    #[must_use]
    pub const fn from_cycles(cycles: u64) -> Self {
        SimTime(cycles)
    }

    /// Returns the number of cycles since simulation start.
    #[must_use]
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Returns the duration in cycles from `earlier` to `self`, or zero if
    /// `earlier` is actually later (clamped, never negative).
    #[must_use]
    pub const fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Converts this timestamp to seconds under the given clock frequency.
    #[must_use]
    pub fn as_seconds(self, freq: Frequency) -> f64 {
        self.0 as f64 / freq.hertz() as f64
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, cycles: u64) -> SimTime {
        SimTime(self.0.saturating_add(cycles))
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, cycles: u64) {
        self.0 = self.0.saturating_add(cycles);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;

    /// Duration in cycles between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is not guaranteed.
    fn sub(self, rhs: SimTime) -> u64 {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A clock frequency, used to convert cycle counts to wall-clock time and
/// throughput.
///
/// # Example
///
/// ```
/// use sim_core::{Frequency, SimTime};
///
/// let f = Frequency::from_ghz(2.0);
/// assert_eq!(f.hertz(), 2_000_000_000);
/// let t = SimTime::from_cycles(1_000_000_000);
/// assert!((t.as_seconds(f) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from a hertz count.
    ///
    /// # Panics
    ///
    /// Panics if `hertz` is zero; a zero-frequency clock never advances
    /// and would make every time conversion divide by zero.
    #[must_use]
    pub fn from_hertz(hertz: u64) -> Self {
        assert!(hertz > 0, "frequency must be positive");
        Frequency(hertz)
    }

    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    #[must_use]
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Frequency((ghz * 1e9) as u64)
    }

    /// Returns the frequency in hertz.
    #[must_use]
    pub const fn hertz(self) -> u64 {
        self.0
    }

    /// Returns the frequency in gigahertz.
    #[must_use]
    pub fn ghz(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Number of cycles elapsed in `seconds` at this frequency.
    #[must_use]
    pub fn cycles_in(self, seconds: f64) -> u64 {
        (seconds * self.0 as f64) as u64
    }
}

impl Default for Frequency {
    /// The paper's system under test: 2 GHz Pentium 4 Xeon.
    fn default() -> Self {
        Frequency::from_ghz(2.0)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}GHz", self.ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_ordering_and_arithmetic() {
        let a = SimTime::from_cycles(100);
        let b = a + 50;
        assert!(b > a);
        assert_eq!(b - a, 50);
        assert_eq!(b.cycles(), 150);
    }

    #[test]
    fn simtime_add_assign() {
        let mut t = SimTime::ZERO;
        t += 10;
        t += 5;
        assert_eq!(t.cycles(), 15);
    }

    #[test]
    fn simtime_saturates_at_max() {
        let t = SimTime::MAX + 1;
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_cycles(10);
        let late = SimTime::from_cycles(30);
        assert_eq!(late.saturating_since(early), 20);
        assert_eq!(early.saturating_since(late), 0);
    }

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_ghz(2.0);
        assert_eq!(f.cycles_in(1.0), 2_000_000_000);
        assert!((f.ghz() - 2.0).abs() < 1e-12);
        let t = SimTime::from_cycles(2_000_000_000);
        assert!((t.as_seconds(f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_frequency_matches_paper_sut() {
        assert_eq!(Frequency::default().hertz(), 2_000_000_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_hertz(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime::from_cycles(42).to_string(), "42cy");
        assert_eq!(Frequency::from_ghz(2.0).to_string(), "2.000GHz");
    }
}
