//! Identifier newtypes shared across the simulation crates.
//!
//! Every entity in the machine model is addressed by a small integer; the
//! newtypes below keep those integers from being mixed up (a `TaskId` can
//! never be passed where a `CpuId` is expected — exactly the kind of bug an
//! affinity simulator must not have).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// Returns the raw index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as `u32`.
            #[must_use]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                $name(index)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A logical processor in the simulated SMP system.
    ///
    /// The paper's system under test has two (`cpu0`, `cpu1`); the 4P
    /// extension experiment uses four.
    CpuId,
    "cpu"
);

id_newtype!(
    /// A schedulable task (a `ttcp` process in the paper's workload).
    TaskId,
    "task"
);

id_newtype!(
    /// An interrupt vector as routed by the simulated IO-APIC.
    ///
    /// The paper's SUT exposes its 8 NICs as `IRQ0x19`–`IRQ0x27`; we keep
    /// the same numbering so Table 4 renders with recognizable names.
    IrqVector,
    "irq0x"
);

id_newtype!(
    /// A device on the simulated I/O bus (one per NIC port).
    DeviceId,
    "dev"
);

id_newtype!(
    /// A TCP connection (one per NIC/ttcp instance in the paper's setup).
    ConnectionId,
    "conn"
);

impl IrqVector {
    /// Formats the vector the way the paper's Table 4 names interrupt
    /// handlers, e.g. `IRQ0x19_interrupt`.
    #[must_use]
    pub fn handler_name(self) -> String {
        format!("IRQ0x{:x}_interrupt", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        let c = CpuId::new(1);
        assert_eq!(c.index(), 1);
        assert_eq!(c.raw(), 1);
        assert_eq!(CpuId::from(1u32), c);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TaskId::new(3));
        assert!(set.contains(&TaskId::new(3)));
        assert!(TaskId::new(2) < TaskId::new(10));
    }

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(CpuId::new(0).to_string(), "cpu0");
        assert_eq!(TaskId::new(7).to_string(), "task7");
        assert_eq!(DeviceId::new(2).to_string(), "dev2");
        assert_eq!(ConnectionId::new(5).to_string(), "conn5");
    }

    #[test]
    fn irq_handler_names_match_paper() {
        assert_eq!(IrqVector::new(0x19).handler_name(), "IRQ0x19_interrupt");
        assert_eq!(IrqVector::new(0x27).handler_name(), "IRQ0x27_interrupt");
    }
}
