//! Micro-benches for the memory-system hot paths the sweep runner leans
//! on: the slot-cached residency fast path, the coherence ping-pong slow
//! path, and the flat directory walk. These isolate `sim-mem` so a
//! regression in `cargo bench hotpath` points at the substrate rather
//! than the workload model.

use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::CpuId;
use sim_mem::{MemoryConfig, MemorySystem};
use std::hint::black_box;

const CPU0: CpuId = CpuId::new(0);
const CPU1: CpuId = CpuId::new(1);

/// Repeated reads of an L1-resident connection context: after the first
/// two touches the residency summary engages and every iteration should
/// replay by slot (no directory traffic, no set scans).
fn bench_touch_hot_region(c: &mut Criterion) {
    c.bench_function("touch_hot_region", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let ctx = mem.add_region("conn.tcp_ctx", 1536);
        mem.data_touch(CPU0, ctx, 0, 1536, false);
        mem.data_touch(CPU0, ctx, 0, 1536, false);
        b.iter(|| black_box(mem.data_touch(CPU0, ctx, 0, 1536, false)));
    });
}

/// Two CPUs alternately writing the same context: every touch invalidates
/// the other hierarchy, so each iteration takes the full coherence walk —
/// the no-affinity ping-pong the paper measures, and the simulator's
/// worst case.
fn bench_touch_pingpong(c: &mut Criterion) {
    c.bench_function("touch_pingpong", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let ctx = mem.add_region("conn.tcp_ctx", 1536);
        b.iter(|| {
            black_box(mem.data_touch(CPU0, ctx, 0, 1536, true));
            black_box(mem.data_touch(CPU1, ctx, 0, 1536, true));
        });
    });
}

/// Streaming reads over a payload-sized region that dwarfs the L1: every
/// line misses inward, exercising the dense directory array and the
/// L2/LLC levels rather than the summary fast paths.
fn bench_directory_lookup(c: &mut Criterion) {
    c.bench_function("directory_lookup", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let buf = mem.add_region("payload", 64 * 1024);
        let mut offset = 0u64;
        b.iter(|| {
            // March through the buffer so the L1 keeps turning over.
            black_box(mem.data_touch(CPU0, buf, offset, 4096, false));
            offset = (offset + 4096) % (64 * 1024);
        });
    });
}

/// A single-line read of a hot per-flow counter: the smallest possible
/// touch, so fixed per-call overhead (address resolution, TLB probe,
/// summary check) dominates. The floor every other path builds on.
fn bench_touch_single_line_hit(c: &mut Criterion) {
    c.bench_function("touch_single_line_hit", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let ctx = mem.add_region("conn.tcb_word", 64);
        mem.data_touch(CPU0, ctx, 0, 64, false);
        mem.data_touch(CPU0, ctx, 0, 64, false);
        b.iter(|| black_box(mem.data_touch(CPU0, ctx, 0, 64, false)));
    });
}

/// An exact-repeat 2 KB line run on a region too big for the whole-region
/// summary (16 KB > L1): the span-claim fast path must engage and replay
/// the 32-line run by pre-resolved slot — the line-run batch the TX
/// payload path lives on.
fn bench_span_line_run_replay(c: &mut Criterion) {
    c.bench_function("span_line_run_replay", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let buf = mem.add_region("tx.payload", 16 * 1024);
        mem.data_touch(CPU0, buf, 4096, 2048, false);
        mem.data_touch(CPU0, buf, 4096, 2048, false);
        b.iter(|| black_box(mem.data_touch(CPU0, buf, 4096, 2048, false)));
    });
}

/// Repeated whole-region writes from one CPU: after the first pass the
/// region's live exclusivity count equals its line count, so every
/// iteration takes the O(1) exclusivity check and the directory-free
/// write walk (no sharer narrows, no generation bumps).
fn bench_write_exclusive_region(c: &mut Criterion) {
    c.bench_function("write_exclusive_region", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let ctx = mem.add_region("conn.tcp_ctx", 1536);
        mem.data_touch(CPU0, ctx, 0, 1536, true);
        mem.data_touch(CPU0, ctx, 0, 1536, true);
        b.iter(|| black_box(mem.data_touch(CPU0, ctx, 0, 1536, true)));
    });
}

/// One receive descriptor's worth of directory delta: a DMA write
/// resets 4 KB of sharer state (incremental `excl` deltas + batched
/// generation bumps), then the consuming CPU's read refills it with
/// scan-free fills and per-line residency records. The Rx payload
/// churn that dominates the figure matrix.
fn bench_dma_directory_delta(c: &mut Criterion) {
    c.bench_function("dma_directory_delta", |b| {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let buf = mem.add_region("rx.ring_buf", 4096);
        b.iter(|| {
            mem.dma_write(buf, 0, 4096);
            black_box(mem.data_touch(CPU0, buf, 0, 4096, false));
        });
    });
}

criterion_group!(
    hotpath,
    bench_touch_hot_region,
    bench_touch_pingpong,
    bench_directory_lookup,
    bench_touch_single_line_hit,
    bench_span_line_run_replay,
    bench_write_exclusive_region,
    bench_dma_directory_delta
);
criterion_main!(hotpath);
