//! Ablation benches for the design choices DESIGN.md calls out: each
//! sweeps one mechanism and reports the resulting throughput through
//! criterion (the throughput value is printed so sweeps can be compared).

use affinity_sim::{run_experiment, AffinityMode, Direction, ExperimentConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn base(mode: AffinityMode) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_sut(Direction::Tx, 16384, mode);
    c.workload.warmup_messages = 4;
    c.workload.measure_messages = 10;
    c
}

/// Machine-clear penalty sweep: how sensitive is the affinity gap to the
/// flush cost (the paper calls its 500-cycle figure a rough average)?
fn ablate_clear_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_clear_cost");
    group.sample_size(10);
    for penalty in [100u64, 500, 1500] {
        group.bench_function(format!("clear_{penalty}"), |b| {
            b.iter(|| {
                let mut config = base(AffinityMode::None);
                config.cpu.costs.machine_clear = penalty;
                let r = run_experiment(&config).unwrap();
                black_box(r.metrics.throughput_mbps());
            });
        });
    }
    group.finish();
}

/// Cache-size sweep: the affinity benefit shrinks when the LLC dwarfs
/// the working set.
fn ablate_cache_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_cache");
    group.sample_size(10);
    for mb in [1u32, 2, 8] {
        group.bench_function(format!("llc_{mb}mb"), |b| {
            b.iter(|| {
                let mut config = base(AffinityMode::Full);
                config.mem.llc_size = mb * 1024 * 1024;
                let r = run_experiment(&config).unwrap();
                black_box(r.metrics.throughput_mbps());
            });
        });
    }
    group.finish();
}

/// Interrupt-coalescing sweep: fewer interrupts per packet means fewer
/// machine clears but longer latency to the bottom half.
fn ablate_coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_coalescing");
    group.sample_size(10);
    for events in [1u32, 4, 16] {
        group.bench_function(format!("coalesce_{events}"), |b| {
            b.iter(|| {
                let mut config = base(AffinityMode::None);
                config.nic.coalesce = affinity_sim::CoalesceConfig::FixedCount { events };
                let r = run_experiment(&config).unwrap();
                black_box(r.metrics.throughput_mbps());
            });
        });
    }
    group.finish();
}

/// Load-balance cadence vs pinning.
fn ablate_loadbalance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_loadbalance");
    group.sample_size(10);
    for interval in [500_000u64, 2_000_000, 20_000_000] {
        group.bench_function(format!("balance_{interval}"), |b| {
            b.iter(|| {
                let mut config = base(AffinityMode::None);
                config.tunables.balance_interval_cycles = interval;
                let r = run_experiment(&config).unwrap();
                black_box(r.metrics.throughput_mbps());
            });
        });
    }
    group.finish();
}

/// Line-size sensitivity of the coherence model.
fn ablate_line_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_line_size");
    group.sample_size(10);
    for line in [32u32, 64, 128] {
        group.bench_function(format!("line_{line}"), |b| {
            b.iter(|| {
                let mut config = base(AffinityMode::None);
                config.mem.line_size = line;
                let r = run_experiment(&config).unwrap();
                black_box(r.metrics.throughput_mbps());
            });
        });
    }
    group.finish();
}

/// Interrupt-steering policy sweep: static CPU0 vs 2.6 rotation vs
/// RSS-style dynamic steering (the conclusion's future hardware).
fn ablate_steering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_steering");
    group.sample_size(10);
    let policies: [(&str, fn(&mut ExperimentConfig)); 3] = [
        ("static_cpu0", |_| {}),
        ("rotation", |c| c.tunables.irq_rotation_cycles = 3_000_000),
        ("rss_dynamic", |c| {
            c.steer = Some(affinity_sim::SteerSpec::flow_director_unconfigured());
        }),
    ];
    for (name, configure) in policies {
        group.bench_function(name, move |b| {
            b.iter(|| {
                let mut config = base(AffinityMode::None);
                configure(&mut config);
                let r = run_experiment(&config).unwrap();
                black_box(r.metrics.throughput_mbps());
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_steering,
    ablate_clear_cost,
    ablate_cache_size,
    ablate_coalescing,
    ablate_loadbalance,
    ablate_line_size
);
criterion_main!(benches);
