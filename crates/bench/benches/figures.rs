//! Criterion benches: one per paper artifact family.
//!
//! Each bench runs a *quick* version of the simulation that feeds the
//! corresponding table/figure, so `cargo bench` both regression-tests the
//! simulator's wall-clock performance and re-exercises every artifact's
//! code path. The full-scale regeneration lives in the `repro` binary.

use affinity_sim::{analysis, report, run_experiment, AffinityMode, Direction, ExperimentConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_cpu::EventCosts;
use std::hint::black_box;

fn quick(direction: Direction, size: u64, mode: AffinityMode) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_sut(direction, size, mode);
    c.workload.warmup_messages = 4;
    c.workload.measure_messages = 8;
    c
}

/// Figure 3/4: the throughput/cost sweep cell.
fn bench_fig3_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig4");
    group.sample_size(10);
    for mode in AffinityMode::ALL {
        group.bench_function(format!("tx_4096_{}", mode.label().replace(' ', "_")), |b| {
            b.iter(|| {
                let r = run_experiment(&quick(Direction::Tx, 4096, mode)).unwrap();
                black_box(r.metrics.throughput_mbps());
                black_box(r.metrics.cost_ghz_per_gbps());
            });
        });
    }
    group.finish();
}

/// Table 1: baseline characterization panel (no vs full).
fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("tx_64k_panel", |b| {
        b.iter(|| {
            let no = run_experiment(&quick(Direction::Tx, 65536, AffinityMode::None)).unwrap();
            let full = run_experiment(&quick(Direction::Tx, 65536, AffinityMode::Full)).unwrap();
            black_box(report::render_table1_panel(
                "TX 64KB",
                &no.metrics,
                &full.metrics,
            ));
        });
    });
    group.finish();
}

/// Table 2: spinlock behaviour.
fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("locks_panel", |b| {
        b.iter(|| {
            let no = run_experiment(&quick(Direction::Rx, 65536, AffinityMode::None)).unwrap();
            let full = run_experiment(&quick(Direction::Rx, 65536, AffinityMode::Full)).unwrap();
            black_box(report::render_table2(&no.metrics, &full.metrics));
        });
    });
    group.finish();
}

/// Figure 5: impact indicators.
fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("indicators_rx_128", |b| {
        let run = run_experiment(&quick(Direction::Rx, 128, AffinityMode::None)).unwrap();
        b.iter(|| {
            black_box(analysis::impact_indicators(
                &run.metrics.total,
                &EventCosts::paper(),
            ));
        });
    });
    group.finish();
}

/// Table 3: Amdahl decomposition.
fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("amdahl_tx_64k", |b| {
        let no = run_experiment(&quick(Direction::Tx, 65536, AffinityMode::None)).unwrap();
        let full = run_experiment(&quick(Direction::Tx, 65536, AffinityMode::Full)).unwrap();
        b.iter(|| black_box(analysis::bin_improvements(&no.metrics, &full.metrics)));
    });
    group.finish();
}

/// Table 4: per-CPU machine-clear symbol report.
fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("clear_symbols_tx_128", |b| {
        let run = run_experiment(&quick(Direction::Tx, 128, AffinityMode::None)).unwrap();
        b.iter(|| black_box(report::render_table4("TX 128B", &run, 10)));
    });
    group.finish();
}

/// Table 5: Spearman rank correlation.
fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("spearman", |b| {
        let xs: Vec<f64> = (0..7).map(|i| (i as f64 * 1.7).sin()).collect();
        let ys: Vec<f64> = (0..7).map(|i| (i as f64 * 0.9).cos()).collect();
        b.iter(|| black_box(analysis::spearman(&xs, &ys)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig3_fig4,
    bench_table1,
    bench_table2,
    bench_fig5,
    bench_table3,
    bench_table4,
    bench_table5
);
criterion_main!(benches);
