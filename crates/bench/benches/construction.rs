//! Machine-construction cost pin: builds the churn sweep's standalone
//! large cell (16 CPUs x 100k flow slots) and reports the build wall
//! time, which criterion divides down to a per-iteration figure — divide
//! by the flow count for ns/flow. The slab-provisioned bulk path should
//! hold this in the tens of ns/flow; a silent fall-back to incremental
//! `add_region` calls shows up here as a 10x+ regression, the same way
//! the sim-mem hot-path pins catch per-touch rot.

use affinity_sim::{DataplaneMode, ExperimentConfig, Machine, ServerWorkload, SteerSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Flow-slot count of the pinned cell. 100k matches the churn sweep's
/// standalone large cell, the construction workload the bulk path was
/// built for.
const FLOWS: usize = 100_000;

fn churn_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::churn(
        16,
        FLOWS,
        SteerSpec {
            pin_processes: true,
            ..SteerSpec::flow_director()
        },
        DataplaneMode::Interrupt,
    );
    config.server = config.server.map(ServerWorkload::mice_only);
    config
}

/// One full `Machine::new` per iteration: region provisioning (6 regions
/// per flow), directory/page/summary sizing, arena + task + peer setup.
fn bench_build_churn_machine(c: &mut Criterion) {
    let config = churn_config();
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    group.bench_function("build_16cpu_100k_flow_churn_machine", |b| {
        b.iter(|| black_box(Machine::new(&config).expect("valid churn config")));
    });
    group.finish();
}

criterion_group!(benches, bench_build_churn_machine);
criterion_main!(benches);
