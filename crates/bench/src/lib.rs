//! Shared harness code for the `repro` binary and the criterion benches.
//!
//! The heavy lifting lives in [`affinity_sim`]; this crate adds the
//! experiment *matrices* the paper's evaluation section defines (which
//! sizes, which modes, which extreme points) and seed-averaged sweeps.

use affinity_sim::{
    run_experiment, AffinityMode, Direction, ExperimentConfig, RunMetrics, RunResult,
};
use crossbeam::thread;
use parking_lot::Mutex;

/// Seeds averaged for figure-level numbers (placement dynamics in the
/// unpinned modes are seed-sensitive, like real scheduler runs).
pub const FIGURE_SEEDS: [u64; 2] = [0x5EED, 42];

/// The four "extreme data points" §6 analyses in depth.
pub const EXTREME_POINTS: [(Direction, u64); 4] = [
    (Direction::Tx, 65536),
    (Direction::Tx, 128),
    (Direction::Rx, 65536),
    (Direction::Rx, 128),
];

/// Builds the paper-scale experiment for one cell of the evaluation
/// matrix, with measurement counts trimmed to keep the full regeneration
/// run tractable.
#[must_use]
pub fn cell(direction: Direction, size: u64, mode: AffinityMode, seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_sut(direction, size, mode).with_seed(seed);
    // ~1 MB measured per connection, bounded for wall-clock sanity.
    config.workload.measure_messages = (1024 * 1024 / size).clamp(16, 800) as u32;
    config.workload.warmup_messages = (config.workload.measure_messages / 3).max(6);
    config
}

/// Runs one cell and returns its metrics.
///
/// # Panics
///
/// Panics if the experiment configuration is invalid (a bug in the
/// harness, not an I/O condition).
#[must_use]
pub fn run_cell(direction: Direction, size: u64, mode: AffinityMode, seed: u64) -> RunResult {
    run_experiment(&cell(direction, size, mode, seed)).expect("valid experiment config")
}

/// Averages the scalar metrics of several runs (throughput/cost fields);
/// event counters are taken from the first run, scaled to the mean
/// throughput — adequate for figure rendering.
#[must_use]
pub fn seed_averaged(direction: Direction, size: u64, mode: AffinityMode) -> RunMetrics {
    let runs: Vec<RunMetrics> = FIGURE_SEEDS
        .iter()
        .map(|&s| run_cell(direction, size, mode, s).metrics)
        .collect();
    average_metrics(&runs)
}

/// Averages a set of run metrics: wall/busy cycles and bytes are averaged
/// so derived rates (throughput, utilization, cost) equal the mean of the
/// individual runs' inputs.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn average_metrics(runs: &[RunMetrics]) -> RunMetrics {
    assert!(!runs.is_empty(), "need at least one run");
    let n = runs.len() as u64;
    let mut avg = runs[0].clone();
    avg.wall_cycles = runs.iter().map(|r| r.wall_cycles).sum::<u64>() / n;
    avg.bytes_moved = runs.iter().map(|r| r.bytes_moved).sum::<u64>() / n;
    avg.messages = runs.iter().map(|r| r.messages).sum::<u64>() / n;
    for c in 0..avg.busy_cycles.len() {
        avg.busy_cycles[c] = runs.iter().map(|r| r.busy_cycles[c]).sum::<u64>() / n;
    }
    avg
}

/// Runs a whole figure row (all four modes for one size/direction) in
/// parallel worker threads, seed-averaged.
#[must_use]
pub fn figure_row(direction: Direction, size: u64) -> Vec<(AffinityMode, RunMetrics)> {
    let results = Mutex::new(Vec::new());
    thread::scope(|s| {
        for mode in AffinityMode::ALL {
            let results = &results;
            s.spawn(move |_| {
                let metrics = seed_averaged(direction, size, mode);
                results.lock().push((mode, metrics));
            });
        }
    })
    .expect("worker threads must not panic");
    let mut rows = results.into_inner();
    rows.sort_by_key(|(mode, _)| AffinityMode::ALL.iter().position(|m| m == mode));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_scales_counts_with_size() {
        let small = cell(Direction::Tx, 128, AffinityMode::None, 1);
        let large = cell(Direction::Tx, 65536, AffinityMode::None, 1);
        assert!(small.workload.measure_messages > large.workload.measure_messages);
        assert_eq!(large.workload.measure_messages, 16);
    }

    #[test]
    fn average_metrics_means_rates() {
        let mut a = run_cell(Direction::Tx, 1024, AffinityMode::Full, 1).metrics;
        let mut b = a.clone();
        a.wall_cycles = 100;
        a.bytes_moved = 100;
        b.wall_cycles = 300;
        b.bytes_moved = 100;
        let avg = average_metrics(&[a, b]);
        assert_eq!(avg.wall_cycles, 200);
        assert_eq!(avg.bytes_moved, 100);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn average_empty_panics() {
        let _ = average_metrics(&[]);
    }
}
