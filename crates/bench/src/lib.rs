//! Shared harness code for the `repro` binary and the criterion benches.
//!
//! The heavy lifting lives in [`affinity_sim`]; this crate adds the
//! experiment *matrices* the paper's evaluation section defines (which
//! sizes, which modes, which extreme points), seed-averaged sweeps, and a
//! deterministic work-stealing job pool that runs matrix cells in
//! parallel without letting the thread count leak into the results.

use affinity_sim::{
    run_experiment, AffinityMode, Direction, ExperimentConfig, RunMetrics, RunResult,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Seeds averaged for figure-level numbers (placement dynamics in the
/// unpinned modes are seed-sensitive, like real scheduler runs).
pub const FIGURE_SEEDS: [u64; 4] = [0x5EED, 42, 0xACE5, 2005];

/// The four "extreme data points" §6 analyses in depth.
pub const EXTREME_POINTS: [(Direction, u64); 4] = [
    (Direction::Tx, 65536),
    (Direction::Tx, 128),
    (Direction::Rx, 65536),
    (Direction::Rx, 128),
];

/// Builds the paper-scale experiment for one cell of the evaluation
/// matrix, with measurement counts trimmed to keep the full regeneration
/// run tractable.
#[must_use]
pub fn cell(direction: Direction, size: u64, mode: AffinityMode, seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_sut(direction, size, mode).with_seed(seed);
    // ~1 MB measured per connection, bounded for wall-clock sanity.
    config.workload.measure_messages = (1024 * 1024 / size).clamp(16, 800) as u32;
    config.workload.warmup_messages = (config.workload.measure_messages / 3).max(6);
    config
}

/// Runs one cell and returns its metrics.
///
/// # Panics
///
/// Panics if the experiment configuration is invalid (a bug in the
/// harness, not an I/O condition).
#[must_use]
pub fn run_cell(direction: Direction, size: u64, mode: AffinityMode, seed: u64) -> RunResult {
    run_experiment(&cell(direction, size, mode, seed)).expect("valid experiment config")
}

/// Worker count for [`run_pool`]: the `REPRO_THREADS` environment
/// variable if set, otherwise the machine's available parallelism.
///
/// Results never depend on this number — only wall-clock time does.
#[must_use]
pub fn pool_threads() -> usize {
    std::env::var("REPRO_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, usize::from))
}

/// Hardware threads actually available to this process.
#[must_use]
pub fn hardware_threads() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// Runs every job through `run` on a pool of workers and returns the
/// results **in job order**, regardless of scheduling.
///
/// `threads` is a *cap*, not a target: the simulation is pure CPU work,
/// so spawning more workers than the machine has hardware threads can
/// only add context-switch and cache-thrash overhead (measured as a
/// uniform threads=4 loss on a 1-core container before the clamp).
/// Results never depend on the worker count — only wall time does — so
/// clamping `REPRO_THREADS=8` to 2 workers on a 2-core box changes
/// nothing but speed.
///
/// Each simulation cell is self-contained (its own `Machine`, its own
/// RNG seeded from the config), so cells never share mutable state and
/// the per-cell results are bit-identical whether the pool runs with one
/// worker or many.
pub fn run_pool<J, R, F>(jobs: Vec<J>, threads: usize, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    run_pool_exact(jobs, threads.min(hardware_threads()), run)
}

/// [`run_pool`] without the hardware clamp: spawns exactly
/// `workers` threads (when there are that many jobs). Tests use this to
/// exercise the multi-worker claim/merge machinery even on machines
/// where the clamp would collapse the pool to one worker.
///
/// With `workers <= 1` (or a single job) the jobs run inline on the
/// caller's thread — no spawning, same results.
pub fn run_pool_exact<J, R, F>(jobs: Vec<J>, workers: usize, run: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let n = jobs.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return jobs.into_iter().map(run).collect();
    }
    // One shared cursor hands out job indices, so claiming a job is a
    // single uncontended `fetch_add` instead of a queue-mutex
    // acquisition. Each per-job slot is locked exactly once by the one
    // worker whose cursor draw claimed it. Workers accumulate results
    // in worker-local vectors (nothing shared to contend or false-share
    // on) and the join-time scatter restores job order, so the output
    // is independent of which worker ran what.
    let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let cursor = AtomicUsize::new(0);
    let run = &run;
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            return local;
                        }
                        let job = slots[idx]
                            .lock()
                            .expect("job slot lock")
                            .take()
                            .expect("each job claimed exactly once");
                        local.push((idx, run(job)));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (idx, out) in handle.join().expect("pool worker panicked") {
                results[idx] = Some(out);
            }
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("cursor covered every job"))
        .collect()
}

/// Folds a result stream into an order-sensitive FNV-1a digest, so a
/// benchmark run is checkable: identical inputs must give an identical
/// digest at any worker count, and the folded work can't be optimized
/// away.
#[must_use]
pub fn fnv_fold(values: impl IntoIterator<Item = u64>) -> u64 {
    values.into_iter().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
        (h ^ c).wrapping_mul(0x0100_0000_01b3)
    })
}

/// Appends one JSON object to an append-only JSON-array history file.
///
/// The file holds one entry per recorded benchmark run (`repro perf`,
/// `repro scale`), newest last, so the bench trajectory across PRs stays
/// visible instead of being clobbered by every run. A missing or empty
/// file starts a new array; a legacy single-object snapshot (the pre-PR 3
/// format) is wrapped into the array as its first entry.
///
/// # Panics
///
/// Panics if the file can't be written (the harness runs from the repo
/// root; failing to record a benchmark should be loud).
pub fn append_history(path: &str, entry: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim();
    let entry = entry.trim();
    let body = if trimmed.is_empty() {
        format!("[\n{entry}\n]\n")
    } else if let Some(rest) = trimmed.strip_prefix('[') {
        let inner = rest.strip_suffix(']').unwrap_or(rest).trim();
        if inner.is_empty() {
            format!("[\n{entry}\n]\n")
        } else {
            format!("[\n{inner},\n{entry}\n]\n")
        }
    } else {
        format!("[\n{trimmed},\n{entry}\n]\n")
    };
    std::fs::write(path, body).unwrap_or_else(|e| panic!("write history {path}: {e}"));
}

/// One row of the append-only benchmark history, as read back by
/// [`latest_history_entry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryEntry {
    /// PR number stamped on the row.
    pub pr: u32,
    /// Worker-pool size the row was recorded at.
    pub threads: usize,
    /// Recorded wall seconds.
    pub wall_s: f64,
    /// Recorded machine-construction wall seconds — the setup share of
    /// `wall_s` (`None` on rows predating the setup/run split).
    pub setup_wall: Option<f64>,
    /// Recorded result digest (`None` on rows predating the field).
    pub digest: Option<u64>,
}

/// Extracts the value of `"key": value` from one history line, with the
/// trailing comma stripped (string values keep their quotes).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = line.trim().strip_prefix('"')?.strip_prefix(key)?;
    let rest = rest.strip_prefix('"')?.trim_start().strip_prefix(':')?;
    Some(rest.trim().trim_end_matches(','))
}

/// Scans an append-only history file (the format [`append_history`]
/// writes: one `"key": value` pair per line) and returns every entry
/// whose `benchmark` field starts with `benchmark_prefix`, in file
/// (oldest-first) order.
fn scan_history(path: &str, benchmark_prefix: &str) -> Vec<HistoryEntry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    let (mut pr, mut thr, mut wall) = (None::<u32>, None::<usize>, None::<f64>);
    let mut setup = None::<f64>;
    let mut digest = None::<u64>;
    let mut benchmark: Option<String> = None;
    for line in text.lines() {
        let t = line.trim();
        if let Some(v) = json_field(t, "pr") {
            pr = v.parse().ok();
        } else if let Some(v) = json_field(t, "threads") {
            thr = v.parse().ok();
        } else if let Some(v) = json_field(t, "current_wall_s") {
            wall = v.parse().ok();
        } else if let Some(v) = json_field(t, "setup_wall_s") {
            setup = v.parse().ok();
        } else if let Some(v) = json_field(t, "digest") {
            digest = u64::from_str_radix(v.trim_matches('"'), 16).ok();
        } else if let Some(v) = json_field(t, "benchmark") {
            benchmark = Some(v.trim_matches('"').to_string());
        } else if t.starts_with('}') {
            if let (Some(pr), Some(threads), Some(wall_s), Some(bench)) =
                (pr, thr, wall, benchmark.as_deref())
            {
                if bench.starts_with(benchmark_prefix) {
                    rows.push(HistoryEntry {
                        pr,
                        threads,
                        wall_s,
                        setup_wall: setup,
                        digest,
                    });
                }
            }
            (pr, thr, wall, setup, digest, benchmark) = (None, None, None, None, None, None);
        }
    }
    rows
}

/// Returns the **newest** history entry whose `benchmark` field starts
/// with `benchmark_prefix` and — when `threads` is given — whose
/// recorded worker count matches, so a fresh run is only compared
/// against rows timed the same way.
///
/// Returns `None` when the file is missing or no row matches.
#[must_use]
pub fn latest_history_entry(
    path: &str,
    benchmark_prefix: &str,
    threads: Option<usize>,
) -> Option<HistoryEntry> {
    scan_history(path, benchmark_prefix)
        .into_iter()
        .filter(|row| threads.is_none_or(|n| n == row.threads))
        .last()
}

/// Returns the newest matching history entry **per recorded worker
/// count**, sorted by ascending thread count — the comparison set for
/// the parallel-runner regression warning (`repro <sweep> --check`
/// warns when a threads>1 row is slower than its threads=1
/// counterpart).
#[must_use]
pub fn latest_entries_by_threads(path: &str, benchmark_prefix: &str) -> Vec<HistoryEntry> {
    let mut newest: Vec<HistoryEntry> = Vec::new();
    for row in scan_history(path, benchmark_prefix) {
        if let Some(slot) = newest.iter_mut().find(|e| e.threads == row.threads) {
            *slot = row;
        } else {
            newest.push(row);
        }
    }
    newest.sort_by_key(|e| e.threads);
    newest
}

/// Averages the metrics of several runs of the same cell: every counter
/// — scalars, per-CPU vectors, the machine-wide event bank, the per-bin
/// banks and the clear-reason breakdown — becomes the rounded mean of
/// the inputs, so derived rates match the mean of the individual runs.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn average_metrics(runs: &[RunMetrics]) -> RunMetrics {
    assert!(!runs.is_empty(), "need at least one run");
    let n = runs.len() as u64;
    // Rounded (not floored) integer mean, so e.g. three runs of 1, 1, 2
    // average to 1 but 1, 2, 2 average to 2.
    let mean = |sum: u64| (sum + n / 2) / n;
    let field = |get: &dyn Fn(&RunMetrics) -> u64| mean(runs.iter().map(get).sum::<u64>());
    let counters = |get: &dyn Fn(&RunMetrics) -> &sim_cpu::PerfCounters| {
        let mut avg = sim_cpu::PerfCounters::default();
        for event in sim_cpu::HwEvent::ALL {
            avg.bump(
                event,
                mean(runs.iter().map(|r| get(r).get(event)).sum::<u64>()),
            );
        }
        avg
    };

    let mut avg = runs[0].clone();
    avg.wall_cycles = field(&|r| r.wall_cycles);
    avg.bytes_moved = field(&|r| r.bytes_moved);
    avg.messages = field(&|r| r.messages);
    for c in 0..avg.busy_cycles.len() {
        avg.busy_cycles[c] = field(&|r| r.busy_cycles[c]);
    }
    avg.total = counters(&|r| &r.total);
    for b in 0..avg.bins.len() {
        avg.bins[b].counters = counters(&|r| &r.bins[b].counters);
    }
    for i in 0..avg.clears_by_reason.len() {
        avg.clears_by_reason[i] = field(&|r| r.clears_by_reason[i]);
    }
    avg.resched_ipis = field(&|r| r.resched_ipis);
    avg.wake_migrations = field(&|r| r.wake_migrations);
    avg.balance_migrations = field(&|r| r.balance_migrations);
    avg.lock_acquisitions = field(&|r| r.lock_acquisitions);
    avg.lock_contended = field(&|r| r.lock_contended);
    avg.interrupts = field(&|r| r.interrupts);
    avg
}

/// Runs one cell for every figure seed and averages the results.
#[must_use]
pub fn seed_averaged(direction: Direction, size: u64, mode: AffinityMode) -> RunMetrics {
    let runs: Vec<RunMetrics> = FIGURE_SEEDS
        .iter()
        .map(|&s| run_cell(direction, size, mode, s).metrics)
        .collect();
    average_metrics(&runs)
}

/// Runs a whole figure row (all four modes for one size/direction) on
/// the job pool, seed-averaged. The row is assembled in matrix order
/// (mode-major, seed-minor), so the output is independent of how many
/// workers the pool used.
#[must_use]
pub fn figure_row(direction: Direction, size: u64) -> Vec<(AffinityMode, RunMetrics)> {
    figure_row_on(direction, size, pool_threads().min(hardware_threads()))
}

/// [`figure_row`] with an explicit, unclamped pool size (for
/// thread-independence tests, which need real multi-worker scheduling
/// even on single-core machines).
#[must_use]
pub fn figure_row_on(
    direction: Direction,
    size: u64,
    threads: usize,
) -> Vec<(AffinityMode, RunMetrics)> {
    let jobs: Vec<(AffinityMode, u64)> = AffinityMode::ALL
        .iter()
        .flat_map(|&mode| FIGURE_SEEDS.iter().map(move |&seed| (mode, seed)))
        .collect();
    let runs = run_pool_exact(jobs, threads, |(mode, seed)| {
        run_cell(direction, size, mode, seed).metrics
    });
    AffinityMode::ALL
        .iter()
        .zip(runs.chunks(FIGURE_SEEDS.len()))
        .map(|(&mode, chunk)| (mode, average_metrics(chunk)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_scales_counts_with_size() {
        let small = cell(Direction::Tx, 128, AffinityMode::None, 1);
        let large = cell(Direction::Tx, 65536, AffinityMode::None, 1);
        assert!(small.workload.measure_messages > large.workload.measure_messages);
        assert_eq!(large.workload.measure_messages, 16);
    }

    #[test]
    fn average_metrics_means_rates() {
        let mut a = run_cell(Direction::Tx, 1024, AffinityMode::Full, 1).metrics;
        let mut b = a.clone();
        a.wall_cycles = 100;
        a.bytes_moved = 100;
        b.wall_cycles = 300;
        b.bytes_moved = 100;
        let avg = average_metrics(&[a, b]);
        assert_eq!(avg.wall_cycles, 200);
        assert_eq!(avg.bytes_moved, 100);
    }

    #[test]
    fn average_metrics_rounds_every_counter() {
        let a = run_cell(Direction::Tx, 1024, AffinityMode::Full, 1).metrics;
        let mut b = a.clone();
        // Perturb a scalar, the event bank, a bin and a breakdown entry
        // by odd deltas so a floored mean would lose the .5.
        b.messages = a.messages + 1;
        b.total.llc_misses = a.total.llc_misses + 3;
        b.bins[0].counters.cycles = a.bins[0].counters.cycles + 5;
        b.clears_by_reason[0] = a.clears_by_reason[0] + 1;
        b.lock_contended = a.lock_contended + 7;
        let avg = average_metrics(&[a.clone(), b]);
        // (2x + d + 1) / 2 rounded = x + (d + 1) / 2 for odd d.
        assert_eq!(avg.messages, a.messages + 1);
        assert_eq!(avg.total.llc_misses, a.total.llc_misses + 2);
        assert_eq!(avg.bins[0].counters.cycles, a.bins[0].counters.cycles + 3);
        assert_eq!(avg.clears_by_reason[0], a.clears_by_reason[0] + 1);
        assert_eq!(avg.lock_contended, a.lock_contended + 4);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn average_empty_panics() {
        let _ = average_metrics(&[]);
    }

    #[test]
    fn fnv_fold_is_order_sensitive() {
        assert_eq!(fnv_fold([]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv_fold([1, 2]), fnv_fold([2, 1]));
        assert_eq!(fnv_fold([1, 2, 3]), fnv_fold([1, 2, 3]));
    }

    #[test]
    fn append_history_grows_an_array_and_wraps_legacy_snapshots() {
        let path = std::env::temp_dir().join(format!("bench_history_{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(path);

        // Empty file -> fresh one-entry array.
        append_history(path, "{\"pr\": 1}");
        assert_eq!(
            std::fs::read_to_string(path).unwrap(),
            "[\n{\"pr\": 1}\n]\n"
        );

        // Existing array -> appended, newest last.
        append_history(path, "{\"pr\": 2}");
        assert_eq!(
            std::fs::read_to_string(path).unwrap(),
            "[\n{\"pr\": 1},\n{\"pr\": 2}\n]\n"
        );

        // Legacy single-object snapshot -> wrapped as the first entry.
        std::fs::write(path, "{\n  \"old\": true\n}\n").unwrap();
        append_history(path, "{\"pr\": 3}");
        assert_eq!(
            std::fs::read_to_string(path).unwrap(),
            "[\n{\n  \"old\": true\n},\n{\"pr\": 3}\n]\n"
        );

        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn latest_history_entry_picks_newest_matching_row() {
        let path = std::env::temp_dir().join(format!("bench_latest_{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(path);
        assert_eq!(latest_history_entry(path, "full figure matrix", None), None);

        for (pr, threads, wall, bench) in [
            (1, 1, 6.48, "full figure matrix (2 dirs x 7 sizes)"),
            (3, 1, 5.67, "scale sweep (4 CPU counts)"),
            (4, 1, 7.27, "full figure matrix (2 dirs x 7 sizes)"),
            (4, 8, 2.11, "full figure matrix (2 dirs x 7 sizes)"),
        ] {
            append_history(
                path,
                &format!(
                    "  {{\n    \"pr\": {pr},\n    \"benchmark\": \"{bench}\",\n    \
                     \"threads\": {threads},\n    \"current_wall_s\": {wall:.2}\n  }}"
                ),
            );
        }

        // Newest matching row wins; the threads constraint narrows it.
        let any = latest_history_entry(path, "full figure matrix", None).unwrap();
        assert_eq!((any.pr, any.threads, any.wall_s), (4, 8, 2.11));
        let single = latest_history_entry(path, "full figure matrix", Some(1)).unwrap();
        assert_eq!((single.pr, single.wall_s), (4, 7.27));
        let scale = latest_history_entry(path, "scale sweep", None).unwrap();
        assert_eq!((scale.pr, scale.wall_s), (3, 5.67));
        assert_eq!(latest_history_entry(path, "steering sweep", None), None);
        assert_eq!(
            latest_history_entry(path, "full figure matrix", Some(3)),
            None
        );

        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn history_rows_carry_their_recorded_digest() {
        let path = std::env::temp_dir().join(format!("bench_digest_{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(path);

        // A legacy row without digest/setup fields parses to `None`s; a
        // modern row round-trips the hex digest string back to the u64
        // and carries its setup share.
        append_history(
            path,
            "  {\n    \"pr\": 5,\n    \"benchmark\": \"poll sweep\",\n    \
             \"threads\": 1,\n    \"current_wall_s\": 1.00\n  }",
        );
        let legacy = latest_history_entry(path, "poll sweep", None).unwrap();
        assert_eq!(legacy.setup_wall, None);
        assert_eq!(legacy.digest, None);
        append_history(
            path,
            "  {\n    \"pr\": 10,\n    \"benchmark\": \"poll sweep\",\n    \
             \"threads\": 1,\n    \"current_wall_s\": 1.10,\n    \
             \"setup_wall_s\": 0.25,\n    \
             \"digest\": \"5b4b100cbd3a3908\"\n  }",
        );

        let newest = latest_history_entry(path, "poll sweep", None).unwrap();
        assert_eq!(newest.digest, Some(0x5b4b_100c_bd3a_3908));
        assert_eq!(newest.setup_wall, Some(0.25));
        let rows = latest_entries_by_threads(path, "poll sweep");
        assert_eq!(rows.len(), 1, "both rows are threads=1; newest wins");
        assert_eq!(rows[0].pr, 10);

        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn latest_entries_by_threads_keeps_newest_per_count() {
        let path = std::env::temp_dir().join(format!("bench_threads_{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(path);
        assert!(latest_entries_by_threads(path, "full figure matrix").is_empty());

        for (pr, threads, wall) in [(4, 8, 2.11), (6, 1, 6.37), (6, 4, 6.77), (8, 1, 6.44)] {
            append_history(
                path,
                &format!(
                    "  {{\n    \"pr\": {pr},\n    \"benchmark\": \"full figure matrix\",\n    \
                     \"threads\": {threads},\n    \"current_wall_s\": {wall:.2}\n  }}"
                ),
            );
        }

        let rows = latest_entries_by_threads(path, "full figure matrix");
        let shape: Vec<(u32, usize, f64)> =
            rows.iter().map(|e| (e.pr, e.threads, e.wall_s)).collect();
        // Newest row per thread count, ascending by count.
        assert_eq!(shape, vec![(8, 1, 6.44), (6, 4, 6.77), (4, 8, 2.11)]);

        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_pool_preserves_job_order() {
        let jobs: Vec<u64> = (0..37).collect();
        let serial = run_pool_exact(jobs.clone(), 1, |j| j * j);
        let parallel = run_pool_exact(jobs, 4, |j| j * j);
        assert_eq!(serial, parallel);
        assert_eq!(serial[5], 25);
    }

    #[test]
    fn run_pool_clamps_to_hardware() {
        // The clamped entry point must still produce identical results
        // at an absurd requested width (it may collapse to one worker
        // on a small machine — that's the point).
        let jobs: Vec<u64> = (0..25).collect();
        assert_eq!(
            run_pool(jobs, 1024, |j| j + 1),
            (1..=25).collect::<Vec<_>>()
        );
    }

    #[test]
    fn figure_row_independent_of_thread_count() {
        let one = figure_row_on(Direction::Tx, 8192, 1);
        let many = figure_row_on(Direction::Tx, 8192, 4);
        assert_eq!(one.len(), many.len());
        for ((m1, r1), (m2, r2)) in one.iter().zip(many.iter()) {
            assert_eq!(m1, m2);
            assert_eq!(r1, r2, "thread count leaked into {} results", m1.label());
        }
    }
}
