//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro                # everything
//! repro fig3           # one artifact: fig3 fig4 fig5 table1..table5 fourp
//! repro --sizes 128,65536 fig3   # restrict the size sweep
//! repro --filter full/4096/tx    # run exactly one matrix cell
//! repro perf           # time the benchmark matrix, append to BENCH_substrate.json
//! repro perf --check   # compare against the latest BENCH row; exit 1 on >10% regression
//! repro scale          # CPUs x flows x modes scaling sweep (incl. RSS)
//! repro steer          # steering-policy sweep: RSS vs Flow Director
//! repro poll           # interrupt-vs-poll sweep: IRQ stack vs PMD cores
//! repro churn          # connection-churn sweep: SYN-to-FIN lifecycle
//! repro --list         # sweeps, their filter tokens, latest digests
//! repro --quick perf   # smoke variants at tiny message counts (CI)
//! ```
//!
//! `--check` works on every sweep subcommand (`perf`, `scale`, `steer`,
//! `poll`, `churn`): instead of appending a history row, the fresh wall
//! time is gated against the newest matching row in
//! `BENCH_substrate.json`.
//!
//! `--filter` narrows the sweep subcommands to matching cells — the
//! spec is `mode/size/dir` for `perf`, `mode/cpus/flows` for `scale`,
//! `policy/coalesce/cpus` (e.g. `flowdir/adaptive/8`) for `steer`,
//! `plane/policy/cpus` (e.g. `poll/pmd/8`) for `poll`, and
//! `plane/policy/cpus/flows` (e.g. `irq/flowdir/8/1000`) for `churn`.
//! A filter that matches no cells lists the valid tokens on stderr and
//! exits 2, the same usage-error contract as a misspelled artifact.
//! `repro --list` prints every sweep with its filter grammar and the
//! newest recorded history row, so the exit-2 listings are not the only
//! discovery path.
//!
//! The sweep cells run on a deterministic job pool; `REPRO_THREADS`
//! overrides the worker count (results are identical at any setting).

use affinity_sim::{
    report, AffinityMode, CoalesceConfig, DataplaneMode, Direction, DynamicSteer, ExperimentConfig,
    FlowPlacement, RunMetrics, RunResult, ServerWorkload, SteerSpec, VectorLayout, PAPER_SIZES,
};
use bench::{
    append_history, cell, figure_row, fnv_fold, latest_entries_by_threads, latest_history_entry,
    pool_threads, run_cell, run_pool, EXTREME_POINTS,
};
use sim_cpu::EventCosts;

/// PR number stamped on history entries appended to `BENCH_substrate.json`.
const CURRENT_PR: u32 = 10;

/// History file the sweep subcommands record into and `--check` reads.
const HISTORY_PATH: &str = "BENCH_substrate.json";

/// Benchmark-name prefix of the paper-matrix rows in the history file.
const MATRIX_BENCHMARK: &str = "full figure matrix";

/// Wall-time slack `perf --check` allows over the recorded row before it
/// declares a regression.
const CHECK_SLACK: f64 = 1.10;

/// Absolute grace added on top of [`CHECK_SLACK`]: container scheduling
/// noise is a constant (~0.1-0.2 s), not a percentage, so a sub-second
/// sweep (`steer`, `poll`) would flake on every gusty run if 10% of its
/// wall were the whole budget. Negligible against the multi-second
/// sweeps the gate actually protects.
const CHECK_NOISE_FLOOR_S: f64 = 0.25;

/// Every artifact name `repro` understands, for validation and `--help`.
const KNOWN_ARTIFACTS: [&str; 14] = [
    "fig3", "fig4", "fig5", "table1", "table2", "table3", "table4", "table5", "fourp", "perf",
    "scale", "steer", "poll", "churn",
];

struct Args {
    artifacts: Vec<String>,
    sizes: Vec<u64>,
    /// `--filter <spec>`: narrow a sweep to matching cells. The spec
    /// grammar is per-subcommand, so the raw string is kept and parsed
    /// where it's interpreted.
    filter: Option<String>,
    /// `--quick`: tiny message counts, no history entry (CI smoke).
    quick: bool,
    /// `--check` (with `perf`): gate on the recorded wall time instead
    /// of appending a new history row.
    check: bool,
    /// `--list`: print the sweeps, their filter grammars and the newest
    /// recorded history rows, then exit.
    list: bool,
}

/// Rejects a bad command-line token: prints the offending value and the
/// full list of accepted ones, then exits with status 2 (usage error)
/// instead of a panic backtrace.
fn usage_error(what: &str, got: &str, valid: &str) -> ! {
    eprintln!("repro: unknown {what} {got:?}");
    eprintln!("  valid {what}s: {valid}");
    eprintln!(
        "  usage: repro [--list] [--quick] [--check] [--sizes N,N,..] [--filter spec] [artifact..]"
    );
    std::process::exit(2);
}

/// Rejects a well-formed `--filter` whose tokens name no cell of the
/// sweep being run: lists the valid tokens on stderr and exits 2 — the
/// same usage-error contract for every sweep subcommand.
fn empty_filter_error(subcommand: &str, spec: &str, valid: &str) -> ! {
    eprintln!("repro {subcommand}: --filter {spec:?} matches no cells");
    eprintln!("  valid tokens: {valid}");
    std::process::exit(2);
}

/// Construction-throughput sanity bound for the million-flow cells, in
/// host nanoseconds per provisioned flow. The incremental (pre-slab)
/// path measured ~22,700 ns/flow building the 16-CPU x 100k-flow churn
/// machine, and its per-flow cost *grows* with the flow count (each
/// `add_region` resizes the directory and per-CPU tables), so a slab
/// build drifting anywhere near this rate has silently fallen back to
/// per-region provisioning. The default of a quarter of the incremental
/// rate leaves headroom for slow CI hosts while sitting ~5x above the
/// measured slab rate (~1,100 ns/flow); the ≥10x acceptance bar itself
/// is read off the recorded `setup_wall_s` columns, where the hardware
/// is the same on both sides of the comparison. Override with
/// `REPRO_MAX_SETUP_NS_PER_FLOW`.
const MAX_SETUP_NS_PER_FLOW: f64 = 22_700.0 / 4.0;

/// Asserts the million-flow construction bound, then reports the
/// achieved per-flow rate (visible in CI logs either way).
fn assert_setup_bound(label: &str, setup_wall_s: f64, flows: usize) {
    let bound = std::env::var("REPRO_MAX_SETUP_NS_PER_FLOW")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(MAX_SETUP_NS_PER_FLOW);
    let ns_per_flow = setup_wall_s * 1e9 / flows as f64;
    assert!(
        ns_per_flow <= bound,
        "{label}: construction ran at {ns_per_flow:.0} ns/flow, over the {bound:.0} ns/flow \
         bound — the slab path has regressed toward incremental provisioning \
         (override with REPRO_MAX_SETUP_NS_PER_FLOW)"
    );
    eprintln!("{label}: construction {ns_per_flow:.0} ns/flow (bound {bound:.0})");
}

/// Rejects `--check --filter`: the gate compares against rows recorded
/// for the full sweep, so a filtered subset is never comparable.
fn check_rejects_filter(subcommand: &str, filter: Option<&str>) {
    if filter.is_some() {
        eprintln!("repro {subcommand}: --check times the full sweep; drop --filter");
        std::process::exit(2);
    }
}

/// The wall-time regression gate shared by every sweep subcommand:
/// compares a fresh run's wall seconds against the newest history row
/// whose benchmark name starts with `benchmark_prefix` and exits 1 if
/// the run is more than [`CHECK_SLACK`] over it. Quick runs time a
/// different workload, so with `quick` the gate only verifies a
/// comparison row exists (smoke mode) — and matches any worker count,
/// while full runs only gate against rows recorded at the same count.
fn check_gate(subcommand: &str, benchmark_prefix: &str, wall: f64, quick: bool, threads: usize) {
    let row = latest_history_entry(
        HISTORY_PATH,
        benchmark_prefix,
        if quick { None } else { Some(threads) },
    );
    let Some(row) = row else {
        eprintln!(
            "{subcommand} check FAILED: no \"{benchmark_prefix}\" row{} in {HISTORY_PATH} to compare against",
            if quick {
                String::new()
            } else {
                format!(" at threads={threads}")
            }
        );
        std::process::exit(1);
    };
    if quick {
        eprintln!(
            "{subcommand} check: smoke mode — quick counts are not comparable to the recorded \
             {:.2} s (PR {}); timing gate skipped",
            row.wall_s, row.pr
        );
    } else {
        warn_parallel_regression(subcommand, benchmark_prefix);
        let limit = row.wall_s * CHECK_SLACK + CHECK_NOISE_FLOOR_S;
        if wall > limit {
            eprintln!(
                "{subcommand} check FAILED: {wall:.2} s vs recorded {:.2} s (PR {}, threads {}) \
                 — over the {limit:.2} s limit",
                row.wall_s, row.pr, row.threads
            );
            std::process::exit(1);
        }
        eprintln!(
            "{subcommand} check OK: {wall:.2} s vs recorded {:.2} s (PR {}, limit {limit:.2} s)",
            row.wall_s, row.pr
        );
    }
}

/// Non-fatal scan over the recorded history: if the newest threads>1
/// row of this benchmark is slower than its newest threads=1
/// counterpart (beyond the same slack-plus-noise-floor tolerance the
/// gate uses, so two rows of the same clamped single-worker run don't
/// trip it), the parallel runner is a net loss — print it, so the
/// regression can never land silently again. The gate itself stays
/// same-thread-count-only; this is a summary, not a failure.
fn warn_parallel_regression(subcommand: &str, benchmark_prefix: &str) {
    let rows = latest_entries_by_threads(HISTORY_PATH, benchmark_prefix);
    let Some(serial) = rows.iter().find(|e| e.threads == 1) else {
        return;
    };
    for row in rows.iter().filter(|e| e.threads > 1) {
        if row.wall_s > serial.wall_s * CHECK_SLACK + CHECK_NOISE_FLOOR_S {
            eprintln!(
                "{subcommand} check WARNING: threads={} row ({:.2} s, PR {}) is slower than \
                 threads=1 ({:.2} s, PR {}) — the parallel runner is losing",
                row.threads, row.wall_s, row.pr, serial.wall_s, serial.pr
            );
        }
    }
}

/// The `--filter` input token for a mode (inverse of [`parse_mode`]),
/// so empty-match errors list tokens the parser actually accepts.
fn mode_token(mode: AffinityMode) -> &'static str {
    match mode {
        AffinityMode::None => "no",
        AffinityMode::Irq => "irq",
        AffinityMode::Process => "proc",
        AffinityMode::Full => "full",
        AffinityMode::Rss => "rss",
    }
}

fn parse_mode(token: &str) -> AffinityMode {
    match token.to_ascii_lowercase().as_str() {
        "no" | "none" => AffinityMode::None,
        "irq" => AffinityMode::Irq,
        "proc" | "process" => AffinityMode::Process,
        "full" => AffinityMode::Full,
        "rss" => AffinityMode::Rss,
        other => usage_error("filter mode", other, "no, irq, proc, full, rss"),
    }
}

fn parse_filter(spec: &str) -> (AffinityMode, u64, Direction) {
    let parts: Vec<&str> = spec.split('/').collect();
    if parts.len() != 3 {
        usage_error(
            "filter",
            spec,
            "<mode>/<size>/<dir>, e.g. full/4096/tx (mode: no|irq|proc|full|rss; dir: tx|rx)",
        );
    }
    let mode = parse_mode(parts[0]);
    let size: u64 = parts[1].parse().unwrap_or_else(|_| {
        usage_error(
            "filter size",
            parts[1],
            "a message size in bytes, e.g. 128, 4096, 65536",
        )
    });
    let direction = match parts[2].to_ascii_lowercase().as_str() {
        "tx" => Direction::Tx,
        "rx" => Direction::Rx,
        other => usage_error("filter direction", other, "tx, rx"),
    };
    (mode, size, direction)
}

fn parse_args() -> Args {
    let mut parsed = Args {
        artifacts: Vec::new(),
        sizes: PAPER_SIZES.to_vec(),
        filter: None,
        quick: false,
        check: false,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--sizes" {
            let list = args.next().unwrap_or_default();
            parsed.sizes = list
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect();
        } else if arg == "--filter" {
            parsed.filter = Some(args.next().unwrap_or_default());
        } else if arg == "--quick" {
            parsed.quick = true;
        } else if arg == "--check" {
            parsed.check = true;
        } else if arg == "--list" {
            parsed.list = true;
        } else {
            parsed.artifacts.push(arg);
        }
    }
    for artifact in &parsed.artifacts {
        if !KNOWN_ARTIFACTS.contains(&artifact.as_str()) {
            usage_error("artifact", artifact, &KNOWN_ARTIFACTS.join(", "));
        }
    }
    if parsed.artifacts.is_empty() {
        parsed.artifacts = [
            "fig3", "fig4", "table1", "table2", "fig5", "table3", "table4", "table5", "fourp",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    parsed
}

/// Runs the single matrix cell named by `--filter` and prints its
/// headline metrics — the quickest way to reproduce one data point.
fn run_filtered(mode: AffinityMode, size: u64, direction: Direction, quick: bool) {
    let mut config = cell(direction, size, mode, 0x5EED);
    if quick {
        config.workload = config.workload.quick();
    }
    eprintln!(
        "single cell: {} {} {}B ({} warmup + {} measured msgs/conn, seed 0x5EED)",
        mode.label(),
        direction.label(),
        size,
        config.workload.warmup_messages,
        config.workload.measure_messages,
    );
    let r = affinity_sim::run_experiment(&config).expect("valid experiment config");
    let m = &r.metrics;
    println!("mode        : {}", mode.label());
    println!("direction   : {}", direction.label());
    println!("message size: {size} B");
    println!("messages    : {}", m.messages);
    println!("wall cycles : {}", m.wall_cycles);
    println!("throughput  : {:.0} Mb/s", m.throughput_mbps());
    println!("cost        : {:.2} GHz/Gbps", m.cost_ghz_per_gbps());
    println!(
        "cpu util    : {}",
        (0..config.cpus)
            .map(|c| format!("{:.2}", m.cpu_utilization(c)))
            .collect::<Vec<_>>()
            .join(" ")
    );
}

fn sweep(direction: Direction, sizes: &[u64]) -> Vec<(u64, Vec<(AffinityMode, RunMetrics)>)> {
    sizes
        .iter()
        .map(|&size| {
            eprintln!("  sweep {direction} {size}B ...");
            (size, figure_row(direction, size))
        })
        .collect()
}

/// The four extreme points under no and full affinity (single seed; used
/// by Tables 1/3/4/5 and Figure 5).
fn extreme_runs() -> Vec<(String, RunResult, RunResult)> {
    EXTREME_POINTS
        .iter()
        .map(|&(dir, size)| {
            let label = format!(
                "{} {}",
                dir.label(),
                if size == 65536 { "64KB" } else { "128B" }
            );
            eprintln!("  extreme point {label} ...");
            let no = run_cell(dir, size, AffinityMode::None, 0x5EED);
            let full = run_cell(dir, size, AffinityMode::Full, 0x5EED);
            (label, no, full)
        })
        .collect()
}

/// Wall seconds of the pre-optimization harness running the same 112
/// benchmark cells on this container (median of interleaved runs of the
/// seed-revision binary, single core). Override with `REPRO_BASELINE_S`
/// when benchmarking on different hardware.
const PRE_PR_BASELINE_S: f64 = 13.5;

/// Times the benchmark matrix — both directions, every paper size, all
/// four modes, two seeds (112 cells, the same matrix the pre-PR harness
/// ran for `fig3 fig4`) — and appends a history entry to
/// `BENCH_substrate.json`. With `--quick` the cells run at tiny message
/// counts as a CI smoke check and nothing is recorded. With `--check`
/// nothing is recorded either: the fresh wall time is compared against
/// the latest matching history row instead, and the process exits 1 if
/// it is more than 10% slower — the perf scoreboard as a gate.
fn perf(quick: bool, check: bool, filter: Option<&str>) {
    const SEEDS: [u64; 2] = [0x5EED, 42];
    if check {
        check_rejects_filter("perf", filter);
    }
    let mut jobs: Vec<(Direction, u64, AffinityMode, u64)> = Vec::new();
    for dir in [Direction::Tx, Direction::Rx] {
        for &size in &PAPER_SIZES {
            for mode in AffinityMode::ALL {
                for seed in SEEDS {
                    jobs.push((dir, size, mode, seed));
                }
            }
        }
    }
    if let Some(spec) = filter {
        let (mode, size, dir) = parse_filter(spec);
        jobs.retain(|&(d, s, m, _)| d == dir && s == size && m == mode);
        if jobs.is_empty() {
            let sizes: Vec<String> = PAPER_SIZES.iter().map(u64::to_string).collect();
            let modes: Vec<&str> = AffinityMode::ALL.iter().map(|&m| mode_token(m)).collect();
            empty_filter_error(
                "perf",
                spec,
                &format!(
                    "mode {}; size {}; dir tx, rx",
                    modes.join(", "),
                    sizes.join(", ")
                ),
            );
        }
    }
    let cells = jobs.len();
    let threads = pool_threads();
    eprintln!(
        "timing {cells} cells on {threads} worker(s){}...",
        if quick { " (quick smoke counts)" } else { "" }
    );
    let t0 = std::time::Instant::now();
    let results = run_pool(jobs, threads, |(dir, size, mode, seed)| {
        let r = if quick {
            let mut config = cell(dir, size, mode, seed);
            config.workload = config.workload.quick();
            affinity_sim::run_experiment(&config).expect("valid experiment config")
        } else {
            run_cell(dir, size, mode, seed)
        };
        (r.metrics.wall_cycles, r.setup_wall_s)
    });
    let wall = t0.elapsed().as_secs_f64();
    let setup: f64 = results.iter().map(|&(_, s)| s).sum();
    let digest = fnv_fold(results.iter().map(|&(cycles, _)| cycles));
    if filter.is_some() {
        println!(
            "{cells} cells in {wall:.2} s ({rate:.1} cells/sec), digest {digest:016x}",
            rate = cells as f64 / wall,
        );
        eprintln!("filtered run: not recorded in {HISTORY_PATH}");
        return;
    }
    let baseline = std::env::var("REPRO_BASELINE_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(PRE_PR_BASELINE_S);
    let json = format!(
        "  {{\n    \"pr\": {CURRENT_PR},\n    \
         \"benchmark\": \"{MATRIX_BENCHMARK} (2 dirs x {n_sizes} sizes x 4 modes x 2 seeds)\",\n    \
         \"cells\": {cells},\n    \"threads\": {threads},\n    \
         \"baseline_wall_s\": {baseline:.2},\n    \"current_wall_s\": {wall:.2},\n    \
         \"setup_wall_s\": {setup:.2},\n    \
         \"speedup\": {speedup:.2},\n    \"cells_per_sec\": {rate:.1},\n    \"digest\": \"{digest:016x}\"\n  }}",
        n_sizes = PAPER_SIZES.len(),
        speedup = baseline / wall,
        rate = cells as f64 / wall,
    );
    if check {
        println!("{json}");
        check_gate("perf", MATRIX_BENCHMARK, wall, quick, threads);
        return;
    }
    if quick {
        eprintln!("quick smoke run: not recorded in {HISTORY_PATH}");
    } else {
        append_history(HISTORY_PATH, &json);
    }
    println!("{json}");
}

/// The scaling sweep: CPU counts x flow counts x affinity modes (the
/// Figure 3 interrupt/process knobs plus RSS hash steering), receive
/// side, 4 KB messages. Reports per-cell throughput so the scaling shape
/// is visible — with flows hash-steered to per-CPU vectors (RSS), adding
/// CPUs should add bandwidth, which is exactly the future the paper's
/// conclusion sketches. Deterministic: the digest is independent of
/// `REPRO_THREADS`.
fn scale(quick: bool, check: bool, filter: Option<&str>) {
    if check {
        check_rejects_filter("scale", filter);
    }
    const MODES: [AffinityMode; 4] = [
        AffinityMode::None,
        AffinityMode::Irq,
        AffinityMode::Full,
        AffinityMode::Rss,
    ];
    let (cpu_grid, flow_grid): (Vec<usize>, Vec<usize>) = if quick {
        (vec![2, 4], vec![8, 16])
    } else {
        (vec![2, 4, 8, 16], vec![8, 64, 256])
    };
    let mut jobs: Vec<(usize, usize, AffinityMode)> = Vec::new();
    for &cpus in &cpu_grid {
        for &flows in &flow_grid {
            for mode in MODES {
                jobs.push((cpus, flows, mode));
            }
        }
    }
    if let Some(spec) = filter {
        let parts: Vec<&str> = spec.split('/').collect();
        if parts.len() != 3 {
            usage_error(
                "filter",
                spec,
                "<mode>/<cpus>/<flows> for scale, e.g. rss/8/64",
            );
        }
        let mode = parse_mode(parts[0]);
        let cpus_want: usize = parts[1].parse().unwrap_or_else(|_| {
            usage_error("filter cpus", parts[1], "a CPU count, e.g. 2, 4, 8, 16")
        });
        let flows_want: usize = parts[2].parse().unwrap_or_else(|_| {
            usage_error("filter flows", parts[2], "a flow count, e.g. 8, 64, 256")
        });
        jobs.retain(|&(c, f, m)| c == cpus_want && f == flows_want && m == mode);
        if jobs.is_empty() {
            let cpus: Vec<String> = cpu_grid.iter().map(usize::to_string).collect();
            let flows: Vec<String> = flow_grid.iter().map(usize::to_string).collect();
            let modes: Vec<&str> = MODES.iter().map(|&m| mode_token(m)).collect();
            empty_filter_error(
                "scale",
                spec,
                &format!(
                    "mode {}; cpus {}; flows {}",
                    modes.join(", "),
                    cpus.join(", "),
                    flows.join(", ")
                ),
            );
        }
    }
    let cells = jobs.len();
    let threads = pool_threads();
    eprintln!(
        "scale sweep: {cells} cells ({} CPU counts x {} flow counts x 4 modes, Rx 4KB) on {threads} worker(s)...",
        cpu_grid.len(),
        flow_grid.len(),
    );
    let t0 = std::time::Instant::now();
    let results = run_pool(jobs.clone(), threads, move |(cpus, flows, mode)| {
        let mut config = ExperimentConfig::scale(Direction::Rx, cpus, flows, mode);
        if quick {
            config.workload.warmup_messages = 2;
            config.workload.measure_messages = 3;
        }
        let r = affinity_sim::run_experiment(&config).expect("valid scale config");
        (
            r.metrics.wall_cycles,
            r.metrics.throughput_mbps(),
            r.metrics.cost_ghz_per_gbps(),
            r.setup_wall_s,
        )
    });
    let wall = t0.elapsed().as_secs_f64();
    let setup: f64 = results.iter().map(|&(.., s)| s).sum();
    let digest = fnv_fold(results.iter().map(|&(cycles, ..)| cycles));

    if filter.is_some() {
        for (&(cpus, flows, mode), &(cycles, mbps, cost, _)) in jobs.iter().zip(&results) {
            println!(
                "{cpus} cpus, {flows} flows, {}: {mbps:.0} Mb/s, {cost:.2} GHz/Gbps, {cycles} cycles",
                mode.label(),
            );
        }
        println!(
            "{cells} cells in {wall:.2} s ({rate:.1} cells/sec), digest {digest:016x}",
            rate = cells as f64 / wall,
        );
        eprintln!("filtered run: not recorded in {HISTORY_PATH}");
        return;
    }

    println!("scaling sweep (Rx, 4KB messages, one NIC queue per CPU)");
    let header = format!(
        "{:>5} {:>6} | {:>9} {:>9} {:>9} {:>9}",
        "cpus",
        "flows",
        MODES[0].label(),
        MODES[1].label(),
        MODES[2].label(),
        MODES[3].label(),
    );
    println!("{header}  (Mb/s)");
    for (row, chunk) in results.chunks(MODES.len()).enumerate() {
        let (cpus, flows, _) = jobs[row * MODES.len()];
        let cols: Vec<String> = chunk
            .iter()
            .map(|&(_, mbps, ..)| format!("{mbps:>9.0}"))
            .collect();
        println!("{cpus:>5} {flows:>6} | {}", cols.join(" "));
    }
    println!("\nprocessing cost shape");
    println!("{header}  (GHz/Gbps)");
    for (row, chunk) in results.chunks(MODES.len()).enumerate() {
        let (cpus, flows, _) = jobs[row * MODES.len()];
        let cols: Vec<String> = chunk
            .iter()
            .map(|&(_, _, cost, _)| format!("{cost:>9.2}"))
            .collect();
        println!("{cpus:>5} {flows:>6} | {}", cols.join(" "));
    }
    let max_flows = *flow_grid.last().expect("non-empty flow grid");
    let rss_line: Vec<String> = jobs
        .iter()
        .zip(&results)
        .filter(|((_, flows, mode), _)| *flows == max_flows && *mode == AffinityMode::Rss)
        .map(|((cpus, _, _), (_, mbps, ..))| format!("{cpus} cpus -> {mbps:.0} Mb/s"))
        .collect();
    println!("RSS scaling at {max_flows} flows: {}", rss_line.join(", "));
    println!(
        "{cells} cells in {wall:.2} s ({rate:.1} cells/sec), digest {digest:016x}",
        rate = cells as f64 / wall,
    );

    if check {
        check_gate("scale", "scale sweep", wall, quick, threads);
    } else if quick {
        eprintln!("quick smoke run: not recorded in {HISTORY_PATH}");
    } else {
        let json = format!(
            "  {{\n    \"pr\": {CURRENT_PR},\n    \
             \"benchmark\": \"scale sweep (4 CPU counts x 3 flow counts x 4 modes, Rx 4KB)\",\n    \
             \"cells\": {cells},\n    \"threads\": {threads},\n    \
             \"current_wall_s\": {wall:.2},\n    \
             \"setup_wall_s\": {setup:.2},\n    \
             \"cells_per_sec\": {rate:.1},\n    \"digest\": \"{digest:016x}\"\n  }}",
            rate = cells as f64 / wall,
        );
        append_history(HISTORY_PATH, &json);
    }

    // One arena-scale cell on top of the grid: 16 CPUs x 4096 flows under
    // RSS, the flow count Open item 3's server workloads start at. Its own
    // digest and history row track whether per-flow state (arena-SoA) and
    // the coherence directory hold their cells/sec as footprint grows —
    // the grid's 256-flow ceiling can't see that cliff.
    let t1 = std::time::Instant::now();
    let mut config = ExperimentConfig::scale(Direction::Rx, 16, 4096, AffinityMode::Rss);
    // Per-flow counts trimmed below the grid's: at 4096 flows even 2+4
    // messages per flow is ~25k messages, plenty for a steady rate and
    // ~5 s of wall — the cell is about footprint, not per-flow depth.
    if quick {
        config.workload.warmup_messages = 1;
        config.workload.measure_messages = 1;
    } else {
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 4;
    }
    let r = affinity_sim::run_experiment(&config).expect("valid large scale config");
    let large_wall = t1.elapsed().as_secs_f64();
    let large_setup = r.setup_wall_s;
    let large_digest = fnv_fold([r.metrics.wall_cycles]);
    println!(
        "large cell (16 cpus x 4096 flows, rss): {mbps:.0} Mb/s, {cost:.2} GHz/Gbps in \
         {large_wall:.2} s (setup {large_setup:.2} s), digest {large_digest:016x}",
        mbps = r.metrics.throughput_mbps(),
        cost = r.metrics.cost_ghz_per_gbps(),
    );
    if check {
        check_gate(
            "scale large",
            "scale large cell",
            large_wall,
            quick,
            threads,
        );
    } else if quick {
        eprintln!("quick smoke run: not recorded in {HISTORY_PATH}");
    } else {
        let json = format!(
            "  {{\n    \"pr\": {CURRENT_PR},\n    \
             \"benchmark\": \"scale large cell (16 cpus x 4096 flows, rss, Rx 4KB)\",\n    \
             \"cells\": 1,\n    \"threads\": {threads},\n    \
             \"current_wall_s\": {large_wall:.2},\n    \
             \"setup_wall_s\": {large_setup:.2},\n    \
             \"cells_per_sec\": {rate:.1},\n    \"digest\": \"{large_digest:016x}\"\n  }}",
            rate = 1.0 / large_wall,
        );
        append_history(HISTORY_PATH, &json);
    }

    // The million-flow cell: 1M provisioned connections under RSS — the
    // regime ROADMAP item 3 names, reachable only because the slab path
    // made construction O(footprint) instead of O(flows x pages). The
    // workload switches to *aggregate* message targets: the subject is
    // provisioning and footprint at 1M live flows, and per-flow depth
    // would multiply the run window by a million for no extra signal.
    // The peers stream on a bounded working set (the large cell's 256
    // flows per CPU); the full million streaming at once is receive
    // livelock by construction — interrupt work alone saturates every
    // CPU and the consumers never run. The other 99.6% of flows hold
    // provisioned state, which is what the cell measures.
    // Quick mode keeps the full 1M flows — construction is the point —
    // on CI-sized CPU counts and a smaller window.
    let (m_cpus, m_flows) = if quick {
        (4, 1_000_000)
    } else {
        (16, 1_000_000)
    };
    eprintln!("scale 1M cell: {m_cpus} cpus x {m_flows} flows (aggregate targets)...");
    let t2 = std::time::Instant::now();
    let mut config = ExperimentConfig::scale(Direction::Rx, m_cpus, m_flows, AffinityMode::Rss);
    config.workload.aggregate_targets = true;
    config.workload.active_conns = 256 * m_cpus;
    if quick {
        config.workload.warmup_messages = 256;
        config.workload.measure_messages = 1024;
    } else {
        config.workload.warmup_messages = 4_096;
        config.workload.measure_messages = 16_384;
    }
    let r = affinity_sim::run_experiment(&config).expect("valid 1M scale config");
    let m_wall = t2.elapsed().as_secs_f64();
    let m_setup = r.setup_wall_s;
    let m_digest = fnv_fold([r.metrics.wall_cycles]);
    assert_setup_bound("scale 1M cell", m_setup, m_flows);
    println!(
        "1M cell ({m_cpus} cpus x {m_flows} flows, rss): {mbps:.0} Mb/s, {cost:.2} GHz/Gbps in \
         {m_wall:.2} s (setup {m_setup:.2} s), digest {m_digest:016x}",
        mbps = r.metrics.throughput_mbps(),
        cost = r.metrics.cost_ghz_per_gbps(),
    );
    if check {
        check_gate("scale 1M", "scale 1M cell", m_wall, quick, threads);
    } else if quick {
        eprintln!("quick smoke run: not recorded in {HISTORY_PATH}");
    } else {
        let json = format!(
            "  {{\n    \"pr\": {CURRENT_PR},\n    \
             \"benchmark\": \"scale 1M cell ({m_cpus} cpus x {m_flows} flows, rss, Rx 4KB)\",\n    \
             \"cells\": 1,\n    \"threads\": {threads},\n    \
             \"current_wall_s\": {m_wall:.2},\n    \
             \"setup_wall_s\": {m_setup:.2},\n    \
             \"cells_per_sec\": {rate:.1},\n    \"digest\": \"{m_digest:016x}\"\n  }}",
            rate = 1.0 / m_wall,
        );
        append_history(HISTORY_PATH, &json);
    }
}

/// The steering-policy sweep: static RSS hashing vs Flow Director /
/// aRFS dynamic re-targeting, each under fixed-count and adaptive
/// interrupt moderation, on the multi-queue SUT (one 4-queue NIC port
/// per four CPUs, 4 flows per CPU, Rx 4KB). Reports throughput, cost,
/// machine clears, and the steering counters (re-steers, table rejects,
/// out-of-order completions) that distinguish the two policies: Flow
/// Director chases the consumer and so completes some flows' frames on
/// a different CPU than the previous batch — the reordering signature.
/// Deterministic: the digest is independent of `REPRO_THREADS`.
fn steer(quick: bool, check: bool, filter: Option<&str>) {
    if check {
        check_rejects_filter("steer", filter);
    }
    let rss_static = SteerSpec {
        placement: FlowPlacement::RssHash,
        vectors: VectorLayout::SplitEven,
        dynamic: DynamicSteer::Off,
        pin_processes: false,
    };
    let adaptive = CoalesceConfig::AdaptiveTimeout {
        min_events: 1,
        max_events: 8,
        idle_gap_cycles: 8_000,
        timeout_cycles: 12_000,
    };
    let variants: [(&str, SteerSpec, Option<CoalesceConfig>); 4] = [
        ("RSS/fixed", rss_static, None),
        ("RSS/adaptive", rss_static, Some(adaptive)),
        ("FlowDir/fixed", SteerSpec::flow_director(), None),
        (
            "FlowDir/adaptive",
            SteerSpec::flow_director(),
            Some(adaptive),
        ),
    ];
    let cpu_grid: Vec<usize> = if quick { vec![4] } else { vec![4, 8, 16] };
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for &cpus in &cpu_grid {
        for variant in 0..variants.len() {
            jobs.push((cpus, variant));
        }
    }
    if let Some(spec) = filter {
        let parts: Vec<&str> = spec.split('/').collect();
        if parts.len() != 3 {
            usage_error(
                "filter",
                spec,
                "<policy>/<coalesce>/<cpus> for steer, e.g. flowdir/adaptive/8",
            );
        }
        // Variant names are "<policy>/<coalesce>" (e.g. "FlowDir/adaptive").
        let policy = format!("{}/{}", parts[0], parts[1]);
        let cpus_want: usize = parts[2]
            .parse()
            .unwrap_or_else(|_| usage_error("filter cpus", parts[2], "a CPU count, e.g. 4, 8, 16"));
        jobs.retain(|&(cpus, v)| cpus == cpus_want && variants[v].0.eq_ignore_ascii_case(&policy));
        if jobs.is_empty() {
            let cpus: Vec<String> = cpu_grid.iter().map(usize::to_string).collect();
            let policies: Vec<&str> = variants.iter().map(|v| v.0).collect();
            empty_filter_error(
                "steer",
                spec,
                &format!("policy {}; cpus {}", policies.join(", "), cpus.join(", ")),
            );
        }
    }
    let cells = jobs.len();
    let threads = pool_threads();
    eprintln!(
        "steering sweep: {cells} cells ({} CPU counts x {} policies, Rx 4KB, 4 flows/CPU) on {threads} worker(s)...",
        cpu_grid.len(),
        variants.len(),
    );
    let t0 = std::time::Instant::now();
    let results = run_pool(jobs.clone(), threads, move |(cpus, variant)| {
        let (_, spec, coalesce) = variants[variant];
        let mut config = ExperimentConfig::steer_sweep(Direction::Rx, cpus, 4 * cpus, spec);
        if let Some(c) = coalesce {
            config.nic.coalesce = c;
        }
        if !quick {
            config.workload.warmup_messages = 8;
            config.workload.measure_messages = 24;
        }
        let r = affinity_sim::run_experiment(&config).expect("valid steer config");
        (
            r.metrics.wall_cycles,
            r.metrics.throughput_mbps(),
            r.metrics.cost_ghz_per_gbps(),
            r.metrics.total.machine_clears as f64 / r.metrics.messages.max(1) as f64,
            r.steer,
            r.setup_wall_s,
        )
    });
    let wall = t0.elapsed().as_secs_f64();
    let setup: f64 = results.iter().map(|&(.., s)| s).sum();
    let digest = fnv_fold(results.iter().map(|&(cycles, ..)| cycles));

    println!("steering sweep (Rx, 4KB messages, 4 flows/CPU, 4-queue NIC per 4 CPUs)");
    println!(
        "{:>5} {:>17} | {:>9} {:>9} {:>11} {:>9} {:>8} {:>8}",
        "cpus", "policy", "BW (Mb/s)", "GHz/Gbps", "clears/msg", "resteers", "rejects", "ooo"
    );
    for (row, &(_, mbps, cost, clears, counters, _)) in results.iter().enumerate() {
        let (cpus, variant) = jobs[row];
        println!(
            "{cpus:>5} {:>17} | {mbps:>9.0} {cost:>9.2} {clears:>11.1} {:>9} {:>8} {:>8}",
            variants[variant].0,
            counters.resteers,
            counters.table_rejects,
            counters.ooo_completions,
        );
    }
    // A filtered subset may not contain the variants the comparative
    // summary needs, so it only renders for the full sweep.
    if filter.is_none() {
        let top_cpus = *cpu_grid.last().expect("non-empty cpu grid");
        let at = |name: &str| {
            jobs.iter()
                .zip(&results)
                .find(|((cpus, v), _)| *cpus == top_cpus && variants[*v].0 == name)
                .map(|(_, &(_, mbps, ..))| mbps)
                .expect("variant present")
        };
        println!(
            "\nat {top_cpus} cpus: FlowDir {flowdir:.0} Mb/s vs RSS {rss:.0} Mb/s ({gain:+.1}%)",
            flowdir = at("FlowDir/fixed"),
            rss = at("RSS/fixed"),
            gain = 100.0 * (at("FlowDir/fixed") / at("RSS/fixed") - 1.0),
        );
    }
    println!(
        "{cells} cells in {wall:.2} s ({rate:.1} cells/sec), digest {digest:016x}",
        rate = cells as f64 / wall,
    );

    if check {
        check_gate("steer", "steering sweep", wall, quick, threads);
    } else if quick {
        eprintln!("quick smoke run: not recorded in {HISTORY_PATH}");
    } else if filter.is_some() {
        eprintln!("filtered run: not recorded in {HISTORY_PATH}");
    } else {
        let json = format!(
            "  {{\n    \"pr\": {CURRENT_PR},\n    \
             \"benchmark\": \"steering sweep ({n_cpus} CPU counts x 4 policies, Rx 4KB)\",\n    \
             \"cells\": {cells},\n    \"threads\": {threads},\n    \
             \"current_wall_s\": {wall:.2},\n    \
             \"setup_wall_s\": {setup:.2},\n    \
             \"cells_per_sec\": {rate:.1},\n    \"digest\": \"{digest:016x}\"\n  }}",
            n_cpus = cpu_grid.len(),
            rate = cells as f64 / wall,
        );
        append_history(HISTORY_PATH, &json);
    }
}

/// The interrupt-vs-poll sweep: the interrupt-driven host stack under
/// three steering policies (every vector on CPU 0, static RSS hashing,
/// Flow Director) against the kernel-bypass poll-mode dataplane, all on
/// the same multi-queue geometry (one 4-queue NIC port per four CPUs,
/// 4 flows per CPU, Rx 4KB). Poll mode takes zero interrupts — no
/// vector dispatch, no IPIs, no interrupt-caused machine clears — and
/// the table shows that win next to its price: PMD cores spin at 100%
/// whether or not frames are arriving, the spin cycles are charged as
/// busy time, and so the GHz/Gbps column prices the burned cores
/// honestly (the spin% column shows how much of the busy time was
/// empty polling). Deterministic: the digest is independent of
/// `REPRO_THREADS`. With `--check` the wall time is gated against the
/// latest recorded `poll sweep` row instead of appending a new one.
fn poll(quick: bool, check: bool, filter: Option<&str>) {
    if check {
        check_rejects_filter("poll", filter);
    }
    let irq_cpu0 = SteerSpec {
        placement: FlowPlacement::RoundRobin,
        vectors: VectorLayout::AllCpu0,
        dynamic: DynamicSteer::Off,
        pin_processes: false,
    };
    let irq_rss = SteerSpec {
        placement: FlowPlacement::RssHash,
        vectors: VectorLayout::SplitEven,
        dynamic: DynamicSteer::Off,
        pin_processes: false,
    };
    // `None` marks the poll-mode cell (no interrupt steering to pick).
    let variants: [(&str, Option<SteerSpec>); 4] = [
        ("Irq/cpu0", Some(irq_cpu0)),
        ("Irq/RSS", Some(irq_rss)),
        ("Irq/FlowDir", Some(SteerSpec::flow_director())),
        ("Poll/pmd", None),
    ];
    let cpu_grid: Vec<usize> = if quick { vec![4] } else { vec![4, 8, 16] };
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for &cpus in &cpu_grid {
        for variant in 0..variants.len() {
            jobs.push((cpus, variant));
        }
    }
    if let Some(spec) = filter {
        let parts: Vec<&str> = spec.split('/').collect();
        if parts.len() != 3 {
            usage_error(
                "filter",
                spec,
                "<plane>/<policy>/<cpus> for poll, e.g. poll/pmd/8 or irq/rss/4",
            );
        }
        // Variant names are "<plane>/<policy>" (e.g. "Poll/pmd").
        let plane = format!("{}/{}", parts[0], parts[1]);
        let cpus_want: usize = parts[2]
            .parse()
            .unwrap_or_else(|_| usage_error("filter cpus", parts[2], "a CPU count, e.g. 4, 8, 16"));
        jobs.retain(|&(cpus, v)| cpus == cpus_want && variants[v].0.eq_ignore_ascii_case(&plane));
        if jobs.is_empty() {
            let cpus: Vec<String> = cpu_grid.iter().map(usize::to_string).collect();
            let planes: Vec<&str> = variants.iter().map(|v| v.0).collect();
            empty_filter_error(
                "poll",
                spec,
                &format!("plane {}; cpus {}", planes.join(", "), cpus.join(", ")),
            );
        }
    }
    let cells = jobs.len();
    let threads = pool_threads();
    eprintln!(
        "interrupt-vs-poll sweep: {cells} cells ({} CPU counts x {} dataplanes, Rx 4KB, 4 flows/CPU) on {threads} worker(s)...",
        cpu_grid.len(),
        variants.len(),
    );
    let t0 = std::time::Instant::now();
    let results = run_pool(jobs.clone(), threads, move |(cpus, variant)| {
        let (_, spec) = variants[variant];
        let mut config = match spec {
            Some(spec) => ExperimentConfig::steer_sweep(Direction::Rx, cpus, 4 * cpus, spec),
            None => ExperimentConfig::poll_sweep(Direction::Rx, cpus, 4 * cpus),
        };
        if !quick {
            config.workload.warmup_messages = 8;
            config.workload.measure_messages = 24;
        }
        let r = affinity_sim::run_experiment(&config).expect("valid poll config");
        (
            r.metrics.wall_cycles,
            r.metrics.throughput_mbps(),
            r.metrics.cost_ghz_per_gbps(),
            r.metrics.interrupts,
            r.poll,
            r.setup_wall_s,
        )
    });
    let wall = t0.elapsed().as_secs_f64();
    let setup: f64 = results.iter().map(|&(.., s)| s).sum();
    let digest = fnv_fold(results.iter().map(|&(cycles, ..)| cycles));

    println!("interrupt-vs-poll sweep (Rx, 4KB messages, 4 flows/CPU, 4-queue NIC per 4 CPUs)");
    println!(
        "{:>5} {:>12} | {:>9} {:>9} {:>6} {:>6} {:>8} {:>12}",
        "cpus", "dataplane", "BW (Mb/s)", "GHz/Gbps", "irqs", "spin%", "polls", "empty polls"
    );
    for (row, &(_, mbps, cost, irqs, counters, _)) in results.iter().enumerate() {
        let (cpus, variant) = jobs[row];
        println!(
            "{cpus:>5} {:>12} | {mbps:>9.0} {cost:>9.2} {irqs:>6} {:>6.1} {:>8} {:>12}",
            variants[variant].0,
            100.0 * counters.spin_fraction(),
            counters.polls,
            counters.empty_polls,
        );
    }
    // A filtered subset may not contain the variants the comparative
    // summary needs, so it only renders for the full sweep.
    if filter.is_none() {
        let top_cpus = *cpu_grid.last().expect("non-empty cpu grid");
        let at = |name: &str| {
            jobs.iter()
                .zip(&results)
                .find(|((cpus, v), _)| *cpus == top_cpus && variants[*v].0 == name)
                .map(|(_, &(_, mbps, cost, ..))| (mbps, cost))
                .expect("variant present")
        };
        let (poll_bw, poll_cost) = at("Poll/pmd");
        let (rss_bw, rss_cost) = at("Irq/RSS");
        println!(
            "\nat {top_cpus} cpus: Poll {poll_bw:.0} Mb/s vs Irq/RSS {rss_bw:.0} Mb/s \
             ({gain:+.1}%), at {poll_cost:.2} vs {rss_cost:.2} GHz/Gbps — poll's spin \
             cycles are priced as busy cores",
            gain = 100.0 * (poll_bw / rss_bw - 1.0),
        );
    }
    println!(
        "{cells} cells in {wall:.2} s ({rate:.1} cells/sec), digest {digest:016x}",
        rate = cells as f64 / wall,
    );

    if check {
        check_gate("poll", "poll sweep", wall, quick, threads);
    } else if quick {
        eprintln!("quick smoke run: not recorded in {HISTORY_PATH}");
    } else if filter.is_some() {
        eprintln!("filtered run: not recorded in {HISTORY_PATH}");
    } else {
        let json = format!(
            "  {{\n    \"pr\": {CURRENT_PR},\n    \
             \"benchmark\": \"poll sweep ({n_cpus} CPU counts x 4 dataplanes, Rx 4KB)\",\n    \
             \"cells\": {cells},\n    \"threads\": {threads},\n    \
             \"current_wall_s\": {wall:.2},\n    \
             \"setup_wall_s\": {setup:.2},\n    \
             \"cells_per_sec\": {rate:.1},\n    \"digest\": \"{digest:016x}\"\n  }}",
            n_cpus = cpu_grid.len(),
            rate = cells as f64 / wall,
        );
        append_history(HISTORY_PATH, &json);
    }
}

/// One churn cell's harvest: simulated wall cycles, completed
/// connections per wall second (the churn headline), processing cost,
/// the lifecycle counters, and the host wall spent constructing the
/// machine (setup, never digested).
type ChurnCell = (u64, f64, f64, affinity_sim::LifecycleCounters, f64);

/// Runs one churn cell, enforces the drain invariants every churn run
/// must satisfy (no live flows, no leaked steering-table entries at
/// exit), and reduces it to a [`ChurnCell`].
fn run_churn_cell(config: &ExperimentConfig, label: &str) -> ChurnCell {
    let r = affinity_sim::run_experiment(config).expect("valid churn config");
    let lc = r.lifecycle;
    assert!(lc.accepts > 0, "{label}: no accepts in window ({lc:?})");
    assert!(lc.completes > 0, "{label}: no completes in window ({lc:?})");
    assert_eq!(lc.final_live_flows, 0, "{label}: flows leaked ({lc:?})");
    assert_eq!(
        lc.final_table_entries, 0,
        "{label}: steering table leaked ({lc:?})"
    );
    let m = &r.metrics;
    let seconds = m.wall_cycles as f64 / m.freq.hertz() as f64;
    let kconn_s = lc.completes as f64 / seconds / 1e3;
    (
        m.wall_cycles,
        kconn_s,
        m.cost_ghz_per_gbps(),
        lc,
        r.setup_wall_s,
    )
}

/// Folds churn cells into the sweep digest: wall cycles *and* the
/// lifecycle counters, so a refactor that keeps timing but changes
/// accept/drop accounting still moves the digest. Setup wall is host
/// time and never folded.
fn churn_digest(cells: &[ChurnCell]) -> u64 {
    fnv_fold(
        cells.iter().flat_map(|&(cycles, _, _, lc, _)| {
            [cycles, lc.accepts, lc.completes, lc.backlog_drops]
        }),
    )
}

/// The connection-churn sweep: short-lived SYN-to-FIN request/response
/// connections (open-loop arrivals, accept, one request, one mostly-
/// mouse response, FIN teardown) on both dataplanes under static RSS
/// hashing and Flow Director, across CPU counts and concurrent-flow
/// targets. Where every other sweep measures bulk bandwidth over
/// immortal flows, this one measures the lifecycle path itself —
/// completed connections per second, flow completion time percentiles,
/// SYN backlog drops — and every cell asserts the drain invariants: no
/// live flow slots and no leaked Flow Director table entries at exit.
/// Deterministic: the digest is independent of `REPRO_THREADS`. A
/// standalone 16-CPU x 100k-flow mice-only cell runs on top of the
/// grid (its own digest and history row), exercising arena recycling
/// at the flow population the grid can't reach.
fn churn(quick: bool, check: bool, filter: Option<&str>) {
    if check {
        check_rejects_filter("churn", filter);
    }
    // Server processes are pinned to their flows' even-spread homes, so
    // static RSS pays a persistent vector-home-vs-consumer mismatch on
    // hash-unlucky queues while Flow Director re-targets the vector to
    // the consumer — without the pin, the server task always runs where
    // the softirq delivered and the two policies collapse into one.
    let rss = SteerSpec {
        placement: FlowPlacement::RssHash,
        vectors: VectorLayout::SplitEven,
        dynamic: DynamicSteer::Off,
        pin_processes: true,
    };
    let flowdir = SteerSpec {
        pin_processes: true,
        ..SteerSpec::flow_director()
    };
    let variants: [(&str, DataplaneMode, SteerSpec); 4] = [
        ("Irq/RSS", DataplaneMode::Interrupt, rss),
        ("Irq/FlowDir", DataplaneMode::Interrupt, flowdir),
        ("Poll/RSS", DataplaneMode::Poll, rss),
        ("Poll/FlowDir", DataplaneMode::Poll, flowdir),
    ];
    // Quick slot counts sit well below the quick-clamped measurement
    // window (24 completions), so slots recycle *inside* the window and
    // the nonzero-accepts invariant stays checkable in CI smoke runs.
    let (cpu_grid, flow_grid): (Vec<usize>, Vec<usize>) = if quick {
        (vec![4], vec![12])
    } else {
        (vec![4, 8, 16], vec![1_000, 10_000])
    };
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for &cpus in &cpu_grid {
        for &flows in &flow_grid {
            for variant in 0..variants.len() {
                jobs.push((cpus, flows, variant));
            }
        }
    }
    if let Some(spec) = filter {
        let parts: Vec<&str> = spec.split('/').collect();
        if parts.len() != 4 {
            usage_error(
                "filter",
                spec,
                "<plane>/<policy>/<cpus>/<flows> for churn, e.g. irq/flowdir/8/1000",
            );
        }
        // Variant names are "<plane>/<policy>" (e.g. "Irq/FlowDir").
        let plane = format!("{}/{}", parts[0], parts[1]);
        let cpus_want: usize = parts[2]
            .parse()
            .unwrap_or_else(|_| usage_error("filter cpus", parts[2], "a CPU count, e.g. 4, 8, 16"));
        let flows_want: usize = parts[3].parse().unwrap_or_else(|_| {
            usage_error("filter flows", parts[3], "a flow target, e.g. 1000, 10000")
        });
        jobs.retain(|&(cpus, flows, v)| {
            cpus == cpus_want && flows == flows_want && variants[v].0.eq_ignore_ascii_case(&plane)
        });
        if jobs.is_empty() {
            let cpus: Vec<String> = cpu_grid.iter().map(usize::to_string).collect();
            let flows: Vec<String> = flow_grid.iter().map(usize::to_string).collect();
            let planes: Vec<&str> = variants.iter().map(|v| v.0).collect();
            empty_filter_error(
                "churn",
                spec,
                &format!(
                    "plane/policy {}; cpus {}; flows {}",
                    planes.join(", "),
                    cpus.join(", "),
                    flows.join(", ")
                ),
            );
        }
    }
    let cells = jobs.len();
    let threads = pool_threads();
    eprintln!(
        "churn sweep: {cells} cells ({} CPU counts x {} flow targets x {} planes, Tx RPC) on {threads} worker(s)...",
        cpu_grid.len(),
        flow_grid.len(),
        variants.len(),
    );
    let t0 = std::time::Instant::now();
    let results = run_pool(jobs.clone(), threads, move |(cpus, flows, variant)| {
        let (name, plane, spec) = variants[variant];
        let mut config = ExperimentConfig::churn(cpus, flows, spec, plane);
        if quick {
            config = config.quick();
        }
        run_churn_cell(&config, &format!("{name} {cpus}cpu {flows}flows"))
    });
    let wall = t0.elapsed().as_secs_f64();
    let setup: f64 = results.iter().map(|&(.., s)| s).sum();
    let digest = churn_digest(&results);

    println!("connection-churn sweep (Tx RPC, SYN-to-FIN lifecycle, mice + 1-in-10 elephants)");
    println!(
        "{:>5} {:>6} {:>12} | {:>8} {:>9} {:>8} {:>7} {:>9} {:>9}",
        "cpus", "flows", "plane", "kconn/s", "GHz/Gbps", "accepts", "drops", "fct p50", "fct p99"
    );
    for (row, &(_, kconn_s, cost, lc, _)) in results.iter().enumerate() {
        let (cpus, flows, variant) = jobs[row];
        println!(
            "{cpus:>5} {flows:>6} {:>12} | {kconn_s:>8.1} {cost:>9.2} {:>8} {:>7} {:>9} {:>9}",
            variants[variant].0, lc.accepts, lc.backlog_drops, lc.fct_p50_cycles, lc.fct_p99_cycles,
        );
    }
    // A filtered subset may not contain the variants the comparative
    // summary needs, so it only renders for the full sweep.
    if filter.is_none() {
        let top_cpus = *cpu_grid.last().expect("non-empty cpu grid");
        let top_flows = *flow_grid.last().expect("non-empty flow grid");
        let at = |name: &str| {
            jobs.iter()
                .zip(&results)
                .find(|((cpus, flows, v), _)| {
                    *cpus == top_cpus && *flows == top_flows && variants[*v].0 == name
                })
                .map(|(_, &(_, kconn_s, ..))| kconn_s)
                .expect("variant present")
        };
        println!(
            "\nat {top_cpus} cpus, {top_flows} flows: FlowDir {flowdir:.1} kconn/s vs RSS \
             {rss:.1} kconn/s ({gain:+.1}%) on the interrupt plane",
            flowdir = at("Irq/FlowDir"),
            rss = at("Irq/RSS"),
            gain = 100.0 * (at("Irq/FlowDir") / at("Irq/RSS") - 1.0),
        );
    }
    println!(
        "{cells} cells in {wall:.2} s ({rate:.1} cells/sec), digest {digest:016x}",
        rate = cells as f64 / wall,
    );
    if filter.is_some() {
        eprintln!("filtered run: not recorded in {HISTORY_PATH}; large cell skipped");
        return;
    }

    if check {
        check_gate("churn", "churn sweep", wall, quick, threads);
    } else if quick {
        eprintln!("quick smoke run: not recorded in {HISTORY_PATH}");
    } else {
        let json = format!(
            "  {{\n    \"pr\": {CURRENT_PR},\n    \
             \"benchmark\": \"churn sweep ({n_cpus} CPU counts x {n_flows} flow targets x 4 planes, Tx RPC)\",\n    \
             \"cells\": {cells},\n    \"threads\": {threads},\n    \
             \"current_wall_s\": {wall:.2},\n    \
             \"setup_wall_s\": {setup:.2},\n    \
             \"cells_per_sec\": {rate:.1},\n    \"digest\": \"{digest:016x}\"\n  }}",
            n_cpus = cpu_grid.len(),
            n_flows = flow_grid.len(),
            rate = cells as f64 / wall,
        );
        append_history(HISTORY_PATH, &json);
    }

    // The standalone large cell: 16 CPUs x 100k concurrent-flow slots,
    // interrupt plane under Flow Director, mice only — per-connection
    // cost at a flow population 10x the grid's ceiling, where arena
    // recycling and table install/teardown either hold their rate or
    // visibly don't. Quick mode shrinks the slot count (machine
    // construction, not the lifecycle path, dominates a 100k-slot
    // build) but keeps the same shape.
    // The quick variant keeps the slot count under the quick-clamped
    // window for the same reason as the quick grid above.
    let (large_cpus, large_flows) = if quick { (8, 16) } else { (16, 100_000) };
    eprintln!("churn large cell: {large_cpus} cpus x {large_flows} flow slots (mice only)...");
    let t1 = std::time::Instant::now();
    let mut config = ExperimentConfig::churn(
        large_cpus,
        large_flows,
        SteerSpec {
            pin_processes: true,
            ..SteerSpec::flow_director()
        },
        DataplaneMode::Interrupt,
    );
    config.server = config.server.map(ServerWorkload::mice_only);
    if quick {
        config = config.quick();
    }
    let cell = run_churn_cell(&config, "churn large cell");
    let large_wall = t1.elapsed().as_secs_f64();
    let large_digest = churn_digest(&[cell]);
    let (_, kconn_s, cost, lc, large_setup) = cell;
    println!(
        "large cell ({large_cpus} cpus x {large_flows} flows, flowdir, mice): {kconn_s:.1} \
         kconn/s, {cost:.2} GHz/Gbps, {accepts} accepts, {drops} drops, fct p50/p99 \
         {p50}/{p99} cycles in {large_wall:.2} s (setup {large_setup:.2} s), digest \
         {large_digest:016x}",
        accepts = lc.accepts,
        drops = lc.backlog_drops,
        p50 = lc.fct_p50_cycles,
        p99 = lc.fct_p99_cycles,
    );
    if check {
        check_gate(
            "churn large",
            "churn large cell",
            large_wall,
            quick,
            threads,
        );
    } else if quick {
        eprintln!("quick smoke run: not recorded in {HISTORY_PATH}");
    } else {
        let json = format!(
            "  {{\n    \"pr\": {CURRENT_PR},\n    \
             \"benchmark\": \"churn large cell ({large_cpus} cpus x {large_flows} flows, flowdir, mice)\",\n    \
             \"cells\": 1,\n    \"threads\": {threads},\n    \
             \"current_wall_s\": {large_wall:.2},\n    \
             \"setup_wall_s\": {large_setup:.2},\n    \
             \"cells_per_sec\": {rate:.1},\n    \"digest\": \"{large_digest:016x}\"\n  }}",
            rate = 1.0 / large_wall,
        );
        append_history(HISTORY_PATH, &json);
    }

    // The million-flow cell: a 1M-slot arena under Flow Director on the
    // interrupt plane, mice only. The slot population is the subject —
    // slab provisioning, per-flow region layout, and the steering table
    // at 1M entries — so the connection budget is overridden to a
    // modest absolute count instead of `ServerWorkload::churn`'s
    // half-population scaling (1.5M connections would take hours and
    // add nothing). Every arrival lands in an empty arena, completes,
    // and tears down; the drain invariants in `run_churn_cell` prove
    // the 1M-slot arena and table end empty. Quick mode keeps the full
    // 1M slots — construction is the point — on CI-sized CPU counts.
    let (m_cpus, m_flows) = if quick {
        (4, 1_000_000)
    } else {
        (16, 1_000_000)
    };
    eprintln!("churn 1M cell: {m_cpus} cpus x {m_flows} flow slots (mice only)...");
    let t2 = std::time::Instant::now();
    let mut config = ExperimentConfig::churn(
        m_cpus,
        m_flows,
        SteerSpec {
            pin_processes: true,
            ..SteerSpec::flow_director()
        },
        DataplaneMode::Interrupt,
    );
    config.server = config.server.map(|s| {
        let mut s = s.mice_only();
        s.warmup_conns = if quick { 64 } else { 4_000 };
        s.measure_conns = if quick { 256 } else { 12_000 };
        // With 1M slots every arrival is open-loop (nothing queues behind
        // a full arena), so the arrival process must outlast the warmup
        // completions or the measurement window sees zero accepts. The
        // default 2k-cycle gap packs the whole wave into the first few
        // tens of M cycles while the overbooked pile-up pushes mice FCTs
        // past 300M cycles — every accept lands before the window opens.
        // A 100k gap spreads arrivals over `conns * 100k` cycles, far
        // past the last measured completion in both modes.
        s.arrival_gap_cycles = 100_000;
        s
    });
    let cell = run_churn_cell(&config, "churn 1M cell");
    let m_wall = t2.elapsed().as_secs_f64();
    let m_digest = churn_digest(&[cell]);
    let (_, kconn_s, cost, lc, m_setup) = cell;
    assert_setup_bound("churn 1M cell", m_setup, m_flows);
    println!(
        "1M cell ({m_cpus} cpus x {m_flows} flow slots, flowdir, mice): {kconn_s:.1} \
         kconn/s, {cost:.2} GHz/Gbps, {accepts} accepts, {drops} drops, fct p50/p99 \
         {p50}/{p99} cycles in {m_wall:.2} s (setup {m_setup:.2} s), digest {m_digest:016x}",
        accepts = lc.accepts,
        drops = lc.backlog_drops,
        p50 = lc.fct_p50_cycles,
        p99 = lc.fct_p99_cycles,
    );
    if check {
        check_gate("churn 1M", "churn 1M cell", m_wall, quick, threads);
    } else if quick {
        eprintln!("quick smoke run: not recorded in {HISTORY_PATH}");
    } else {
        let json = format!(
            "  {{\n    \"pr\": {CURRENT_PR},\n    \
             \"benchmark\": \"churn 1M cell ({m_cpus} cpus x {m_flows} flow slots, flowdir, mice)\",\n    \
             \"cells\": 1,\n    \"threads\": {threads},\n    \
             \"current_wall_s\": {m_wall:.2},\n    \
             \"setup_wall_s\": {m_setup:.2},\n    \
             \"cells_per_sec\": {rate:.1},\n    \"digest\": \"{m_digest:016x}\"\n  }}",
            rate = 1.0 / m_wall,
        );
        append_history(HISTORY_PATH, &json);
    }
}

/// `repro --list`: one block per sweep — the filter grammar with its
/// valid tokens (the same listing the exit-2 paths print) and the
/// newest recorded history row, digest included.
fn list_sweeps() {
    const SWEEPS: [(&str, &str, &str); 9] = [
        (
            "perf",
            "full figure matrix",
            "--filter <mode>/<size>/<dir>  (mode no|irq|proc|full|rss; size 64..65536; dir tx|rx)",
        ),
        (
            "scale",
            "scale sweep",
            "--filter <mode>/<cpus>/<flows>  (mode no|irq|full|rss; cpus 2,4,8,16; flows 8,64,256)",
        ),
        (
            "scale (large cell)",
            "scale large cell",
            "no filter grammar — runs after every unfiltered scale sweep",
        ),
        (
            "scale (1M cell)",
            "scale 1M cell",
            "no filter grammar — runs after every unfiltered scale sweep",
        ),
        (
            "steer",
            "steering sweep",
            "--filter <policy>/<coalesce>/<cpus>  (policy RSS|FlowDir; coalesce fixed|adaptive; cpus 4,8,16)",
        ),
        (
            "poll",
            "poll sweep",
            "--filter <plane>/<policy>/<cpus>  (plane/policy Irq/cpu0|Irq/RSS|Irq/FlowDir|Poll/pmd; cpus 4,8,16)",
        ),
        (
            "churn",
            "churn sweep",
            "--filter <plane>/<policy>/<cpus>/<flows>  (plane Irq|Poll; policy RSS|FlowDir; cpus 4,8,16; flows 1000,10000)",
        ),
        ("churn (large cell)", "churn large cell", "no filter grammar — runs after every unfiltered churn sweep"),
        ("churn (1M cell)", "churn 1M cell", "no filter grammar — runs after every unfiltered churn sweep"),
    ];
    println!("recorded sweeps ({HISTORY_PATH}):");
    for (name, benchmark_prefix, tokens) in SWEEPS {
        println!("\n  {name}");
        println!("    {tokens}");
        match latest_history_entry(HISTORY_PATH, benchmark_prefix, None) {
            Some(row) => {
                let digest = row
                    .digest
                    .map_or_else(|| "(none recorded)".to_string(), |d| format!("{d:016x}"));
                // PR 1-9 rows predate the setup/run split and carry no
                // setup_wall_s; render only what the row records.
                let setup = row
                    .setup_wall
                    .map_or_else(String::new, |s| format!(" (setup {s:.2} s)"));
                println!(
                    "    latest: PR {}, {:.2} s{setup} at {} worker(s), digest {digest}",
                    row.pr, row.wall_s, row.threads
                );
            }
            None => println!("    latest: no recorded rows"),
        }
    }
}

fn main() {
    let args = parse_args();
    let Args {
        artifacts,
        sizes,
        filter,
        quick,
        check,
        list,
    } = args;
    let wants = |name: &str| artifacts.iter().any(|a| a == name);

    if list {
        list_sweeps();
        return;
    }
    if wants("perf") {
        perf(quick, check, filter.as_deref());
        return;
    }
    if wants("scale") {
        scale(quick, check, filter.as_deref());
        return;
    }
    if wants("steer") {
        steer(quick, check, filter.as_deref());
        return;
    }
    if wants("poll") {
        poll(quick, check, filter.as_deref());
        return;
    }
    if wants("churn") {
        churn(quick, check, filter.as_deref());
        return;
    }
    if check {
        eprintln!(
            "repro: --check only applies to the sweep subcommands (perf, scale, steer, poll, churn)"
        );
        std::process::exit(2);
    }
    if let Some(spec) = &filter {
        let (mode, size, direction) = parse_filter(spec);
        run_filtered(mode, size, direction, quick);
        return;
    }

    let need_sweep = wants("fig3") || wants("fig4");
    let sweeps = if need_sweep {
        eprintln!(
            "running Figure 3/4 sweeps ({} sizes x 4 modes x 2 dirs)...",
            sizes.len()
        );
        Some((sweep(Direction::Tx, &sizes), sweep(Direction::Rx, &sizes)))
    } else {
        None
    };

    let need_extremes = ["table1", "table2", "fig5", "table3", "table4", "table5"]
        .iter()
        .any(|a| wants(a));
    let extremes = if need_extremes {
        eprintln!("running the four extreme points (no vs full affinity)...");
        Some(extreme_runs())
    } else {
        None
    };

    if let Some((tx, rx)) = &sweeps {
        if wants("fig3") {
            println!("{}", report::render_figure3("TX", tx));
            println!("{}", report::render_figure3("RX", rx));
        }
        if wants("fig4") {
            println!("{}", report::render_figure4("TX", tx));
            println!("{}", report::render_figure4("RX", rx));
        }
    }

    if let Some(extremes) = &extremes {
        if wants("table1") {
            for (label, no, full) in extremes {
                println!(
                    "{}",
                    report::render_table1_panel(label, &no.metrics, &full.metrics)
                );
            }
        }
        if wants("table2") {
            let (label, no, full) = &extremes[0];
            println!("(from {label})");
            println!("{}", report::render_table2(&no.metrics, &full.metrics));
        }
        if wants("fig5") {
            let costs = EventCosts::paper();
            for (label, no, full) in extremes {
                println!(
                    "{}",
                    report::render_figure5_panel(
                        &format!("{label} no affinity"),
                        &no.metrics,
                        &costs
                    )
                );
                println!(
                    "{}",
                    report::render_figure5_panel(
                        &format!("{label} full affinity"),
                        &full.metrics,
                        &costs
                    )
                );
            }
        }
        if wants("table3") {
            for (label, no, full) in extremes {
                println!(
                    "{}",
                    report::render_table3_panel(label, &no.metrics, &full.metrics)
                );
            }
        }
        if wants("table4") {
            for (label, no, full) in extremes {
                if label.contains("128B") {
                    println!(
                        "{}",
                        report::render_table4(&format!("{label} no affinity"), no, 10)
                    );
                    println!(
                        "{}",
                        report::render_table4(&format!("{label} full affinity"), full, 10)
                    );
                }
            }
        }
        if wants("table5") {
            let entries: Vec<(String, RunMetrics, RunMetrics)> = extremes
                .iter()
                .map(|(l, no, full)| (l.clone(), no.metrics.clone(), full.metrics.clone()))
                .collect();
            println!("{}", report::render_table5(&entries));
        }
    }

    if wants("fourp") {
        println!("4P extension (Section 5 note): 4 CPUs, 8 NICs, 64KB TX");
        println!(
            "{:>10} | {:>9} | {:>6} | {:>20}",
            "mode", "BW (Mb/s)", "cost", "per-CPU utilization"
        );
        for mode in AffinityMode::ALL {
            let mut config = ExperimentConfig::four_processor(Direction::Tx, 65536, mode);
            config.workload.measure_messages = 24;
            config.workload.warmup_messages = 8;
            let r = affinity_sim::run_experiment(&config).expect("valid 4P config");
            let utils: Vec<String> = (0..4)
                .map(|c| format!("{:.2}", r.metrics.cpu_utilization(c)))
                .collect();
            println!(
                "{:>10} | {:>9.0} | {:>6.2} | {}",
                mode.label(),
                r.metrics.throughput_mbps(),
                r.metrics.cost_ghz_per_gbps(),
                utils.join(" ")
            );
        }
    }
}
