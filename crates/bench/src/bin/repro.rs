//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro                # everything
//! repro fig3           # one artifact: fig3 fig4 fig5 table1..table5 fourp
//! repro --sizes 128,65536 fig3   # restrict the size sweep
//! repro perf           # time the benchmark matrix, write BENCH_substrate.json
//! ```
//!
//! The sweep cells run on a deterministic job pool; `REPRO_THREADS`
//! overrides the worker count (results are identical at any setting).

use affinity_sim::{
    report, AffinityMode, Direction, ExperimentConfig, RunMetrics, RunResult, PAPER_SIZES,
};
use bench::{figure_row, pool_threads, run_cell, run_pool, EXTREME_POINTS};
use sim_cpu::EventCosts;

fn parse_args() -> (Vec<String>, Vec<u64>) {
    let mut artifacts = Vec::new();
    let mut sizes: Vec<u64> = PAPER_SIZES.to_vec();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--sizes" {
            let list = args.next().unwrap_or_default();
            sizes = list
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect();
        } else {
            artifacts.push(arg);
        }
    }
    if artifacts.is_empty() {
        artifacts = [
            "fig3", "fig4", "table1", "table2", "fig5", "table3", "table4", "table5", "fourp",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    (artifacts, sizes)
}

fn sweep(direction: Direction, sizes: &[u64]) -> Vec<(u64, Vec<(AffinityMode, RunMetrics)>)> {
    sizes
        .iter()
        .map(|&size| {
            eprintln!("  sweep {direction} {size}B ...");
            (size, figure_row(direction, size))
        })
        .collect()
}

/// The four extreme points under no and full affinity (single seed; used
/// by Tables 1/3/4/5 and Figure 5).
fn extreme_runs() -> Vec<(String, RunResult, RunResult)> {
    EXTREME_POINTS
        .iter()
        .map(|&(dir, size)| {
            let label = format!(
                "{} {}",
                dir.label(),
                if size == 65536 { "64KB" } else { "128B" }
            );
            eprintln!("  extreme point {label} ...");
            let no = run_cell(dir, size, AffinityMode::None, 0x5EED);
            let full = run_cell(dir, size, AffinityMode::Full, 0x5EED);
            (label, no, full)
        })
        .collect()
}

/// Wall seconds of the pre-optimization harness running the same 112
/// benchmark cells on this container (median of interleaved runs of the
/// seed-revision binary, single core). Override with `REPRO_BASELINE_S`
/// when benchmarking on different hardware.
const PRE_PR_BASELINE_S: f64 = 13.5;

/// Times the benchmark matrix — both directions, every paper size, all
/// four modes, two seeds (112 cells, the same matrix the pre-PR harness
/// ran for `fig3 fig4`) — and writes `BENCH_substrate.json`.
fn perf() {
    const SEEDS: [u64; 2] = [0x5EED, 42];
    let mut jobs: Vec<(Direction, u64, AffinityMode, u64)> = Vec::new();
    for dir in [Direction::Tx, Direction::Rx] {
        for &size in &PAPER_SIZES {
            for mode in AffinityMode::ALL {
                for seed in SEEDS {
                    jobs.push((dir, size, mode, seed));
                }
            }
        }
    }
    let cells = jobs.len();
    let threads = pool_threads();
    eprintln!("timing {cells} cells on {threads} worker(s)...");
    let t0 = std::time::Instant::now();
    let results = run_pool(jobs, threads, |(dir, size, mode, seed)| {
        run_cell(dir, size, mode, seed).metrics.wall_cycles
    });
    let wall = t0.elapsed().as_secs_f64();
    // Fold the results so the work can't be optimized away and the run
    // is checkable: identical inputs must give an identical digest.
    let digest = results.iter().fold(0xcbf29ce484222325u64, |h, &c| {
        (h ^ c).wrapping_mul(0x100000001b3)
    });
    let baseline = std::env::var("REPRO_BASELINE_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(PRE_PR_BASELINE_S);
    let json = format!(
        "{{\n  \"benchmark\": \"full figure matrix (2 dirs x {n_sizes} sizes x 4 modes x 2 seeds)\",\n  \
         \"cells\": {cells},\n  \"threads\": {threads},\n  \
         \"baseline_wall_s\": {baseline:.2},\n  \"current_wall_s\": {wall:.2},\n  \
         \"speedup\": {speedup:.2},\n  \"cells_per_sec\": {rate:.1},\n  \"digest\": \"{digest:016x}\"\n}}\n",
        n_sizes = PAPER_SIZES.len(),
        speedup = baseline / wall,
        rate = cells as f64 / wall,
    );
    std::fs::write("BENCH_substrate.json", &json).expect("write BENCH_substrate.json");
    print!("{json}");
}

fn main() {
    let (artifacts, sizes) = parse_args();
    let wants = |name: &str| artifacts.iter().any(|a| a == name);

    if wants("perf") {
        perf();
        return;
    }

    let need_sweep = wants("fig3") || wants("fig4");
    let sweeps = if need_sweep {
        eprintln!(
            "running Figure 3/4 sweeps ({} sizes x 4 modes x 2 dirs)...",
            sizes.len()
        );
        Some((sweep(Direction::Tx, &sizes), sweep(Direction::Rx, &sizes)))
    } else {
        None
    };

    let need_extremes = ["table1", "table2", "fig5", "table3", "table4", "table5"]
        .iter()
        .any(|a| wants(a));
    let extremes = if need_extremes {
        eprintln!("running the four extreme points (no vs full affinity)...");
        Some(extreme_runs())
    } else {
        None
    };

    if let Some((tx, rx)) = &sweeps {
        if wants("fig3") {
            println!("{}", report::render_figure3("TX", tx));
            println!("{}", report::render_figure3("RX", rx));
        }
        if wants("fig4") {
            println!("{}", report::render_figure4("TX", tx));
            println!("{}", report::render_figure4("RX", rx));
        }
    }

    if let Some(extremes) = &extremes {
        if wants("table1") {
            for (label, no, full) in extremes {
                println!(
                    "{}",
                    report::render_table1_panel(label, &no.metrics, &full.metrics)
                );
            }
        }
        if wants("table2") {
            let (label, no, full) = &extremes[0];
            println!("(from {label})");
            println!("{}", report::render_table2(&no.metrics, &full.metrics));
        }
        if wants("fig5") {
            let costs = EventCosts::paper();
            for (label, no, full) in extremes {
                println!(
                    "{}",
                    report::render_figure5_panel(
                        &format!("{label} no affinity"),
                        &no.metrics,
                        &costs
                    )
                );
                println!(
                    "{}",
                    report::render_figure5_panel(
                        &format!("{label} full affinity"),
                        &full.metrics,
                        &costs
                    )
                );
            }
        }
        if wants("table3") {
            for (label, no, full) in extremes {
                println!(
                    "{}",
                    report::render_table3_panel(label, &no.metrics, &full.metrics)
                );
            }
        }
        if wants("table4") {
            for (label, no, full) in extremes {
                if label.contains("128B") {
                    println!(
                        "{}",
                        report::render_table4(&format!("{label} no affinity"), no, 10)
                    );
                    println!(
                        "{}",
                        report::render_table4(&format!("{label} full affinity"), full, 10)
                    );
                }
            }
        }
        if wants("table5") {
            let entries: Vec<(String, RunMetrics, RunMetrics)> = extremes
                .iter()
                .map(|(l, no, full)| (l.clone(), no.metrics.clone(), full.metrics.clone()))
                .collect();
            println!("{}", report::render_table5(&entries));
        }
    }

    if wants("fourp") {
        println!("4P extension (Section 5 note): 4 CPUs, 8 NICs, 64KB TX");
        println!(
            "{:>10} | {:>9} | {:>6} | {:>20}",
            "mode", "BW (Mb/s)", "cost", "per-CPU utilization"
        );
        for mode in AffinityMode::ALL {
            let mut config = ExperimentConfig::four_processor(Direction::Tx, 65536, mode);
            config.workload.measure_messages = 24;
            config.workload.warmup_messages = 8;
            let r = affinity_sim::run_experiment(&config).expect("valid 4P config");
            let utils: Vec<String> = (0..4)
                .map(|c| format!("{:.2}", r.metrics.cpu_utilization(c)))
                .collect();
            println!(
                "{:>10} | {:>9.0} | {:>6.2} | {}",
                mode.label(),
                r.metrics.throughput_mbps(),
                r.metrics.cost_ghz_per_gbps(),
                utils.join(" ")
            );
        }
    }
}
