//! Single-experiment command line: run one configuration and print the
//! full measurement (metrics, bins, top machine-clear symbols).
//!
//! ```text
//! experiment [--dir tx|rx] [--size BYTES] [--mode none|proc|irq|full]
//!            [--cpus N] [--seed N] [--messages N] [--warmup N]
//!            [--loss RATE] [--rss] [--rotate CYCLES]
//! ```

use affinity_sim::{report, run_experiment, AffinityMode, Direction, ExperimentConfig, SteerSpec};
use sim_cpu::EventCosts;
use sim_tcp::Bin;

fn usage() -> ! {
    eprintln!(
        "usage: experiment [--dir tx|rx] [--size BYTES] [--mode none|proc|irq|full]\n\
         \t[--cpus N] [--seed N] [--messages N] [--warmup N]\n\
         \t[--loss RATE] [--rss] [--rotate CYCLES]"
    );
    std::process::exit(2);
}

fn main() {
    let mut direction = Direction::Tx;
    let mut size = 65536u64;
    let mut mode = AffinityMode::Full;
    let mut cpus = 2usize;
    let mut seed = 0x5EEDu64;
    let mut messages = 0u32;
    let mut warmup = 0u32;
    let mut loss = 0.0f64;
    let mut rss = false;
    let mut rotate = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--dir" => {
                direction = match value().as_str() {
                    "tx" => Direction::Tx,
                    "rx" => Direction::Rx,
                    _ => usage(),
                }
            }
            "--size" => size = value().parse().unwrap_or_else(|_| usage()),
            "--mode" => {
                mode = match value().as_str() {
                    "none" => AffinityMode::None,
                    "proc" => AffinityMode::Process,
                    "irq" => AffinityMode::Irq,
                    "full" => AffinityMode::Full,
                    _ => usage(),
                }
            }
            "--cpus" => cpus = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--messages" => messages = value().parse().unwrap_or_else(|_| usage()),
            "--warmup" => warmup = value().parse().unwrap_or_else(|_| usage()),
            "--loss" => loss = value().parse().unwrap_or_else(|_| usage()),
            "--rss" => rss = true,
            "--rotate" => rotate = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    let mut config = if cpus == 4 {
        ExperimentConfig::four_processor(direction, size, mode)
    } else {
        ExperimentConfig::paper_sut(direction, size, mode)
    }
    .with_seed(seed);
    if messages > 0 {
        config.workload.measure_messages = messages;
    }
    if warmup > 0 {
        config.workload.warmup_messages = warmup;
    }
    config.tunables.loss_rate = loss;
    if rss {
        config.steer = Some(SteerSpec::flow_director_unconfigured());
    }
    config.tunables.irq_rotation_cycles = rotate;

    let result = match run_experiment(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    let m = &result.metrics;

    println!(
        "{} {}B x{} msgs/conn, {} mode, {} CPUs, seed {seed}",
        direction.label(),
        size,
        config.workload.measure_messages,
        mode.label(),
        config.cpus
    );
    println!(
        "throughput: {:.0} Mb/s   cost: {:.2} GHz/Gbps   messages: {}",
        m.throughput_mbps(),
        m.cost_ghz_per_gbps(),
        m.messages
    );
    let utils: Vec<String> = (0..config.cpus)
        .map(|c| format!("{:.2}", m.cpu_utilization(c)))
        .collect();
    println!("utilization: [{}]", utils.join(", "));
    println!(
        "per message: {:.0} cycles, {:.1} LLC misses, {:.1} machine clears",
        m.cycles_per_message(),
        m.total.llc_misses as f64 / m.messages.max(1) as f64,
        m.total.machine_clears as f64 / m.messages.max(1) as f64,
    );
    println!(
        "scheduler: {} wakeups-migrated, {} balance-migrations, {} resched IPIs",
        m.wake_migrations, m.balance_migrations, m.resched_ipis
    );
    println!(
        "locks: {}/{} contended   interrupts: {}",
        m.lock_contended, m.lock_acquisitions, m.interrupts
    );

    println!("\nper-bin breakdown:");
    for bin in Bin::ALL {
        let c = m.bin(bin);
        println!(
            "  {:>10}: {:>5.1}% of cycles, CPI {:>6.2}, MPI {:.4}",
            bin.label(),
            100.0 * m.bin_cycle_share(bin),
            c.cpi(),
            c.mpi()
        );
    }

    println!();
    println!(
        "{}",
        report::render_figure5_panel("impact indicators", m, &EventCosts::paper())
    );
    println!(
        "{}",
        report::render_table4("top machine-clear symbols", &result, 6)
    );
}
