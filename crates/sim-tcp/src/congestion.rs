//! TCP congestion control (Reno, as in Linux 2.4).
//!
//! The paper's `ttcp` runs are steady-state on a lossless LAN, so the
//! congestion window sits at its maximum there; this module exists so
//! the substrate is a *complete* TCP — slow start governs the ramp after
//! connection setup, and loss (available through the machine's
//! loss-injection knob) triggers the classic halving/recovery behaviour.

use serde::{Deserialize, Serialize};

/// Which phase the sender's congestion control is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CongestionPhase {
    /// Exponential ramp: cwnd grows by one segment per ACK.
    SlowStart,
    /// Additive increase: cwnd grows by one segment per window of ACKs.
    CongestionAvoidance,
    /// Fast recovery after a fast retransmit (duplicate ACKs).
    FastRecovery,
}

/// Reno congestion state for one connection, in segment units.
///
/// # Example
///
/// ```
/// use sim_tcp::{CongestionPhase, CongestionState};
///
/// let mut cc = CongestionState::new(2, 64);
/// assert_eq!(cc.phase(), CongestionPhase::SlowStart);
/// for _ in 0..10 {
///     cc.on_ack(1);
/// }
/// assert!(cc.cwnd() > 10); // exponential ramp
/// cc.on_timeout();
/// assert_eq!(cc.cwnd(), 2); // back to the initial window
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CongestionState {
    cwnd: u32,
    ssthresh: u32,
    initial_cwnd: u32,
    max_cwnd: u32,
    phase: CongestionPhase,
    /// ACK credit toward the next additive increase.
    ack_credit: u32,
    /// Duplicate-ACK counter toward fast retransmit.
    dup_acks: u32,
    /// Lifetime statistics.
    timeouts: u64,
    fast_retransmits: u64,
}

impl CongestionState {
    /// Creates a connection starting in slow start.
    ///
    /// # Panics
    ///
    /// Panics if `initial_cwnd` is zero or exceeds `max_cwnd`.
    #[must_use]
    pub fn new(initial_cwnd: u32, max_cwnd: u32) -> Self {
        assert!(initial_cwnd > 0, "initial window must be positive");
        assert!(initial_cwnd <= max_cwnd, "initial window exceeds maximum");
        CongestionState {
            cwnd: initial_cwnd,
            ssthresh: max_cwnd,
            initial_cwnd,
            max_cwnd,
            phase: CongestionPhase::SlowStart,
            ack_credit: 0,
            dup_acks: 0,
            timeouts: 0,
            fast_retransmits: 0,
        }
    }

    /// Current congestion window in segments.
    #[must_use]
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Current slow-start threshold in segments.
    #[must_use]
    pub fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> CongestionPhase {
        self.phase
    }

    /// `(timeouts, fast_retransmits)` since creation.
    #[must_use]
    pub fn loss_events(&self) -> (u64, u64) {
        (self.timeouts, self.fast_retransmits)
    }

    /// A cumulative ACK for `segments` new segments arrived.
    pub fn on_ack(&mut self, segments: u32) {
        self.dup_acks = 0;
        match self.phase {
            CongestionPhase::SlowStart => {
                self.cwnd = (self.cwnd + segments).min(self.max_cwnd);
                if self.cwnd >= self.ssthresh {
                    self.phase = CongestionPhase::CongestionAvoidance;
                }
            }
            CongestionPhase::CongestionAvoidance => {
                self.ack_credit += segments;
                while self.ack_credit >= self.cwnd && self.cwnd < self.max_cwnd {
                    self.ack_credit -= self.cwnd;
                    self.cwnd += 1;
                }
                self.ack_credit = self.ack_credit.min(self.cwnd);
            }
            CongestionPhase::FastRecovery => {
                // New data acked: recovery complete, deflate to ssthresh.
                self.cwnd = self.ssthresh;
                self.phase = CongestionPhase::CongestionAvoidance;
            }
        }
    }

    /// A duplicate ACK arrived; the third triggers fast retransmit.
    /// Returns `true` when a fast retransmit should be performed.
    pub fn on_dup_ack(&mut self) -> bool {
        if self.phase == CongestionPhase::FastRecovery {
            // Window inflation during recovery.
            self.cwnd = (self.cwnd + 1).min(self.max_cwnd);
            return false;
        }
        self.dup_acks += 1;
        if self.dup_acks >= 3 {
            self.dup_acks = 0;
            self.fast_retransmits += 1;
            self.ssthresh = (self.cwnd / 2).max(2);
            self.cwnd = self.ssthresh + 3;
            self.phase = CongestionPhase::FastRecovery;
            true
        } else {
            false
        }
    }

    /// The retransmission timer fired: collapse to the initial window.
    pub fn on_timeout(&mut self) {
        self.timeouts += 1;
        self.ssthresh = (self.cwnd / 2).max(2);
        self.cwnd = self.initial_cwnd;
        self.ack_credit = 0;
        self.dup_acks = 0;
        self.phase = CongestionPhase::SlowStart;
    }

    /// Segments the sender may have in flight right now.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cc = CongestionState::new(2, 1024);
        // ACKing a full window in slow start doubles it.
        let w = cc.cwnd();
        cc.on_ack(w);
        assert_eq!(cc.cwnd(), 2 * w);
    }

    #[test]
    fn slow_start_transitions_at_ssthresh() {
        let mut cc = CongestionState::new(2, 64);
        cc.on_timeout(); // ssthresh = 1, clamped 2; back to slow start
        assert_eq!(cc.phase(), CongestionPhase::SlowStart);
        cc.on_ack(4);
        assert_eq!(cc.phase(), CongestionPhase::CongestionAvoidance);
    }

    #[test]
    fn congestion_avoidance_is_additive() {
        let mut cc = CongestionState::new(2, 64);
        // Drive to CA at cwnd ~10.
        cc.on_ack(62); // cwnd 64 -> hits max & ssthresh -> CA
        assert_eq!(cc.phase(), CongestionPhase::CongestionAvoidance);
        cc.on_timeout();
        // ssthresh 32, slow start to 32 then CA.
        cc.on_ack(30);
        assert_eq!(cc.cwnd(), 32);
        assert_eq!(cc.phase(), CongestionPhase::CongestionAvoidance);
        let w = cc.cwnd();
        cc.on_ack(w); // one full window of acks -> +1
        assert_eq!(cc.cwnd(), w + 1);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = CongestionState::new(3, 64);
        cc.on_ack(40);
        let before = cc.cwnd();
        cc.on_timeout();
        assert_eq!(cc.cwnd(), 3);
        assert_eq!(cc.ssthresh(), (before / 2).max(2));
        assert_eq!(cc.loss_events().0, 1);
    }

    #[test]
    fn fast_retransmit_on_third_dup_ack() {
        let mut cc = CongestionState::new(2, 64);
        cc.on_ack(20); // cwnd 22
        assert!(!cc.on_dup_ack());
        assert!(!cc.on_dup_ack());
        assert!(cc.on_dup_ack(), "third dup-ack triggers");
        assert_eq!(cc.phase(), CongestionPhase::FastRecovery);
        assert_eq!(cc.ssthresh(), 11);
        assert_eq!(cc.cwnd(), 14); // ssthresh + 3
        assert_eq!(cc.loss_events().1, 1);
        // New ack deflates.
        cc.on_ack(1);
        assert_eq!(cc.cwnd(), 11);
        assert_eq!(cc.phase(), CongestionPhase::CongestionAvoidance);
    }

    #[test]
    fn recovery_inflates_on_further_dup_acks() {
        let mut cc = CongestionState::new(2, 64);
        cc.on_ack(20);
        for _ in 0..3 {
            cc.on_dup_ack();
        }
        let w = cc.cwnd();
        assert!(!cc.on_dup_ack());
        assert_eq!(cc.cwnd(), w + 1);
    }

    #[test]
    fn window_never_exceeds_max() {
        let mut cc = CongestionState::new(2, 16);
        for _ in 0..100 {
            cc.on_ack(8);
        }
        assert!(cc.cwnd() <= 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_initial_rejected() {
        let _ = CongestionState::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds maximum")]
    fn oversized_initial_rejected() {
        let _ = CongestionState::new(10, 8);
    }
}
