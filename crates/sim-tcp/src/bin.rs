//! The paper's seven functional bins.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A functional bin of TCP processing — the unit of every per-bin table
/// in the paper (Tables 1 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Bin {
    /// Sockets API, system-call entry and schedule-related routines.
    Interface,
    /// TCP protocol processing (the state machine).
    Engine,
    /// Memory/buffer management and TCP control-structure manipulation.
    BufMgmt,
    /// Payload data movement only.
    Copies,
    /// NIC driver routines and NIC interrupt processing.
    Driver,
    /// Synchronization-related routines.
    Locks,
    /// TCP timer routines.
    Timers,
}

impl Bin {
    /// All bins in the paper's table order.
    pub const ALL: [Bin; 7] = [
        Bin::Interface,
        Bin::Engine,
        Bin::BufMgmt,
        Bin::Copies,
        Bin::Driver,
        Bin::Locks,
        Bin::Timers,
    ];

    /// Label as printed in the paper's tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Bin::Interface => "Interface",
            Bin::Engine => "Engine",
            Bin::BufMgmt => "Buf Mgmt",
            Bin::Copies => "Copies",
            Bin::Driver => "Driver",
            Bin::Locks => "Locks",
            Bin::Timers => "Timers",
        }
    }

    /// Parses a label back to a bin.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Bin> {
        Bin::ALL.into_iter().find(|b| b.label() == label)
    }
}

impl fmt::Display for Bin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_bins_in_paper_order() {
        assert_eq!(Bin::ALL.len(), 7);
        assert_eq!(Bin::ALL[0], Bin::Interface);
        assert_eq!(Bin::ALL[6], Bin::Timers);
    }

    #[test]
    fn labels_roundtrip() {
        for b in Bin::ALL {
            assert_eq!(Bin::from_label(b.label()), Some(b));
        }
        assert_eq!(Bin::from_label("nope"), None);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Bin::BufMgmt.to_string(), "Buf Mgmt");
    }
}
