//! The TCP stack executor.

use serde::{Deserialize, Serialize};
use sim_core::{ConnectionId, IrqVector, Result, SimError, SimRng};
use sim_cpu::{Core, DataTouch, PerfCounters, WorkItem};
use sim_mem::{MemorySystem, RegionId};
use sim_net::wire;
use sim_os::SpinLock;
use sim_prof::{FuncId, FunctionRegistry, ProfScratch, Profiler};

use crate::bin::Bin;
use crate::config::{FuncCost, StackConfig};
use crate::conn::{ConnState, ConnectionRegions, FlowArena};

/// Execution context threaded through every stack operation: the CPU the
/// code runs on, the coherent memory system, the profiler receiving
/// attribution, and the deterministic RNG.
///
/// Per-function counter deltas are batched in an internal [`ProfScratch`]
/// and flushed into the profiler when the context is dropped — i.e. at
/// the end of the episode (function-exit/context-switch boundary).
/// Because the context holds the profiler `&mut`, the borrow checker
/// guarantees no profiler read can happen before that flush.
#[derive(Debug)]
pub struct ExecCtx<'a> {
    /// The core executing the code.
    pub core: &'a mut Core,
    /// The machine's memory system.
    pub mem: &'a mut MemorySystem,
    /// The profiler receiving per-function attribution.
    pub prof: &'a mut Profiler,
    /// Deterministic randomness (lock contention draws, etc.).
    pub rng: &'a mut SimRng,
    scratch: ProfScratch,
}

impl<'a> ExecCtx<'a> {
    /// A context executing on `core`, attributing to `prof`.
    #[must_use]
    pub fn new(
        core: &'a mut Core,
        mem: &'a mut MemorySystem,
        prof: &'a mut Profiler,
        rng: &'a mut SimRng,
    ) -> Self {
        let scratch = ProfScratch::new(core.id());
        ExecCtx {
            core,
            mem,
            prof,
            rng,
            scratch,
        }
    }

    /// Batches `delta` for `func` on this context's CPU.
    fn record(&mut self, func: FuncId, delta: &PerfCounters) {
        self.scratch.note(self.prof, func, delta);
    }
}

impl Drop for ExecCtx<'_> {
    fn drop(&mut self) {
        self.scratch.flush(self.prof);
    }
}

/// Outcome of processing a batch of received frames in the bottom half.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RxBatchOutcome {
    /// Pure ACK segments generated (already charged, ready for the NIC).
    pub acks_sent: u32,
    /// The socket receive queue went from empty to non-empty: the
    /// blocked consumer should be woken.
    pub wake_consumer: bool,
    /// Cycles consumed by the whole batch.
    pub cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct FnIds {
    system_call: FuncId,
    sock_write: FuncId,
    sock_read: FuncId,
    wake_up: FuncId,
    tcp_sendmsg: FuncId,
    tcp_transmit_skb: FuncId,
    tcp_v4_rcv: FuncId,
    tcp_rcv_established: FuncId,
    tcp_select_window: FuncId,
    tcp_connect: FuncId,
    tcp_retransmit: FuncId,
    tcp_close: FuncId,
    alloc_skb: FuncId,
    kfree_skb: FuncId,
    skb_queue: FuncId,
    csum_copy_from_user: FuncId,
    copy_to_user: FuncId,
    e1000_xmit: FuncId,
    e1000_clean_tx: FuncId,
    e1000_clean_rx: FuncId,
    lock_section: FuncId,
    do_gettimeofday: FuncId,
    timestamp_fast: FuncId,
    mod_timer: FuncId,
}

/// Function ids for the server-side lifecycle path. Registered *after*
/// every pre-existing symbol (including the per-vector IRQ handlers) so
/// that all legacy [`FuncId`] indices — and therefore every existing
/// sweep digest — are unchanged.
#[derive(Debug, Clone, Copy)]
struct LifecycleFnIds {
    tcp_conn_request: FuncId,
    tcp_accept: FuncId,
    tcp_fin: FuncId,
}

/// The single listening socket of a server-mode stack (the state machine's
/// LISTEN state). Per-flow states live in the arena ([`ConnState`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListenSocket {
    /// Maximum connections allowed to wait in the accept backlog.
    pub capacity: u32,
    /// Connections currently in [`ConnState::SynRcvd`] awaiting accept.
    pub in_backlog: u32,
}

/// Outcome of SYN processing in the softirq.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynOutcome {
    /// The connection entered the accept backlog (SYN-ACK sent). `false`
    /// means the backlog was full and the SYN was dropped.
    pub queued: bool,
    /// Cycles consumed.
    pub cycles: u64,
}

/// The modelled TCP/IP stack.
///
/// Owns the function registry (symbol table), per-function code regions,
/// per-connection state and the per-connection socket locks. The machine
/// model sequences calls to the path stages; each stage executes its
/// functions on the caller's [`Core`] and attributes events through the
/// caller's [`Profiler`].
#[derive(Debug)]
pub struct TcpStack {
    config: StackConfig,
    registry: FunctionRegistry,
    ids: FnIds,
    /// Code region per function, indexed by `FuncId::index()` (function
    /// registration is dense and sequential, so this is a direct lookup
    /// on the per-call hot path instead of a hash).
    code: Vec<RegionId>,
    /// IRQ-handler function per vector, indexed by `IrqVector::index()`
    /// (vectors are small integers; a dense table turns the per-interrupt
    /// lookup into an array load instead of a hash).
    irq_funcs: Vec<Option<FuncId>>,
    lifecycle: LifecycleFnIds,
    flows: FlowArena,
    locks: Vec<SpinLock>,
    listen: Option<ListenSocket>,
}

impl TcpStack {
    /// Builds the stack: registers every function (including one IRQ
    /// handler symbol per vector in `irq_vectors`), allocates code
    /// regions and per-connection state.
    ///
    /// `conn_dma` maps each connection to the NIC RX-buffer region its
    /// packets are DMA'd into; `max_message` sizes the application
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration fails
    /// validation or no connections are given.
    pub fn new(
        config: StackConfig,
        mem: &mut MemorySystem,
        conn_dma: &[RegionId],
        irq_vectors: &[IrqVector],
        max_message: u64,
    ) -> Result<Self> {
        config.validate()?;
        if conn_dma.is_empty() {
            return Err(SimError::config("need at least one connection"));
        }
        let mut registry = FunctionRegistry::new();
        let mut code = Vec::new();

        fn reg(
            registry: &mut FunctionRegistry,
            code: &mut Vec<RegionId>,
            mem: &mut MemorySystem,
            name: &str,
            cost: &FuncCost,
        ) -> FuncId {
            let id = registry.register(name, cost.bin.label());
            let region = mem.add_region(format!("{name}.text"), cost.code_bytes);
            debug_assert_eq!(id.index(), code.len(), "function ids must be dense");
            code.push(region);
            id
        }

        let r = &mut registry;
        let c = &mut code;
        let ids = FnIds {
            system_call: reg(r, c, mem, "system_call", &config.system_call),
            sock_write: reg(r, c, mem, "sock_write", &config.sock_write),
            sock_read: reg(r, c, mem, "sock_read", &config.sock_read),
            wake_up: reg(r, c, mem, "__wake_up", &config.wake_up),
            tcp_sendmsg: reg(r, c, mem, "tcp_sendmsg", &config.tcp_sendmsg),
            tcp_transmit_skb: reg(r, c, mem, "tcp_transmit_skb", &config.tcp_transmit_skb),
            tcp_v4_rcv: reg(r, c, mem, "tcp_v4_rcv", &config.tcp_v4_rcv),
            tcp_rcv_established: reg(
                r,
                c,
                mem,
                "tcp_rcv_established",
                &config.tcp_rcv_established,
            ),
            tcp_select_window: reg(r, c, mem, "__tcp_select_window", &config.tcp_select_window),
            tcp_connect: reg(r, c, mem, "tcp_v4_connect", &config.tcp_connect),
            tcp_retransmit: reg(r, c, mem, "tcp_retransmit_skb", &config.tcp_retransmit),
            tcp_close: reg(r, c, mem, "tcp_close", &config.tcp_close),
            alloc_skb: reg(r, c, mem, "alloc_skb", &config.alloc_skb),
            kfree_skb: reg(r, c, mem, "kfree_skb", &config.kfree_skb),
            skb_queue: reg(r, c, mem, "skb_queue_tail", &config.skb_queue),
            csum_copy_from_user: reg(
                r,
                c,
                mem,
                "csum_and_copy_from_user",
                &config.csum_copy_from_user,
            ),
            copy_to_user: reg(r, c, mem, "__copy_to_user", &config.copy_to_user),
            e1000_xmit: reg(r, c, mem, "e1000_xmit_frame", &config.e1000_xmit),
            e1000_clean_tx: reg(r, c, mem, "e1000_clean_tx_irq", &config.e1000_clean_tx),
            e1000_clean_rx: reg(r, c, mem, "e1000_clean_rx_irq", &config.e1000_clean_rx),
            lock_section: {
                let id = r.register(".text.lock.tcp", Bin::Locks.label());
                let region = mem.add_region(".text.lock.tcp.text", 256);
                debug_assert_eq!(id.index(), c.len(), "function ids must be dense");
                c.push(region);
                id
            },
            do_gettimeofday: reg(r, c, mem, "do_gettimeofday", &config.do_gettimeofday),
            timestamp_fast: reg(r, c, mem, "tcp_time_stamp", &config.timestamp_fast),
            mod_timer: reg(r, c, mem, "mod_timer", &config.mod_timer),
        };

        let table = irq_vectors
            .iter()
            .map(|v| v.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut irq_funcs = vec![None; table];
        for &vector in irq_vectors {
            let id = reg(r, c, mem, &vector.handler_name(), &config.irq_top_half);
            irq_funcs[vector.index()] = Some(id);
        }

        // One bulk slab call for all per-flow regions — bit-identical
        // layout to the old per-flow insert loop, without its O(flows)
        // incremental resizes and format allocations.
        let mut flows = FlowArena::with_capacity(conn_dma.len());
        flows.provision_all(mem, &config, conn_dma, max_message);
        let locks = flows
            .ids
            .iter()
            .map(|id| SpinLock::new(format!("conn{}.sk_lock", id.index())))
            .collect();

        // Lifecycle symbols last — after the per-connection regions, not
        // just after the legacy symbols: appending at the very end keeps
        // every legacy FuncId, RegionId *and address* numerically
        // identical to the pre-server stack, which is what keeps the
        // existing sweeps bit-identical.
        let lifecycle = LifecycleFnIds {
            tcp_conn_request: reg(r, c, mem, "tcp_v4_conn_request", &config.tcp_conn_request),
            tcp_accept: reg(r, c, mem, "inet_csk_accept", &config.tcp_accept),
            tcp_fin: reg(r, c, mem, "tcp_fin", &config.tcp_fin),
        };

        Ok(TcpStack {
            config,
            registry,
            ids,
            code,
            irq_funcs,
            lifecycle,
            flows,
            locks,
            listen: None,
        })
    }

    /// The symbol table (shared with the profiler's report layer).
    #[must_use]
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The stack configuration.
    #[must_use]
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Number of connections.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.flows.len()
    }

    /// Generation-checked arena slot of `conn` (panics if out of range
    /// or if the slot was reused under a stale handle).
    #[inline]
    fn slot_of(&self, conn: ConnectionId) -> usize {
        self.flows.slot(self.flows.handle(conn))
    }

    /// The memory regions of `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    #[must_use]
    pub fn regions(&self, conn: ConnectionId) -> ConnectionRegions {
        self.flows.regions[self.slot_of(conn)]
    }

    /// The IRQ-handler function registered for `vector`, if any.
    #[must_use]
    pub fn irq_func(&self, vector: IrqVector) -> Option<FuncId> {
        self.irq_funcs.get(vector.index()).copied().flatten()
    }

    /// Bytes currently queued in `conn`'s socket receive queue.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    #[must_use]
    pub fn rx_available(&self, conn: ConnectionId) -> u64 {
        self.flows.rx_queue_bytes[self.slot_of(conn)]
    }

    /// TX segments in flight (queued to the NIC, not yet completed).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    #[must_use]
    pub fn tx_inflight(&self, conn: ConnectionId) -> u32 {
        self.flows.tx_inflight[self.slot_of(conn)]
    }

    /// Segments the congestion window currently allows in flight for
    /// `conn` (Reno cwnd; the send buffer bounds it separately).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    #[must_use]
    pub fn tx_window(&self, conn: ConnectionId) -> u32 {
        self.flows.congestion[self.slot_of(conn)].window()
    }

    /// TX segments sent but not yet ACKed (what the congestion window
    /// binds on).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    #[must_use]
    pub fn tx_unacked(&self, conn: ConnectionId) -> u32 {
        self.flows.tx_unacked[self.slot_of(conn)]
    }

    /// The congestion-control state of `conn` (read-only view).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    #[must_use]
    pub fn congestion(&self, conn: ConnectionId) -> crate::congestion::CongestionState {
        self.flows.congestion[self.slot_of(conn)]
    }

    /// Whether `conn` is established.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    #[must_use]
    pub fn is_established(&self, conn: ConnectionId) -> bool {
        self.flows.established[self.slot_of(conn)]
    }

    fn item(&self, cost: &FuncCost, func: FuncId, bytes: u64) -> WorkItem {
        let code = self.code[func.index()];
        WorkItem::new(cost.instructions(bytes))
            .base_cpi(cost.base_cpi)
            .fixed_cycles(cost.fixed_cycles)
            .code(code, cost.code_bytes)
            .branch_fraction(cost.branch_fraction)
            .mispredict_rate(cost.mispredict_rate)
    }

    fn run(&self, ctx: &mut ExecCtx<'_>, func: FuncId, item: WorkItem) -> u64 {
        let out = ctx.core.execute(ctx.mem, &item);
        ctx.record(func, &out.counters);
        out.cycles
    }

    /// Acquires `conn`'s socket lock: contended only when another CPU is
    /// concurrently in this connection's critical sections.
    fn acquire_lock(&mut self, ctx: &mut ExecCtx<'_>, conn: usize, cross_cpu: bool) -> u64 {
        let contended = cross_cpu && ctx.rng.chance(self.config.cross_cpu_contention);
        let acq = self.locks[conn].acquire(contended, ctx.rng);
        // The lock word lives in the socket structure; grabbing it is a
        // write (and the source of coherence ping-pong when contended).
        let sock = self.flows.regions[conn].sock;
        let touch_item = WorkItem::new(0)
            .code(self.code[self.ids.lock_section.index()], 128)
            .touch(DataTouch::write(sock, 0, 64));
        let touch_out = ctx.core.execute(ctx.mem, &touch_item);
        let delta = PerfCounters {
            instructions: acq.instructions,
            branches: acq.branches,
            br_mispredicts: acq.mispredicts,
            cycles: acq.cycles,
            ..PerfCounters::default()
        };
        ctx.core.apply_counters(&delta);
        ctx.record(self.ids.lock_section, &delta);
        ctx.record(self.ids.lock_section, &touch_out.counters);
        acq.cycles + touch_out.cycles
    }

    /// The application writes `bytes` to `conn` (one `ttcp` buffer).
    ///
    /// Models the full sendmsg path: the sockets interface re-entered
    /// once per wake-up episode, the TCP engine and buffer management per
    /// segment, the checksumming copy from the (cached) application
    /// buffer. Returns the segment payload sizes now queued for the
    /// driver ([`driver_tx`](Self::driver_tx)).
    ///
    /// `cross_cpu` says whether this connection's interrupt-side
    /// processing currently runs on a different CPU (drives lock
    /// contention).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn sendmsg(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        conn: ConnectionId,
        bytes: u64,
        cross_cpu: bool,
    ) -> Vec<u32> {
        let ci = self.slot_of(conn);
        let segments = wire::segments_for(bytes, self.config.mss);
        let episodes = (segments.len() as u32)
            .div_ceil(self.config.tx_wake_batch)
            .max(1);

        let regions = self.flows.regions[ci];
        // Interface, once per wake-up episode.
        for ep in 0..episodes {
            let item = self
                .item(&self.config.system_call, self.ids.system_call, 0)
                .touch(DataTouch::read(regions.sock, 0, 64));
            self.run(ctx, self.ids.system_call, item);
            let item = self
                .item(&self.config.sock_write, self.ids.sock_write, 0)
                .touch(DataTouch::read(regions.sock, 64, 192));
            self.run(ctx, self.ids.sock_write, item);
            if ep > 0 {
                // The writer blocked on buffer space and was woken; the
                // retransmit timer is re-armed when transmission resumes.
                let item = self
                    .item(&self.config.wake_up, self.ids.wake_up, 0)
                    .touch(DataTouch::read(regions.sock, 256, 128));
                self.run(ctx, self.ids.wake_up, item);
                let item = self
                    .item(&self.config.mod_timer, self.ids.mod_timer, 0)
                    .touch(DataTouch::write(regions.tcp_ctx, 1024, 64));
                self.run(ctx, self.ids.mod_timer, item);
            }
            self.acquire_lock(ctx, ci, cross_cpu);
        }
        // Cheap per-call timestamp bookkeeping.
        let item = self.item(&self.config.timestamp_fast, self.ids.timestamp_fast, 0);
        self.run(ctx, self.ids.timestamp_fast, item);

        let mut app_offset = 0u64;
        for &seg in &segments {
            let seg_bytes = u64::from(seg);
            // Engine: tcp_sendmsg per-segment slice. Reads the whole
            // control block (sequence state, window, congestion fields),
            // dirties the send-side half; walks the write queue (old skb
            // data, long cold).
            let cursor = self.flows.skb_data_cursor[ci];
            let walk = cursor.saturating_sub(8 * u64::from(self.config.mss));
            let item = self
                .item(&self.config.tcp_sendmsg, self.ids.tcp_sendmsg, seg_bytes)
                .touch(DataTouch::read(regions.tcp_ctx, 0, 1024))
                .touch(DataTouch::write(regions.tcp_ctx, 768, 512))
                .touch(DataTouch::read(regions.sock, 0, 128))
                .touch(DataTouch::read(regions.skb_data, walk, 64));
            self.run(ctx, self.ids.tcp_sendmsg, item);

            // Buffer management: allocate the skb (rolling slab slot).
            let meta_slot = self.flows.meta_alloc_cursor[ci] % self.config.skb_meta_bytes;
            self.flows.meta_alloc_cursor[ci] += 256;
            let item = self
                .item(&self.config.alloc_skb, self.ids.alloc_skb, seg_bytes)
                .touch(DataTouch::write(regions.skb_meta, meta_slot, 256));
            self.run(ctx, self.ids.alloc_skb, item);

            // Copy (with checksum) from the cached application buffer
            // into the send queue's skb data area. Sub-MSS writes come
            // from the small-object slab caches, which stay hot; full
            // segments cycle through the big (cold) slab arena.
            let data_window = if seg_bytes * 4 < u64::from(self.config.mss) {
                16 * 1024
            } else {
                self.config.skb_data_bytes
            };
            let item = self
                .item(
                    &self.config.csum_copy_from_user,
                    self.ids.csum_copy_from_user,
                    seg_bytes,
                )
                .touch(DataTouch::read(regions.tx_app_buf, app_offset, seg_bytes))
                .touch(DataTouch::write(
                    regions.skb_data,
                    cursor % data_window,
                    seg_bytes,
                ));
            self.run(ctx, self.ids.csum_copy_from_user, item);
            self.flows.skb_data_cursor[ci] = cursor + seg_bytes;

            // Socket buffer accounting.
            let item = self
                .item(&self.config.skb_queue, self.ids.skb_queue, seg_bytes)
                .touch(DataTouch::write(regions.sock, 512, 128));
            self.run(ctx, self.ids.skb_queue, item);

            // Engine: build and push the segment (header construction,
            // timestamps, route — reads broadly, dirties its own slice).
            let item = self
                .item(
                    &self.config.tcp_transmit_skb,
                    self.ids.tcp_transmit_skb,
                    seg_bytes,
                )
                .touch(DataTouch::read(regions.tcp_ctx, 0, 768))
                .touch(DataTouch::write(regions.tcp_ctx, 1280, 256))
                .touch(DataTouch::read(regions.skb_meta, meta_slot, 128));
            self.run(ctx, self.ids.tcp_transmit_skb, item);

            app_offset += seg_bytes;
        }

        self.flows.tx_inflight[ci] += segments.len() as u32;
        self.flows.tx_unacked[ci] += segments.len() as u32;
        self.flows.tx_bytes_submitted[ci] += bytes;
        segments
    }

    /// The driver hands one segment of `seg_bytes` to the NIC (touches
    /// the TX descriptor ring passed in).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn driver_tx(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        conn: ConnectionId,
        tx_ring: RegionId,
        ring_slot: u64,
        seg_bytes: u32,
    ) -> u64 {
        let regions = self.flows.regions[self.slot_of(conn)];
        let item = self
            .item(
                &self.config.e1000_xmit,
                self.ids.e1000_xmit,
                u64::from(seg_bytes),
            )
            .touch(DataTouch::write(tx_ring, ring_slot * 16, 16))
            .touch(DataTouch::read(regions.skb_meta, ring_slot % 64 * 256, 64));
        self.run(ctx, self.ids.e1000_xmit, item)
    }

    /// Transmit-completion processing: the driver reclaims `frames`
    /// descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn tx_complete(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        conn: ConnectionId,
        tx_ring: RegionId,
        frames: u32,
    ) -> u64 {
        let mut cycles = 0;
        for i in 0..frames {
            let item = self
                .item(&self.config.e1000_clean_tx, self.ids.e1000_clean_tx, 0)
                .touch(DataTouch::read(tx_ring, u64::from(i) * 16, 16));
            cycles += self.run(ctx, self.ids.e1000_clean_tx, item);
        }
        let ci = self.slot_of(conn);
        self.flows.tx_inflight[ci] = self.flows.tx_inflight[ci].saturating_sub(frames);
        cycles
    }

    /// An ACK for `acked_segments` arrives on `conn`: engine processing
    /// plus freeing the acked send-queue skbs.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn rx_ack(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        conn: ConnectionId,
        acked_segments: u32,
        cross_cpu: bool,
    ) -> u64 {
        let ci = self.slot_of(conn);
        let regions = self.flows.regions[ci];
        let mut cycles = self.acquire_lock(ctx, ci, cross_cpu);
        // ACK processing reads the whole control block and dirties the
        // receive/ack half of it (snd_una, rtt estimators, cwnd, window)
        // — the write set that ping-pongs against the sender context
        // when they run on different CPUs.
        let item = self
            .item(&self.config.tcp_v4_rcv, self.ids.tcp_v4_rcv, 0)
            .touch(DataTouch::read(regions.tcp_ctx, 0, 1536))
            .touch(DataTouch::write(regions.tcp_ctx, 0, 768));
        cycles += self.run(ctx, self.ids.tcp_v4_rcv, item);
        for _ in 0..acked_segments {
            // Free the oldest allocated skb slot (slab slots cycle).
            let slot = self.flows.meta_free_cursor[ci] % self.config.skb_meta_bytes;
            self.flows.meta_free_cursor[ci] += 256;
            let item = self
                .item(
                    &self.config.kfree_skb,
                    self.ids.kfree_skb,
                    u64::from(self.config.mss),
                )
                .touch(DataTouch::write(regions.skb_meta, slot, 128));
            cycles += self.run(ctx, self.ids.kfree_skb, item);
        }
        let item = self
            .item(&self.config.mod_timer, self.ids.mod_timer, 0)
            .touch(DataTouch::write(regions.tcp_ctx, 1024, 64));
        cycles += self.run(ctx, self.ids.mod_timer, item);
        self.flows.congestion[ci].on_ack(acked_segments);
        self.flows.tx_unacked[ci] = self.flows.tx_unacked[ci].saturating_sub(acked_segments);
        cycles
    }

    /// Performs an active open on `conn`: SYN construction and transmit,
    /// connection-hash insertion, timer arm — the "connection setup"
    /// partition the paper separates from the fast path. Resets the
    /// congestion window to its initial value (slow start restarts).
    ///
    /// Returns the cycles consumed.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn connect(&mut self, ctx: &mut ExecCtx<'_>, conn: ConnectionId, cross_cpu: bool) -> u64 {
        let ci = self.slot_of(conn);
        let regions = self.flows.regions[ci];
        let mut cycles = 0;
        let item = self
            .item(&self.config.system_call, self.ids.system_call, 0)
            .touch(DataTouch::read(regions.sock, 0, 64));
        cycles += self.run(ctx, self.ids.system_call, item);
        cycles += self.acquire_lock(ctx, ci, cross_cpu);
        let item = self
            .item(&self.config.tcp_connect, self.ids.tcp_connect, 0)
            .touch(DataTouch::write(regions.tcp_ctx, 0, 1536))
            .touch(DataTouch::write(regions.sock, 0, 512));
        cycles += self.run(ctx, self.ids.tcp_connect, item);
        // SYN goes out through the normal transmit path.
        let item = self
            .item(&self.config.tcp_transmit_skb, self.ids.tcp_transmit_skb, 0)
            .touch(DataTouch::read(regions.tcp_ctx, 0, 256));
        cycles += self.run(ctx, self.ids.tcp_transmit_skb, item);
        let item = self
            .item(&self.config.mod_timer, self.ids.mod_timer, 0)
            .touch(DataTouch::write(regions.tcp_ctx, 1024, 64));
        cycles += self.run(ctx, self.ids.mod_timer, item);
        self.flows.established[ci] = true;
        self.flows.congestion[ci] =
            crate::congestion::CongestionState::new(self.config.initial_cwnd, self.config.max_cwnd);
        cycles
    }

    /// Tears down `conn` (FIN exchange, hash removal, timer cancel).
    /// Returns the cycles consumed.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn close(&mut self, ctx: &mut ExecCtx<'_>, conn: ConnectionId, cross_cpu: bool) -> u64 {
        let ci = self.slot_of(conn);
        let regions = self.flows.regions[ci];
        let mut cycles = self.acquire_lock(ctx, ci, cross_cpu);
        let item = self
            .item(&self.config.tcp_close, self.ids.tcp_close, 0)
            .touch(DataTouch::write(regions.tcp_ctx, 0, 768))
            .touch(DataTouch::write(regions.sock, 0, 256));
        cycles += self.run(ctx, self.ids.tcp_close, item);
        let item = self
            .item(&self.config.tcp_transmit_skb, self.ids.tcp_transmit_skb, 0)
            .touch(DataTouch::read(regions.tcp_ctx, 0, 256));
        cycles += self.run(ctx, self.ids.tcp_transmit_skb, item);
        self.flows.established[ci] = false;
        cycles
    }

    /// The retransmission timer fired for `conn`: collapse the window
    /// (Reno timeout) and rebuild/retransmit one segment of `seg_bytes`.
    /// Returns the cycles consumed.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn retransmit_timeout(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        conn: ConnectionId,
        seg_bytes: u32,
        cross_cpu: bool,
    ) -> u64 {
        let ci = self.slot_of(conn);
        let regions = self.flows.regions[ci];
        self.flows.congestion[ci].on_timeout();
        let mut cycles = self.acquire_lock(ctx, ci, cross_cpu);
        let item = self
            .item(
                &self.config.tcp_retransmit,
                self.ids.tcp_retransmit,
                u64::from(seg_bytes),
            )
            .touch(DataTouch::read(regions.tcp_ctx, 0, 768))
            .touch(DataTouch::write(regions.tcp_ctx, 512, 256))
            .touch(DataTouch::read(
                regions.skb_data,
                self.flows.skb_data_cursor[ci],
                u64::from(seg_bytes),
            ));
        cycles += self.run(ctx, self.ids.tcp_retransmit, item);
        let item = self
            .item(&self.config.mod_timer, self.ids.mod_timer, 0)
            .touch(DataTouch::write(regions.tcp_ctx, 1024, 64));
        cycles += self.run(ctx, self.ids.mod_timer, item);
        cycles
    }

    /// The interrupt top half for `vector` (device acknowledge plus
    /// softirq raise). Returns the cycles consumed.
    ///
    /// # Panics
    ///
    /// Panics if `vector` was not registered at construction.
    pub fn irq_top_half(&mut self, ctx: &mut ExecCtx<'_>, vector: IrqVector) -> u64 {
        let func = self.irq_funcs[vector.index()].expect("vector registered at construction");
        let item = self.item(&self.config.irq_top_half, func, 0);
        self.run(ctx, func, item)
    }

    /// The RX bottom half processes `frames` (payload bytes each) for
    /// `conn`, queueing them on the socket and generating delayed ACKs.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn rx_bottom_half(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        conn: ConnectionId,
        frames: &[u32],
        rx_ring: RegionId,
        cross_cpu: bool,
    ) -> RxBatchOutcome {
        let ci = self.slot_of(conn);
        let regions = self.flows.regions[ci];
        let was_empty = self.flows.rx_queue_bytes[ci] == 0;
        let mut outcome = RxBatchOutcome::default();

        for (i, &frame_bytes) in frames.iter().enumerate() {
            let fb = u64::from(frame_bytes);
            // Driver: reclaim the (DMA-written, hence uncached) descriptor
            // and set up the skb around it (rolling slab slot).
            let meta_slot = self.flows.meta_alloc_cursor[ci] % self.config.skb_meta_bytes;
            self.flows.meta_alloc_cursor[ci] += 256;
            let item = self
                .item(&self.config.e1000_clean_rx, self.ids.e1000_clean_rx, fb)
                .touch(DataTouch::read(rx_ring, (i as u64) * 16, 16))
                .touch(DataTouch::write(regions.skb_meta, meta_slot, 256));
            outcome.cycles += self.run(ctx, self.ids.e1000_clean_rx, item);

            // Timers: timestamp comparison. Full-MSS frames take the
            // expensive do_gettimeofday path (I/O timer read).
            if frame_bytes >= self.config.mss {
                let item = self.item(&self.config.do_gettimeofday, self.ids.do_gettimeofday, 0);
                outcome.cycles += self.run(ctx, self.ids.do_gettimeofday, item);
            } else {
                let item = self.item(&self.config.timestamp_fast, self.ids.timestamp_fast, 0);
                outcome.cycles += self.run(ctx, self.ids.timestamp_fast, item);
            }

            // Locks: socket backlog lock, then the engine. Receive
            // processing reads the whole control block and dirties the
            // receive half (rcv_nxt, window, timestamps, SACK state).
            outcome.cycles += self.acquire_lock(ctx, ci, cross_cpu);
            let item = self
                .item(&self.config.tcp_v4_rcv, self.ids.tcp_v4_rcv, fb)
                .touch(DataTouch::read(regions.tcp_ctx, 0, 768))
                .touch(DataTouch::write(regions.tcp_ctx, 384, 128));
            outcome.cycles += self.run(ctx, self.ids.tcp_v4_rcv, item);
            let item = self
                .item(
                    &self.config.tcp_rcv_established,
                    self.ids.tcp_rcv_established,
                    fb,
                )
                .touch(DataTouch::read(regions.tcp_ctx, 0, 1536))
                .touch(DataTouch::write(regions.tcp_ctx, 0, 768));
            outcome.cycles += self.run(ctx, self.ids.tcp_rcv_established, item);

            // Buffer management: queue onto the socket.
            let item = self
                .item(&self.config.skb_queue, self.ids.skb_queue, fb)
                .touch(DataTouch::write(regions.sock, 512, 128));
            outcome.cycles += self.run(ctx, self.ids.skb_queue, item);

            let dma_off = self.flows.rx_dma_cursor[ci];
            self.flows.rx_dma_cursor[ci] = dma_off + fb;
            self.flows.rx_queue[ci].push_back((frame_bytes, dma_off));
            self.flows.rx_queue_bytes[ci] += fb;

            // Delayed ACK.
            self.flows.frames_since_ack[ci] += 1;
            if self.flows.frames_since_ack[ci] >= self.config.ack_every {
                self.flows.frames_since_ack[ci] = 0;
                let item = self
                    .item(
                        &self.config.tcp_select_window,
                        self.ids.tcp_select_window,
                        0,
                    )
                    .touch(DataTouch::read(regions.tcp_ctx, 0, 192));
                outcome.cycles += self.run(ctx, self.ids.tcp_select_window, item);
                let item = self
                    .item(&self.config.tcp_transmit_skb, self.ids.tcp_transmit_skb, 0)
                    .touch(DataTouch::read(regions.tcp_ctx, 0, 256))
                    .touch(DataTouch::write(regions.tcp_ctx, 640, 64));
                outcome.cycles += self.run(ctx, self.ids.tcp_transmit_skb, item);
                let item = self
                    .item(&self.config.e1000_xmit, self.ids.e1000_xmit, 0)
                    .touch(DataTouch::write(rx_ring, 2048, 16));
                outcome.cycles += self.run(ctx, self.ids.e1000_xmit, item);
                outcome.acks_sent += 1;
            }
        }

        if was_empty && !frames.is_empty() {
            // Wake the blocked reader (scheduling is the machine's job;
            // the __wake_up instructions are charged here).
            let item = self
                .item(&self.config.wake_up, self.ids.wake_up, 0)
                .touch(DataTouch::read(regions.sock, 256, 128));
            outcome.cycles += self.run(ctx, self.ids.wake_up, item);
            outcome.wake_consumer = true;
        }
        outcome
    }

    /// The application reads up to `max_bytes` from `conn`. Returns the
    /// bytes actually copied (0 if the queue was empty — caller blocks).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub fn recvmsg(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        conn: ConnectionId,
        max_bytes: u64,
        cross_cpu: bool,
    ) -> u64 {
        let ci = self.slot_of(conn);
        let regions = self.flows.regions[ci];

        let item = self
            .item(&self.config.system_call, self.ids.system_call, 0)
            .touch(DataTouch::read(regions.sock, 0, 64));
        self.run(ctx, self.ids.system_call, item);
        let item = self
            .item(&self.config.sock_read, self.ids.sock_read, 0)
            .touch(DataTouch::read(regions.sock, 64, 192));
        self.run(ctx, self.ids.sock_read, item);
        self.acquire_lock(ctx, ci, cross_cpu);

        let mut copied = 0u64;
        let mut app_offset = 0u64;
        while copied < max_bytes {
            let Some((frame_bytes, dma_off)) = self.flows.rx_queue[ci].pop_front() else {
                break;
            };
            let fb = u64::from(frame_bytes);
            self.flows.rx_queue_bytes[ci] -= fb;

            // The copy reads the DMA'd (uncached) payload and writes the
            // application buffer.
            let item = self
                .item(&self.config.copy_to_user, self.ids.copy_to_user, fb)
                .touch(DataTouch::read(regions.rx_dma_buf, dma_off, fb))
                .touch(DataTouch::write(regions.rx_app_buf, app_offset, fb));
            self.run(ctx, self.ids.copy_to_user, item);

            let meta_slot = self.flows.meta_free_cursor[ci] % self.config.skb_meta_bytes;
            self.flows.meta_free_cursor[ci] += 256;
            let item = self
                .item(&self.config.kfree_skb, self.ids.kfree_skb, fb)
                .touch(DataTouch::write(regions.skb_meta, meta_slot, 128));
            self.run(ctx, self.ids.kfree_skb, item);

            copied += fb;
            app_offset += fb;
        }

        // tcp_recvmsg advances copied_seq and re-opens the advertised
        // window: it reads and dirties the control block from process
        // context — the other half of the RX ping-pong.
        let item = self
            .item(
                &self.config.tcp_select_window,
                self.ids.tcp_select_window,
                0,
            )
            .touch(DataTouch::read(regions.tcp_ctx, 0, 1024))
            .touch(DataTouch::write(regions.tcp_ctx, 768, 512));
        self.run(ctx, self.ids.tcp_select_window, item);

        // Delayed-ACK bookkeeping on the read side.
        let item = self
            .item(&self.config.mod_timer, self.ids.mod_timer, 0)
            .touch(DataTouch::write(regions.tcp_ctx, 1088, 64));
        self.run(ctx, self.ids.mod_timer, item);

        self.flows.rx_bytes_delivered[ci] += copied;
        copied
    }

    /// Cumulative spinlock statistics for `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    #[must_use]
    pub fn lock_stats(&self, conn: ConnectionId) -> sim_os::SpinLockStats {
        self.locks[conn.index()].stats()
    }

    // --- Server-side connection lifecycle -----------------------------
    //
    // Legacy (client/ttcp) cells never call anything below, so the
    // pre-existing sweeps are untouched by construction.

    /// Opens the listening socket with an accept backlog of `capacity`
    /// and returns every flow slot to the free list (server cells
    /// allocate slots on SYN arrival instead of at construction).
    pub fn listen(&mut self, capacity: u32) {
        self.listen = Some(ListenSocket {
            capacity,
            in_backlog: 0,
        });
        self.flows.free_all();
    }

    /// The listening socket, if [`listen`](Self::listen) was called.
    #[must_use]
    pub fn listen_socket(&self) -> Option<ListenSocket> {
        self.listen
    }

    /// Flow slots currently allocated (alive anywhere in
    /// SYN_RCVD/ESTABLISHED/FIN_WAIT).
    #[must_use]
    pub fn live_flows(&self) -> usize {
        self.flows.live()
    }

    /// Lifecycle state of `conn`'s slot.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    #[must_use]
    pub fn conn_state(&self, conn: ConnectionId) -> ConnState {
        self.flows.states[self.slot_of(conn)]
    }

    /// Allocates a flow slot for an arriving connection (state
    /// [`ConnState::Closed`] until the SYN is processed). Returns `None`
    /// when every slot is live.
    pub fn flow_alloc(&mut self) -> Option<ConnectionId> {
        let flow = self.flows.alloc(&self.config)?;
        Some(ConnectionId::new(flow.index() as u32))
    }

    /// Recycles `conn`'s slot (generation bumps; stale handles panic).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range or already free.
    pub fn flow_free(&mut self, conn: ConnectionId) {
        let flow = self.flows.handle(conn);
        self.flows.free(flow);
    }

    /// Softirq SYN processing for a freshly allocated `conn`: validate,
    /// allocate the request sock, send the SYN-ACK through the normal
    /// transmit path and queue on the accept backlog — or drop if the
    /// backlog is full (`queued == false`; the caller recycles the slot
    /// and the peer retries).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range or [`listen`](Self::listen) was
    /// never called.
    pub fn on_syn(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        conn: ConnectionId,
        cross_cpu: bool,
    ) -> SynOutcome {
        let ci = self.slot_of(conn);
        let regions = self.flows.regions[ci];
        // Demux runs regardless of the backlog outcome.
        let item = self
            .item(&self.config.tcp_v4_rcv, self.ids.tcp_v4_rcv, 0)
            .touch(DataTouch::read(regions.tcp_ctx, 0, 256));
        let mut cycles = self.run(ctx, self.ids.tcp_v4_rcv, item);
        let listen = self
            .listen
            .as_mut()
            .expect("on_syn requires a listening socket");
        if listen.in_backlog >= listen.capacity {
            return SynOutcome {
                queued: false,
                cycles,
            };
        }
        listen.in_backlog += 1;
        let item = self
            .item(
                &self.config.tcp_conn_request,
                self.lifecycle.tcp_conn_request,
                0,
            )
            .touch(DataTouch::write(regions.tcp_ctx, 0, 1536))
            .touch(DataTouch::write(regions.sock, 0, 512));
        cycles += self.run(ctx, self.lifecycle.tcp_conn_request, item);
        // The SYN-ACK goes out through the normal transmit path.
        let item = self
            .item(&self.config.tcp_transmit_skb, self.ids.tcp_transmit_skb, 0)
            .touch(DataTouch::read(regions.tcp_ctx, 0, 256));
        cycles += self.run(ctx, self.ids.tcp_transmit_skb, item);
        let item = self
            .item(&self.config.mod_timer, self.ids.mod_timer, 0)
            .touch(DataTouch::write(regions.tcp_ctx, 1024, 64));
        cycles += self.run(ctx, self.ids.mod_timer, item);
        let _ = cross_cpu;
        self.flows.states[ci] = ConnState::SynRcvd;
        SynOutcome {
            queued: true,
            cycles,
        }
    }

    /// The server task accepts `conn` from the backlog (process context):
    /// `inet_csk_accept` dequeues the request sock and grafts the socket.
    /// The connection becomes [`ConnState::Established`].
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range, not in SYN_RCVD, or the backlog
    /// is empty.
    pub fn accept(&mut self, ctx: &mut ExecCtx<'_>, conn: ConnectionId, cross_cpu: bool) -> u64 {
        let ci = self.slot_of(conn);
        assert_eq!(
            self.flows.states[ci],
            ConnState::SynRcvd,
            "accept requires SYN_RCVD"
        );
        let listen = self
            .listen
            .as_mut()
            .expect("accept requires a listening socket");
        assert!(listen.in_backlog > 0, "accept from an empty backlog");
        listen.in_backlog -= 1;
        let regions = self.flows.regions[ci];
        let item = self
            .item(&self.config.system_call, self.ids.system_call, 0)
            .touch(DataTouch::read(regions.sock, 0, 64));
        let mut cycles = self.run(ctx, self.ids.system_call, item);
        cycles += self.acquire_lock(ctx, ci, cross_cpu);
        let item = self
            .item(&self.config.tcp_accept, self.lifecycle.tcp_accept, 0)
            .touch(DataTouch::read(regions.tcp_ctx, 0, 512))
            .touch(DataTouch::write(regions.sock, 0, 256));
        cycles += self.run(ctx, self.lifecycle.tcp_accept, item);
        self.flows.states[ci] = ConnState::Established;
        self.flows.established[ci] = true;
        cycles
    }

    /// The server sends its FIN on `conn` after the response has fully
    /// drained (`tx_unacked == 0`): `tcp_close` plus the FIN segment out
    /// through the transmit path. The FIN occupies one in-flight/unacked
    /// segment until [`on_fin_ack`](Self::on_fin_ack).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range or not ESTABLISHED.
    pub fn send_fin(&mut self, ctx: &mut ExecCtx<'_>, conn: ConnectionId, cross_cpu: bool) -> u64 {
        let ci = self.slot_of(conn);
        assert_eq!(
            self.flows.states[ci],
            ConnState::Established,
            "send_fin requires ESTABLISHED"
        );
        let regions = self.flows.regions[ci];
        let mut cycles = self.acquire_lock(ctx, ci, cross_cpu);
        let item = self
            .item(&self.config.tcp_close, self.ids.tcp_close, 0)
            .touch(DataTouch::write(regions.tcp_ctx, 0, 768))
            .touch(DataTouch::write(regions.sock, 0, 256));
        cycles += self.run(ctx, self.ids.tcp_close, item);
        let item = self
            .item(&self.config.tcp_transmit_skb, self.ids.tcp_transmit_skb, 0)
            .touch(DataTouch::read(regions.tcp_ctx, 0, 256));
        cycles += self.run(ctx, self.ids.tcp_transmit_skb, item);
        self.flows.states[ci] = ConnState::FinWait;
        self.flows.established[ci] = false;
        self.flows.tx_inflight[ci] += 1;
        self.flows.tx_unacked[ci] += 1;
        cycles
    }

    /// The peer's FIN-ACK arrives in the softirq: process the final ACK,
    /// unhash, free the last skb. The connection is CLOSED afterwards and
    /// the caller recycles the slot via [`flow_free`](Self::flow_free).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range or not in FIN_WAIT.
    pub fn on_fin_ack(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        conn: ConnectionId,
        cross_cpu: bool,
    ) -> u64 {
        let ci = self.slot_of(conn);
        assert_eq!(
            self.flows.states[ci],
            ConnState::FinWait,
            "on_fin_ack requires FIN_WAIT"
        );
        let regions = self.flows.regions[ci];
        let mut cycles = self.acquire_lock(ctx, ci, cross_cpu);
        let item = self
            .item(&self.config.tcp_v4_rcv, self.ids.tcp_v4_rcv, 0)
            .touch(DataTouch::read(regions.tcp_ctx, 0, 1536))
            .touch(DataTouch::write(regions.tcp_ctx, 0, 768));
        cycles += self.run(ctx, self.ids.tcp_v4_rcv, item);
        let item = self
            .item(&self.config.tcp_fin, self.lifecycle.tcp_fin, 0)
            .touch(DataTouch::write(regions.tcp_ctx, 0, 512))
            .touch(DataTouch::write(regions.sock, 0, 128));
        cycles += self.run(ctx, self.lifecycle.tcp_fin, item);
        let slot = self.flows.meta_free_cursor[ci] % self.config.skb_meta_bytes;
        self.flows.meta_free_cursor[ci] += 256;
        let item = self
            .item(&self.config.kfree_skb, self.ids.kfree_skb, 0)
            .touch(DataTouch::write(regions.skb_meta, slot, 128));
        cycles += self.run(ctx, self.ids.kfree_skb, item);
        self.flows.tx_unacked[ci] = self.flows.tx_unacked[ci].saturating_sub(1);
        self.flows.states[ci] = ConnState::Closed;
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::CpuId;
    use sim_cpu::CpuConfig;
    use sim_mem::MemoryConfig;

    struct Harness {
        mem: MemorySystem,
        core: Core,
        prof: Profiler,
        rng: SimRng,
        stack: TcpStack,
        rx_ring: RegionId,
        tx_ring: RegionId,
    }

    fn harness() -> Harness {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let dma = mem.add_region("nic0.rx_buffers", 512 * 1024);
        let rx_ring = mem.add_region("nic0.rx_ring", 4096);
        let tx_ring = mem.add_region("nic0.tx_ring", 4096);
        let stack = TcpStack::new(
            StackConfig::paper(),
            &mut mem,
            &[dma],
            &[IrqVector::new(0x19)],
            65536,
        )
        .unwrap();
        Harness {
            mem,
            core: Core::new(CpuId::new(0), CpuConfig::paper_sut()),
            prof: Profiler::new(2),
            rng: SimRng::new(42),
            stack,
            rx_ring,
            tx_ring,
        }
    }

    const CONN: ConnectionId = ConnectionId::new(0);

    #[test]
    fn sendmsg_segments_and_inflight() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        let segs = h.stack.sendmsg(&mut ctx, CONN, 65536, false);
        assert_eq!(segs.len(), 46);
        assert_eq!(segs.iter().map(|&s| u64::from(s)).sum::<u64>(), 65536);
        assert_eq!(h.stack.tx_inflight(CONN), 46);
    }

    #[test]
    fn sendmsg_small_message_single_segment() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        let segs = h.stack.sendmsg(&mut ctx, CONN, 128, false);
        assert_eq!(segs, vec![128]);
    }

    #[test]
    fn sendmsg_attributes_to_expected_bins() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        h.stack.sendmsg(&mut ctx, CONN, 65536, false);
        drop(ctx); // flush profiler scratch before reading totals
        let reg = h.stack.registry();
        for bin in [
            "Interface",
            "Engine",
            "Buf Mgmt",
            "Copies",
            "Locks",
            "Timers",
        ] {
            let c = h.prof.group_total(reg, bin);
            assert!(c.cycles > 0, "bin {bin} got no cycles");
        }
        // Driver untouched by sendmsg itself (driver_tx is separate).
        let driver = h.prof.group_total(reg, "Driver");
        assert_eq!(driver.cycles, 0);
    }

    #[test]
    fn tx_copy_dominates_large_sends_over_small() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        h.stack.sendmsg(&mut ctx, CONN, 65536, false);
        drop(ctx);
        let reg = h.stack.registry();
        let copies = h.prof.group_total(reg, "Copies").cycles;
        let interface = h.prof.group_total(reg, "Interface").cycles;
        assert!(
            copies > interface,
            "64KB: copies ({copies}) should outweigh interface ({interface})"
        );
    }

    #[test]
    fn interface_dominates_small_sends() {
        let mut h = harness();
        // Warm-up pass so compulsory misses don't distort the steady
        // state (the paper profiles long steady-state runs).
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        for _ in 0..800 {
            h.stack.sendmsg(&mut ctx, CONN, 128, false);
        }
        ctx.prof.reset();
        for _ in 0..200 {
            h.stack.sendmsg(&mut ctx, CONN, 128, false);
        }
        drop(ctx);
        let reg = h.stack.registry();
        let copies = h.prof.group_total(reg, "Copies").cycles;
        let interface = h.prof.group_total(reg, "Interface").cycles;
        assert!(
            interface > copies * 3,
            "128B: interface ({interface}) should dwarf copies ({copies})"
        );
    }

    #[test]
    fn rx_path_queues_and_delivers() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        let rx_ring = h.rx_ring;
        let out = h
            .stack
            .rx_bottom_half(&mut ctx, CONN, &[1448, 1448, 1448, 1448], rx_ring, false);
        assert!(out.wake_consumer, "first data should wake the reader");
        assert_eq!(out.acks_sent, 2); // delayed ack: one per two frames
        assert_eq!(h.stack.rx_available(CONN), 4 * 1448);

        drop(ctx);
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        let got = h.stack.recvmsg(&mut ctx, CONN, 65536, false);
        assert_eq!(got, 4 * 1448);
        assert_eq!(h.stack.rx_available(CONN), 0);
    }

    #[test]
    fn recvmsg_empty_queue_returns_zero() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        assert_eq!(h.stack.recvmsg(&mut ctx, CONN, 4096, false), 0);
    }

    #[test]
    fn rx_wake_only_on_empty_to_nonempty() {
        let mut h = harness();
        let rx_ring = h.rx_ring;
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        let first = h
            .stack
            .rx_bottom_half(&mut ctx, CONN, &[1448], rx_ring, false);
        assert!(first.wake_consumer);
        drop(ctx);
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        let second = h
            .stack
            .rx_bottom_half(&mut ctx, CONN, &[1448], rx_ring, false);
        assert!(!second.wake_consumer, "queue already non-empty");
    }

    #[test]
    fn full_frames_take_expensive_timer_path() {
        let mut h = harness();
        let rx_ring = h.rx_ring;
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        h.stack
            .rx_bottom_half(&mut ctx, CONN, &[1448, 1448], rx_ring, false);
        drop(ctx);
        let big_timers = h.prof.group_total(h.stack.registry(), "Timers").cycles;
        let mut h2 = harness();
        let rx_ring2 = h2.rx_ring;
        let mut ctx = ExecCtx::new(&mut h2.core, &mut h2.mem, &mut h2.prof, &mut h2.rng);
        h2.stack
            .rx_bottom_half(&mut ctx, CONN, &[128, 128], rx_ring2, false);
        drop(ctx);
        let small_timers = h2.prof.group_total(h2.stack.registry(), "Timers").cycles;
        assert!(
            big_timers > small_timers * 4,
            "full-MSS frames ({big_timers}) vs small ({small_timers})"
        );
    }

    #[test]
    fn rx_copy_misses_llc_even_when_warm() {
        let mut h = harness();
        let rx_ring = h.rx_ring;
        // Deliver + read twice; DMA'd payload is fresh each time, so the
        // copy must keep missing.
        for round in 0..2 {
            let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
            // Simulate the DMA that precedes the bottom half.
            let dma = h.stack.regions(CONN).rx_dma_buf;
            ctx.mem.dma_write(dma, round * 1448, 1448);
            h.stack
                .rx_bottom_half(&mut ctx, CONN, &[1448], rx_ring, false);
            drop(ctx);
            let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
            h.stack.recvmsg(&mut ctx, CONN, 65536, false);
        }
        let copies = h
            .prof
            .func_total(h.stack.registry().lookup("__copy_to_user").unwrap());
        assert!(
            copies.llc_misses >= 40,
            "RX copies must miss LLC (DMA'd data): {copies:?}"
        );
    }

    #[test]
    fn tx_completion_and_ack_reduce_inflight() {
        let mut h = harness();
        let tx_ring = h.tx_ring;
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        let segs = h.stack.sendmsg(&mut ctx, CONN, 8192, false);
        assert_eq!(h.stack.tx_inflight(CONN), segs.len() as u32);
        drop(ctx);
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        for (i, &s) in segs.iter().enumerate() {
            h.stack.driver_tx(&mut ctx, CONN, tx_ring, i as u64, s);
        }
        drop(ctx);
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        h.stack
            .tx_complete(&mut ctx, CONN, tx_ring, segs.len() as u32);
        drop(ctx);
        assert_eq!(h.stack.tx_inflight(CONN), 0);
        let driver = h.prof.group_total(h.stack.registry(), "Driver").cycles;
        assert!(driver > 0);
    }

    #[test]
    fn irq_top_half_attributed_to_vector_symbol() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        h.stack.irq_top_half(&mut ctx, IrqVector::new(0x19));
        drop(ctx);
        let func = h.stack.irq_func(IrqVector::new(0x19)).unwrap();
        assert_eq!(h.stack.registry().name(func), "IRQ0x19_interrupt");
        assert!(h.prof.func_total(func).cycles > 0);
        assert_eq!(h.stack.registry().group(func), "Driver");
    }

    #[test]
    fn cross_cpu_contention_inflates_lock_cost() {
        // Force contention probability to 1 for the cross-CPU case.
        let mut config = StackConfig::paper();
        config.cross_cpu_contention = 1.0;
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let dma = mem.add_region("d", 64 * 1024);
        let mut stack =
            TcpStack::new(config, &mut mem, &[dma], &[IrqVector::new(0x19)], 65536).unwrap();
        let mut core = Core::new(CpuId::new(0), CpuConfig::paper_sut());
        let mut prof = Profiler::new(2);
        let mut rng = SimRng::new(1);
        let mut ctx = ExecCtx::new(&mut core, &mut mem, &mut prof, &mut rng);
        stack.sendmsg(&mut ctx, CONN, 1448, true);
        drop(ctx);
        let contended_locks = prof.group_total(stack.registry(), "Locks");
        assert!(stack.lock_stats(CONN).contended > 0);
        assert!(
            contended_locks.branches > 50,
            "spinning should retire many branches: {contended_locks:?}"
        );
    }

    #[test]
    fn rejects_no_connections() {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let err = TcpStack::new(StackConfig::paper(), &mut mem, &[], &[], 128);
        assert!(err.is_err());
    }

    #[test]
    fn connect_resets_congestion_and_charges_engine() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        assert!(h.stack.is_established(CONN));
        assert_eq!(h.stack.tx_window(CONN), h.stack.config().initial_cwnd);
        // Ramp the window, then reconnect: it must reset.
        h.stack.rx_ack(&mut ctx, CONN, 40, false);
        assert!(h.stack.tx_window(CONN) > h.stack.config().initial_cwnd);
        let cycles = h.stack.connect(&mut ctx, CONN, false);
        assert!(cycles > 0);
        assert!(h.stack.is_established(CONN));
        // Slow start restarts from the initial window.
        assert_eq!(h.stack.tx_window(CONN), h.stack.config().initial_cwnd);
        drop(ctx);
        let f = h.stack.registry().lookup("tcp_v4_connect").unwrap();
        assert!(h.prof.func_total(f).cycles > 0);
        assert_eq!(h.stack.registry().group(f), "Engine");
    }

    #[test]
    fn acks_grow_the_window_after_connect() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        h.stack.connect(&mut ctx, CONN, false);
        let w0 = h.stack.tx_window(CONN);
        h.stack.rx_ack(&mut ctx, CONN, w0, false);
        assert_eq!(h.stack.tx_window(CONN), 2 * w0, "slow start doubles");
    }

    #[test]
    fn close_marks_unestablished() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        let cycles = h.stack.close(&mut ctx, CONN, false);
        assert!(cycles > 0);
        assert!(!h.stack.is_established(CONN));
        drop(ctx);
        let f = h.stack.registry().lookup("tcp_close").unwrap();
        assert!(h.prof.func_total(f).cycles > 0);
    }

    #[test]
    fn retransmit_timeout_collapses_window() {
        let mut h = harness();
        let mut ctx = ExecCtx::new(&mut h.core, &mut h.mem, &mut h.prof, &mut h.rng);
        h.stack.rx_ack(&mut ctx, CONN, 40, false); // ramp the window up
        let before = h.stack.tx_window(CONN);
        assert!(before > h.stack.config().initial_cwnd);
        let cycles = h.stack.retransmit_timeout(&mut ctx, CONN, 1448, false);
        assert!(cycles > 0);
        assert!(h.stack.tx_window(CONN) < before);
        assert_eq!(h.stack.congestion(CONN).loss_events().0, 1);
        drop(ctx);
        let f = h.stack.registry().lookup("tcp_retransmit_skb").unwrap();
        assert!(h.prof.func_total(f).machine_clears == 0);
        assert!(h.prof.func_total(f).cycles > 0);
    }

    #[test]
    fn registry_has_paper_bins() {
        let h = harness();
        let groups = h.stack.registry().groups();
        for bin in Bin::ALL {
            assert!(
                groups.contains(&bin.label()),
                "missing bin {bin} in registry groups {groups:?}"
            );
        }
    }
}
