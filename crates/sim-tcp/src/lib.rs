//! # sim-tcp
//!
//! A functional model of the Linux 2.4.20 TCP/IP stack, decomposed
//! exactly the way the paper decomposes it for analysis: ~30 named kernel
//! functions grouped into seven **functional bins** —
//!
//! | Bin | Contents |
//! |---|---|
//! | *Interface* | BSD sockets API, `sys_call` entry, schedule-related routines |
//! | *Engine* | the TCP state machine (`tcp_sendmsg`, `tcp_transmit_skb`, `tcp_v4_rcv`, `tcp_rcv_established`, …) |
//! | *Buf Mgmt* | skb allocation/free, socket buffer accounting |
//! | *Copies* | payload movement only (`csum_and_copy_from_user` on TX, the `rep movl` `__copy_to_user` on RX) |
//! | *Driver* | NIC driver routines and interrupt handlers |
//! | *Locks* | spinlock acquisition (the Table 2 model from [`sim_os`]) |
//! | *Timers* | `do_gettimeofday`, `mod_timer`, delayed-ACK bookkeeping |
//!
//! Each function carries a calibrated footprint (instructions per call /
//! per KB, base CPI, branch statistics, code bytes) and a set of memory
//! regions it touches (TCP context, socket structure, skb metadata,
//! payload). Cycles, CPI and MPI are *measured* by running those
//! footprints through [`sim_cpu::Core`] against the coherent
//! [`sim_mem::MemorySystem`] — so affinity changes the numbers through
//! the cache and interrupt mechanics, never through the footprints
//! themselves.
//!
//! The stack exposes the *path stages* the machine model sequences:
//! [`TcpStack::sendmsg`], [`TcpStack::driver_tx`], [`TcpStack::rx_ack`],
//! [`TcpStack::irq_top_half`], [`TcpStack::rx_bottom_half`],
//! [`TcpStack::recvmsg`], [`TcpStack::connect`], plus accessors used by
//! the profiler and the experiment harness.
//!
//! Server cells additionally drive the passive-open lifecycle — LISTEN
//! ([`TcpStack::listen`]) → SYN_RCVD ([`TcpStack::on_syn`], with SYN
//! backlog overflow drops) → ESTABLISHED ([`TcpStack::accept`]) →
//! FIN_WAIT ([`TcpStack::send_fin`]) → CLOSED
//! ([`TcpStack::on_fin_ack`]) — with flow slots recycled through the
//! arena free list ([`TcpStack::flow_alloc`]/[`TcpStack::flow_free`],
//! generation-stamped so stale handles panic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bin;
mod config;
mod congestion;
mod conn;
mod stack;

pub use bin::Bin;
pub use config::{FuncCost, StackConfig};
pub use congestion::{CongestionPhase, CongestionState};
pub use conn::{ConnState, ConnectionRegions, FlowId};
pub use stack::{ExecCtx, ListenSocket, RxBatchOutcome, SynOutcome, TcpStack};
