//! Per-connection state and memory regions.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sim_core::ConnectionId;
use sim_mem::{MemorySystem, RegionId};

use crate::config::StackConfig;
use crate::congestion::CongestionState;

/// The memory regions belonging to one connection — the cacheable state
/// whose locality affinity protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionRegions {
    /// TCP control block (tcp_opt, inet sock, hash chain).
    pub tcp_ctx: RegionId,
    /// Generic socket structure (wait queues, callbacks, accounting).
    pub sock: RegionId,
    /// skb metadata pool (headers, shinfo).
    pub skb_meta: RegionId,
    /// Kernel payload area for the send queue (skb data).
    pub skb_data: RegionId,
    /// The application's transmit buffer (ttcp reuses one buffer, so it
    /// stays cached — the paper's TX setup).
    pub tx_app_buf: RegionId,
    /// The application's receive buffer.
    pub rx_app_buf: RegionId,
    /// The NIC RX buffer region packets are DMA'd into (copy source on
    /// RX — always uncached).
    pub rx_dma_buf: RegionId,
}

/// Mutable protocol state for one connection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ConnState {
    pub id: ConnectionId,
    pub regions: ConnectionRegions,
    /// Frames sitting in the socket receive queue (payload bytes each),
    /// with the DMA-buffer offset they point at.
    pub rx_queue: VecDeque<(u32, u64)>,
    /// Total bytes in the receive queue.
    pub rx_queue_bytes: u64,
    /// Data segments received since the last ACK we sent.
    pub frames_since_ack: u32,
    /// TX segments in flight (sent, not yet completed/acked).
    pub tx_inflight: u32,
    /// TX segments sent but not yet cumulatively ACKed by the peer —
    /// what the congestion window binds on.
    pub tx_unacked: u32,
    /// Rolling offset into the skb data area (send queue recycling).
    pub skb_data_cursor: u64,
    /// Rolling skb-metadata allocation cursor (advances 256 B per skb).
    pub meta_alloc_cursor: u64,
    /// Rolling skb-metadata free cursor — trails the allocation cursor,
    /// so frees touch the same slots allocations wrote (the cross-CPU
    /// transfer when allocation and free happen on different CPUs).
    pub meta_free_cursor: u64,
    /// Rolling offset into the RX DMA buffer area.
    pub rx_dma_cursor: u64,
    /// Bytes the application has consumed on RX.
    pub rx_bytes_delivered: u64,
    /// Bytes the application has submitted on TX.
    pub tx_bytes_submitted: u64,
    /// Reno congestion control for the send side.
    pub congestion: CongestionState,
    /// Whether the connection has completed the handshake. Connections
    /// start established (the paper's ttcp setup connects once before
    /// measurement) but still slow-start from the initial window during
    /// warm-up.
    pub established: bool,
}

impl ConnState {
    pub(crate) fn new(
        id: ConnectionId,
        mem: &mut MemorySystem,
        config: &StackConfig,
        rx_dma_buf: RegionId,
        max_message: u64,
    ) -> Self {
        let prefix = format!("conn{}", id.index());
        let regions = ConnectionRegions {
            tcp_ctx: mem.add_region(format!("{prefix}.tcp_ctx"), config.tcp_ctx_bytes),
            sock: mem.add_region(format!("{prefix}.sock"), config.sock_bytes),
            skb_meta: mem.add_region(format!("{prefix}.skb_meta"), config.skb_meta_bytes),
            skb_data: mem.add_region(format!("{prefix}.skb_data"), config.skb_data_bytes),
            tx_app_buf: mem.add_region(format!("{prefix}.tx_app_buf"), max_message.max(4096)),
            rx_app_buf: mem.add_region(format!("{prefix}.rx_app_buf"), max_message.max(4096)),
            rx_dma_buf,
        };
        ConnState {
            id,
            regions,
            rx_queue: VecDeque::new(),
            rx_queue_bytes: 0,
            frames_since_ack: 0,
            tx_inflight: 0,
            tx_unacked: 0,
            skb_data_cursor: 0,
            meta_alloc_cursor: 0,
            meta_free_cursor: 0,
            rx_dma_cursor: 0,
            rx_bytes_delivered: 0,
            tx_bytes_submitted: 0,
            congestion: CongestionState::new(config.initial_cwnd, config.max_cwnd),
            established: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::MemoryConfig;

    #[test]
    fn regions_are_allocated_distinct() {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let dma = mem.add_region("nic0.rx_buffers", 64 * 1024);
        let c = ConnState::new(
            ConnectionId::new(3),
            &mut mem,
            &StackConfig::paper(),
            dma,
            65536,
        );
        let r = c.regions;
        let all = [
            r.tcp_ctx,
            r.sock,
            r.skb_meta,
            r.skb_data,
            r.tx_app_buf,
            r.rx_app_buf,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(r.rx_dma_buf, dma);
        assert_eq!(mem.regions().get(r.tcp_ctx).name(), "conn3.tcp_ctx");
    }

    #[test]
    fn fresh_state_is_empty() {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let dma = mem.add_region("d", 1024);
        let c = ConnState::new(
            ConnectionId::new(0),
            &mut mem,
            &StackConfig::paper(),
            dma,
            128,
        );
        assert!(c.rx_queue.is_empty());
        assert_eq!(c.rx_queue_bytes, 0);
        assert_eq!(c.tx_inflight, 0);
    }
}
