//! Per-connection state: memory regions and the flow arena.
//!
//! Protocol state lives in [`FlowArena`], a structure-of-arrays arena
//! keyed by dense [`FlowId`] handles. One simulated cell touches a
//! handful of scalar fields per segment (cursors, queue byte counts,
//! in-flight counters) across every active flow; splitting each field
//! into its own dense array keeps those accesses on a few hot cache
//! lines instead of striding over ~200-byte per-connection structs, and
//! the generation stamp in the handle catches stale references the
//! moment an arena slot is ever reused.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sim_core::ConnectionId;
use sim_mem::{MemorySystem, RegionId, RegionName, RegionPlan};

use crate::config::StackConfig;
use crate::congestion::CongestionState;

/// The memory regions belonging to one connection — the cacheable state
/// whose locality affinity protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionRegions {
    /// TCP control block (tcp_opt, inet sock, hash chain).
    pub tcp_ctx: RegionId,
    /// Generic socket structure (wait queues, callbacks, accounting).
    pub sock: RegionId,
    /// skb metadata pool (headers, shinfo).
    pub skb_meta: RegionId,
    /// Kernel payload area for the send queue (skb data).
    pub skb_data: RegionId,
    /// The application's transmit buffer (ttcp reuses one buffer, so it
    /// stays cached — the paper's TX setup).
    pub tx_app_buf: RegionId,
    /// The application's receive buffer.
    pub rx_app_buf: RegionId,
    /// The NIC RX buffer region packets are DMA'd into (copy source on
    /// RX — always uncached).
    pub rx_dma_buf: RegionId,
}

/// A generation-stamped handle into the [`FlowArena`].
///
/// The index is dense (slot `i` of every field array); the generation
/// must match the arena's current generation for that slot, so a handle
/// kept across a slot reuse panics instead of silently reading another
/// flow's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowId {
    index: u32,
    gen: u32,
}

impl FlowId {
    /// The dense slot index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.index as usize
    }
}

/// Per-connection lifecycle state.
///
/// The listener side (the ISSUE's LISTEN state) is not a per-flow state:
/// it lives in the stack's single [`crate::stack::ListenSocket`]. A slot
/// on the free list is in `Closed`; `alloc` hands it out still `Closed`
/// until the SYN is processed in the softirq.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnState {
    /// No connection: the slot is free or the handshake hasn't started.
    Closed,
    /// SYN received and SYN-ACK sent; waiting in the accept backlog.
    SynRcvd,
    /// Fully open — the data fast path.
    Established,
    /// FIN sent, waiting for the peer's FIN-ACK before the slot is
    /// recycled.
    FinWait,
}

/// Structure-of-arrays arena of per-flow protocol state.
///
/// Field `x` of flow `f` is `x[f]` with `f = arena.slot(id)`; all arrays
/// share one length. Fields mirror the Linux state the model charges
/// for: socket receive queue, delayed-ACK counter, send-window
/// accounting, and the rolling slab/DMA cursors that decide which cache
/// lines each operation touches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FlowArena {
    /// Current generation of each slot (bumped on reuse).
    generations: Vec<u32>,
    pub ids: Vec<ConnectionId>,
    pub regions: Vec<ConnectionRegions>,
    /// Frames in the socket receive queue (payload bytes each), with the
    /// DMA-buffer offset they point at.
    pub rx_queue: Vec<VecDeque<(u32, u64)>>,
    /// Total bytes in the receive queue.
    pub rx_queue_bytes: Vec<u64>,
    /// Data segments received since the last ACK we sent.
    pub frames_since_ack: Vec<u32>,
    /// TX segments in flight (sent, not yet completed/acked).
    pub tx_inflight: Vec<u32>,
    /// TX segments sent but not yet cumulatively ACKed by the peer —
    /// what the congestion window binds on.
    pub tx_unacked: Vec<u32>,
    /// Rolling offset into the skb data area (send queue recycling).
    pub skb_data_cursor: Vec<u64>,
    /// Rolling skb-metadata allocation cursor (advances 256 B per skb).
    pub meta_alloc_cursor: Vec<u64>,
    /// Rolling skb-metadata free cursor — trails the allocation cursor,
    /// so frees touch the same slots allocations wrote (the cross-CPU
    /// transfer when allocation and free happen on different CPUs).
    pub meta_free_cursor: Vec<u64>,
    /// Rolling offset into the RX DMA buffer area.
    pub rx_dma_cursor: Vec<u64>,
    /// Bytes the application has consumed on RX.
    pub rx_bytes_delivered: Vec<u64>,
    /// Bytes the application has submitted on TX.
    pub tx_bytes_submitted: Vec<u64>,
    /// Reno congestion control for the send side.
    pub congestion: Vec<CongestionState>,
    /// Whether the connection has completed the handshake. Connections
    /// start established (the paper's ttcp setup connects once before
    /// measurement) but still slow-start from the initial window during
    /// warm-up.
    pub established: Vec<bool>,
    /// Lifecycle state of each slot (see [`ConnState`]).
    pub states: Vec<ConnState>,
    /// Recycled slot indices available for [`FlowArena::alloc`] (LIFO).
    free_list: Vec<u32>,
    /// Slots currently holding a live connection (not on the free list).
    live: usize,
}

impl FlowArena {
    pub(crate) fn with_capacity(n: usize) -> Self {
        FlowArena {
            generations: Vec::with_capacity(n),
            ids: Vec::with_capacity(n),
            regions: Vec::with_capacity(n),
            rx_queue: Vec::with_capacity(n),
            rx_queue_bytes: Vec::with_capacity(n),
            frames_since_ack: Vec::with_capacity(n),
            tx_inflight: Vec::with_capacity(n),
            tx_unacked: Vec::with_capacity(n),
            skb_data_cursor: Vec::with_capacity(n),
            meta_alloc_cursor: Vec::with_capacity(n),
            meta_free_cursor: Vec::with_capacity(n),
            rx_dma_cursor: Vec::with_capacity(n),
            rx_bytes_delivered: Vec::with_capacity(n),
            tx_bytes_submitted: Vec::with_capacity(n),
            congestion: Vec::with_capacity(n),
            established: Vec::with_capacity(n),
            states: Vec::with_capacity(n),
            free_list: Vec::new(),
            live: 0,
        }
    }

    /// The six per-flow region `(suffix, size)` requests, in the exact
    /// order [`insert`](Self::insert) has always allocated them — the
    /// bulk slab path replays this same sequence.
    fn region_requests(config: &StackConfig, max_message: u64) -> [(&'static str, u64); 6] {
        let app_buf = max_message.max(4096);
        [
            ("tcp_ctx", config.tcp_ctx_bytes),
            ("sock", config.sock_bytes),
            ("skb_meta", config.skb_meta_bytes),
            ("skb_data", config.skb_data_bytes),
            ("tx_app_buf", app_buf),
            ("rx_app_buf", app_buf),
        ]
    }

    /// Allocates the connection's memory regions and appends a fresh slot
    /// with empty protocol state.
    ///
    /// The production path is [`provision_all`](Self::provision_all);
    /// this single-flow form is the reference implementation the
    /// bulk-vs-loop equivalence test compares against.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn insert(
        &mut self,
        id: ConnectionId,
        mem: &mut MemorySystem,
        config: &StackConfig,
        rx_dma_buf: RegionId,
        max_message: u64,
    ) -> FlowId {
        let conn = id.index() as u32;
        let [tcp_ctx, sock, skb_meta, skb_data, tx_app_buf, rx_app_buf] =
            Self::region_requests(config, max_message).map(|(suffix, size)| {
                mem.add_region(RegionName::indexed("conn", conn, suffix), size)
            });
        let regions = ConnectionRegions {
            tcp_ctx,
            sock,
            skb_meta,
            skb_data,
            tx_app_buf,
            rx_app_buf,
            rx_dma_buf,
        };
        self.push_slot(id, regions, config)
    }

    /// Pre-provisions `conn_dma.len()` connection slots in one pass: the
    /// per-flow regions are carved out of simulated memory as a single
    /// contiguous strided slab (six regions per flow, flow-major — the
    /// exact allocation order an [`insert`](Self::insert) loop produces,
    /// so region ids, names, and bases are bit-identical), then every
    /// slot is appended with fresh protocol state. Churn-mode
    /// `alloc`/`free` recycles these slots and never allocates regions
    /// at runtime.
    pub(crate) fn provision_all(
        &mut self,
        mem: &mut MemorySystem,
        config: &StackConfig,
        conn_dma: &[RegionId],
        max_message: u64,
    ) {
        let requests = Self::region_requests(config, max_message);
        let mut plan = RegionPlan::with_capacity(requests.len() * conn_dma.len());
        for conn in 0..conn_dma.len() as u32 {
            for &(suffix, size) in &requests {
                plan.add(RegionName::indexed("conn", conn, suffix), size);
            }
        }
        let slab = mem.add_regions_bulk(plan);
        for (i, &rx_dma_buf) in conn_dma.iter().enumerate() {
            let stride = requests.len() * i;
            let regions = ConnectionRegions {
                tcp_ctx: slab.get(stride),
                sock: slab.get(stride + 1),
                skb_meta: slab.get(stride + 2),
                skb_data: slab.get(stride + 3),
                tx_app_buf: slab.get(stride + 4),
                rx_app_buf: slab.get(stride + 5),
                rx_dma_buf,
            };
            self.push_slot(ConnectionId::new(i as u32), regions, config);
        }
    }

    /// Appends one live slot with fresh protocol state.
    fn push_slot(
        &mut self,
        id: ConnectionId,
        regions: ConnectionRegions,
        config: &StackConfig,
    ) -> FlowId {
        let index = self.ids.len() as u32;
        self.generations.push(0);
        self.ids.push(id);
        self.regions.push(regions);
        self.rx_queue.push(VecDeque::new());
        self.rx_queue_bytes.push(0);
        self.frames_since_ack.push(0);
        self.tx_inflight.push(0);
        self.tx_unacked.push(0);
        self.skb_data_cursor.push(0);
        self.meta_alloc_cursor.push(0);
        self.meta_free_cursor.push(0);
        self.rx_dma_cursor.push(0);
        self.rx_bytes_delivered.push(0);
        self.tx_bytes_submitted.push(0);
        self.congestion
            .push(CongestionState::new(config.initial_cwnd, config.max_cwnd));
        self.established.push(true);
        self.states.push(ConnState::Established);
        self.live += 1;
        FlowId { index, gen: 0 }
    }

    /// Number of flows in the arena.
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// Number of slots currently allocated (not on the free list).
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Pops a recycled slot and resets its protocol state for a new
    /// connection, returning the slot's current-generation handle.
    ///
    /// The connection's memory regions and the rolling slab/DMA cursors
    /// are deliberately *kept*: the slab allocator cycles buffers through
    /// the same arena across connections, so a recycled slot inherits the
    /// cache weather of its predecessor — the same churn the real
    /// allocator produces. Returns `None` when the free list is empty.
    pub(crate) fn alloc(&mut self, config: &StackConfig) -> Option<FlowId> {
        let index = self.free_list.pop()?;
        let s = index as usize;
        self.rx_queue[s].clear();
        self.rx_queue_bytes[s] = 0;
        self.frames_since_ack[s] = 0;
        self.tx_inflight[s] = 0;
        self.tx_unacked[s] = 0;
        self.rx_bytes_delivered[s] = 0;
        self.tx_bytes_submitted[s] = 0;
        self.congestion[s] = CongestionState::new(config.initial_cwnd, config.max_cwnd);
        self.established[s] = false;
        self.states[s] = ConnState::Closed;
        self.live += 1;
        Some(FlowId {
            index,
            gen: self.generations[s],
        })
    }

    /// Frees a live slot: bumps the generation (so `flow` and any copies
    /// of it go stale) and pushes the slot on the free list.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is already stale.
    pub(crate) fn free(&mut self, flow: FlowId) {
        let s = self.slot(flow);
        self.generations[s] = self.generations[s].wrapping_add(1);
        self.established[s] = false;
        self.states[s] = ConnState::Closed;
        self.free_list.push(s as u32);
        self.live -= 1;
    }

    /// Moves every slot onto the free list (server-mode initialisation:
    /// slots are pre-inserted for their memory regions, then allocated on
    /// SYN arrival). Generations bump so pre-existing handles go stale.
    /// The LIFO free order is deterministic: highest slot pops first.
    pub(crate) fn free_all(&mut self) {
        self.free_list.clear();
        for s in 0..self.ids.len() {
            self.generations[s] = self.generations[s].wrapping_add(1);
            self.established[s] = false;
            self.states[s] = ConnState::Closed;
            self.free_list.push(s as u32);
        }
        self.live = 0;
    }

    /// The current-generation handle for the dense connection `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub(crate) fn handle(&self, conn: ConnectionId) -> FlowId {
        let index = conn.index();
        FlowId {
            index: index as u32,
            gen: self.generations[index],
        }
    }

    /// Resolves a handle to its slot index, checking the generation.
    ///
    /// # Panics
    ///
    /// Panics if the handle's generation doesn't match the slot's (the
    /// slot was reused since the handle was taken).
    #[inline]
    pub(crate) fn slot(&self, flow: FlowId) -> usize {
        let index = flow.index as usize;
        assert_eq!(
            self.generations[index], flow.gen,
            "stale FlowId: slot {index} was reused"
        );
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::MemoryConfig;

    fn arena_with_one(conn: u32) -> (MemorySystem, FlowArena, FlowId) {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let dma = mem.add_region("nic0.rx_buffers", 64 * 1024);
        let mut arena = FlowArena::with_capacity(1);
        let flow = arena.insert(
            ConnectionId::new(conn),
            &mut mem,
            &StackConfig::paper(),
            dma,
            65536,
        );
        (mem, arena, flow)
    }

    #[test]
    fn regions_are_allocated_distinct() {
        let (mem, arena, flow) = arena_with_one(3);
        let r = arena.regions[arena.slot(flow)];
        let all = [
            r.tcp_ctx,
            r.sock,
            r.skb_meta,
            r.skb_data,
            r.tx_app_buf,
            r.rx_app_buf,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(mem.regions().get(r.tcp_ctx).name(), "conn3.tcp_ctx");
    }

    #[test]
    fn provision_all_matches_insert_loop() {
        let config = StackConfig::paper();
        let (mut mem_a, mut mem_b) = (
            MemorySystem::new(MemoryConfig::paper_sut(2)),
            MemorySystem::new(MemoryConfig::paper_sut(2)),
        );
        let dma_a: Vec<_> = (0..3)
            .map(|i| mem_a.add_region(format!("nic{i}.rx_buffers"), 64 * 1024))
            .collect();
        let dma_b: Vec<_> = (0..3)
            .map(|i| mem_b.add_region(format!("nic{i}.rx_buffers"), 64 * 1024))
            .collect();
        let mut loop_arena = FlowArena::with_capacity(3);
        for (i, &dma) in dma_a.iter().enumerate() {
            loop_arena.insert(ConnectionId::new(i as u32), &mut mem_a, &config, dma, 65536);
        }
        let mut bulk_arena = FlowArena::with_capacity(3);
        bulk_arena.provision_all(&mut mem_b, &config, &dma_b, 65536);
        assert_eq!(bulk_arena.len(), loop_arena.len());
        assert_eq!(bulk_arena.live(), loop_arena.live());
        for s in 0..3 {
            assert_eq!(bulk_arena.regions[s], loop_arena.regions[s]);
            assert_eq!(bulk_arena.ids[s], loop_arena.ids[s]);
            let r = bulk_arena.regions[s];
            for id in [
                r.tcp_ctx,
                r.sock,
                r.skb_meta,
                r.skb_data,
                r.tx_app_buf,
                r.rx_app_buf,
            ] {
                assert_eq!(mem_b.regions().get(id), mem_a.regions().get(id));
            }
        }
        assert_eq!(mem_b.regions().len(), mem_a.regions().len());
        assert_eq!(mem_b.regions().footprint(), mem_a.regions().footprint());
        assert_eq!(
            mem_b.regions().get(loop_arena.regions[2].skb_data).name(),
            "conn2.skb_data"
        );
    }

    #[test]
    fn fresh_state_is_empty() {
        let (_mem, arena, flow) = arena_with_one(0);
        let s = arena.slot(flow);
        assert!(arena.rx_queue[s].is_empty());
        assert_eq!(arena.rx_queue_bytes[s], 0);
        assert_eq!(arena.tx_inflight[s], 0);
        assert!(arena.established[s]);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn handles_round_trip_through_slots() {
        let (_mem, arena, flow) = arena_with_one(0);
        assert_eq!(arena.handle(ConnectionId::new(0)), flow);
        assert_eq!(flow.index(), 0);
        assert_eq!(arena.slot(flow), 0);
    }

    #[test]
    #[should_panic(expected = "stale FlowId")]
    fn stale_generation_is_rejected() {
        let (_mem, mut arena, flow) = arena_with_one(0);
        // Simulate a slot reuse: bump the generation behind the handle.
        arena.generations[0] += 1;
        let _ = arena.slot(flow);
    }

    fn arena_with_slots(n: u32) -> (MemorySystem, FlowArena) {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let dma = mem.add_region("nic0.rx_buffers", 64 * 1024);
        let mut arena = FlowArena::with_capacity(n as usize);
        for i in 0..n {
            arena.insert(
                ConnectionId::new(i),
                &mut mem,
                &StackConfig::paper(),
                dma,
                4096,
            );
        }
        (mem, arena)
    }

    #[test]
    fn alloc_fails_when_no_slot_is_free() {
        let (_mem, mut arena) = arena_with_slots(2);
        // insert() leaves every slot live; nothing to alloc.
        assert!(arena.alloc(&StackConfig::paper()).is_none());
        assert_eq!(arena.live(), 2);
    }

    #[test]
    fn free_then_alloc_recycles_with_bumped_generation() {
        let (_mem, mut arena) = arena_with_slots(1);
        let config = StackConfig::paper();
        let old = arena.handle(ConnectionId::new(0));
        arena.rx_queue_bytes[0] = 77;
        arena.tx_unacked[0] = 3;
        arena.free(old);
        assert_eq!(arena.live(), 0);
        let fresh = arena.alloc(&config).expect("one slot free");
        assert_eq!(fresh.index(), 0);
        assert_ne!(fresh, old, "recycled handle must carry a new generation");
        assert_eq!(arena.slot(fresh), 0);
        assert_eq!(arena.rx_queue_bytes[0], 0, "protocol state resets");
        assert_eq!(arena.tx_unacked[0], 0);
        assert_eq!(arena.states[0], ConnState::Closed);
        assert!(!arena.established[0]);
        assert_eq!(arena.live(), 1);
    }

    #[test]
    #[should_panic(expected = "stale FlowId")]
    fn freed_handle_is_stale() {
        let (_mem, mut arena) = arena_with_slots(1);
        let old = arena.handle(ConnectionId::new(0));
        arena.free(old);
        let _ = arena.slot(old);
    }

    #[test]
    fn free_all_empties_the_arena_deterministically() {
        let (_mem, mut arena) = arena_with_slots(3);
        let config = StackConfig::paper();
        arena.free_all();
        assert_eq!(arena.live(), 0);
        // LIFO: highest slot pops first.
        assert_eq!(arena.alloc(&config).unwrap().index(), 2);
        assert_eq!(arena.alloc(&config).unwrap().index(), 1);
        assert_eq!(arena.alloc(&config).unwrap().index(), 0);
        assert!(arena.alloc(&config).is_none());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        const SLOTS: usize = 8;

        proptest! {
            /// Satellite: random alloc/free sequences against a
            /// HashMap<slot, FlowId> model of the live set. Recycled
            /// slots must hand out a different generation than the
            /// handle they invalidated, the live count must equal the
            /// model's size after every op, and every live handle must
            /// keep resolving to its slot.
            #[test]
            fn alloc_free_matches_hashmap_model(
                ops in prop::collection::vec((0u8..2, 0usize..SLOTS), 0..96),
            ) {
                let (_mem, mut arena) = arena_with_slots(SLOTS as u32);
                let config = StackConfig::paper();
                arena.free_all();
                let mut model: HashMap<usize, FlowId> = HashMap::new();
                let mut retired: Vec<FlowId> = Vec::new();
                for (op, pick) in ops {
                    match op {
                        0 => match arena.alloc(&config) {
                            Some(flow) => {
                                prop_assert!(model.len() < SLOTS);
                                let slot = flow.index();
                                prop_assert!(!model.contains_key(&slot));
                                if let Some(old) = retired.iter().find(|r| r.index() == slot) {
                                    prop_assert_ne!(
                                        *old, flow,
                                        "recycled slot must bump generation"
                                    );
                                }
                                model.insert(slot, flow);
                            }
                            None => prop_assert_eq!(model.len(), SLOTS),
                        },
                        _ => {
                            if model.is_empty() {
                                continue;
                            }
                            let mut live: Vec<usize> = model.keys().copied().collect();
                            live.sort_unstable();
                            let slot = live[pick % live.len()];
                            let flow = model.remove(&slot).unwrap();
                            arena.free(flow);
                            retired.push(flow);
                        }
                    }
                    prop_assert_eq!(arena.live(), model.len());
                    for (&slot, &flow) in &model {
                        prop_assert_eq!(arena.slot(flow), slot);
                    }
                }
                // Every retired handle is stale: its generation no longer
                // matches the slot's.
                for old in retired {
                    prop_assert_ne!(arena.generations[old.index()], old.gen);
                }
            }
        }
    }
}
