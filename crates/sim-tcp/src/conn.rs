//! Per-connection state: memory regions and the flow arena.
//!
//! Protocol state lives in [`FlowArena`], a structure-of-arrays arena
//! keyed by dense [`FlowId`] handles. One simulated cell touches a
//! handful of scalar fields per segment (cursors, queue byte counts,
//! in-flight counters) across every active flow; splitting each field
//! into its own dense array keeps those accesses on a few hot cache
//! lines instead of striding over ~200-byte per-connection structs, and
//! the generation stamp in the handle catches stale references the
//! moment an arena slot is ever reused.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sim_core::ConnectionId;
use sim_mem::{MemorySystem, RegionId};

use crate::config::StackConfig;
use crate::congestion::CongestionState;

/// The memory regions belonging to one connection — the cacheable state
/// whose locality affinity protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionRegions {
    /// TCP control block (tcp_opt, inet sock, hash chain).
    pub tcp_ctx: RegionId,
    /// Generic socket structure (wait queues, callbacks, accounting).
    pub sock: RegionId,
    /// skb metadata pool (headers, shinfo).
    pub skb_meta: RegionId,
    /// Kernel payload area for the send queue (skb data).
    pub skb_data: RegionId,
    /// The application's transmit buffer (ttcp reuses one buffer, so it
    /// stays cached — the paper's TX setup).
    pub tx_app_buf: RegionId,
    /// The application's receive buffer.
    pub rx_app_buf: RegionId,
    /// The NIC RX buffer region packets are DMA'd into (copy source on
    /// RX — always uncached).
    pub rx_dma_buf: RegionId,
}

/// A generation-stamped handle into the [`FlowArena`].
///
/// The index is dense (slot `i` of every field array); the generation
/// must match the arena's current generation for that slot, so a handle
/// kept across a slot reuse panics instead of silently reading another
/// flow's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowId {
    index: u32,
    gen: u32,
}

impl FlowId {
    /// The dense slot index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.index as usize
    }
}

/// Structure-of-arrays arena of per-flow protocol state.
///
/// Field `x` of flow `f` is `x[f]` with `f = arena.slot(id)`; all arrays
/// share one length. Fields mirror the Linux state the model charges
/// for: socket receive queue, delayed-ACK counter, send-window
/// accounting, and the rolling slab/DMA cursors that decide which cache
/// lines each operation touches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FlowArena {
    /// Current generation of each slot (bumped on reuse).
    generations: Vec<u32>,
    pub ids: Vec<ConnectionId>,
    pub regions: Vec<ConnectionRegions>,
    /// Frames in the socket receive queue (payload bytes each), with the
    /// DMA-buffer offset they point at.
    pub rx_queue: Vec<VecDeque<(u32, u64)>>,
    /// Total bytes in the receive queue.
    pub rx_queue_bytes: Vec<u64>,
    /// Data segments received since the last ACK we sent.
    pub frames_since_ack: Vec<u32>,
    /// TX segments in flight (sent, not yet completed/acked).
    pub tx_inflight: Vec<u32>,
    /// TX segments sent but not yet cumulatively ACKed by the peer —
    /// what the congestion window binds on.
    pub tx_unacked: Vec<u32>,
    /// Rolling offset into the skb data area (send queue recycling).
    pub skb_data_cursor: Vec<u64>,
    /// Rolling skb-metadata allocation cursor (advances 256 B per skb).
    pub meta_alloc_cursor: Vec<u64>,
    /// Rolling skb-metadata free cursor — trails the allocation cursor,
    /// so frees touch the same slots allocations wrote (the cross-CPU
    /// transfer when allocation and free happen on different CPUs).
    pub meta_free_cursor: Vec<u64>,
    /// Rolling offset into the RX DMA buffer area.
    pub rx_dma_cursor: Vec<u64>,
    /// Bytes the application has consumed on RX.
    pub rx_bytes_delivered: Vec<u64>,
    /// Bytes the application has submitted on TX.
    pub tx_bytes_submitted: Vec<u64>,
    /// Reno congestion control for the send side.
    pub congestion: Vec<CongestionState>,
    /// Whether the connection has completed the handshake. Connections
    /// start established (the paper's ttcp setup connects once before
    /// measurement) but still slow-start from the initial window during
    /// warm-up.
    pub established: Vec<bool>,
}

impl FlowArena {
    pub(crate) fn with_capacity(n: usize) -> Self {
        FlowArena {
            generations: Vec::with_capacity(n),
            ids: Vec::with_capacity(n),
            regions: Vec::with_capacity(n),
            rx_queue: Vec::with_capacity(n),
            rx_queue_bytes: Vec::with_capacity(n),
            frames_since_ack: Vec::with_capacity(n),
            tx_inflight: Vec::with_capacity(n),
            tx_unacked: Vec::with_capacity(n),
            skb_data_cursor: Vec::with_capacity(n),
            meta_alloc_cursor: Vec::with_capacity(n),
            meta_free_cursor: Vec::with_capacity(n),
            rx_dma_cursor: Vec::with_capacity(n),
            rx_bytes_delivered: Vec::with_capacity(n),
            tx_bytes_submitted: Vec::with_capacity(n),
            congestion: Vec::with_capacity(n),
            established: Vec::with_capacity(n),
        }
    }

    /// Allocates the connection's memory regions and appends a fresh slot
    /// with empty protocol state.
    pub(crate) fn insert(
        &mut self,
        id: ConnectionId,
        mem: &mut MemorySystem,
        config: &StackConfig,
        rx_dma_buf: RegionId,
        max_message: u64,
    ) -> FlowId {
        let prefix = format!("conn{}", id.index());
        let regions = ConnectionRegions {
            tcp_ctx: mem.add_region(format!("{prefix}.tcp_ctx"), config.tcp_ctx_bytes),
            sock: mem.add_region(format!("{prefix}.sock"), config.sock_bytes),
            skb_meta: mem.add_region(format!("{prefix}.skb_meta"), config.skb_meta_bytes),
            skb_data: mem.add_region(format!("{prefix}.skb_data"), config.skb_data_bytes),
            tx_app_buf: mem.add_region(format!("{prefix}.tx_app_buf"), max_message.max(4096)),
            rx_app_buf: mem.add_region(format!("{prefix}.rx_app_buf"), max_message.max(4096)),
            rx_dma_buf,
        };
        let index = self.ids.len() as u32;
        self.generations.push(0);
        self.ids.push(id);
        self.regions.push(regions);
        self.rx_queue.push(VecDeque::new());
        self.rx_queue_bytes.push(0);
        self.frames_since_ack.push(0);
        self.tx_inflight.push(0);
        self.tx_unacked.push(0);
        self.skb_data_cursor.push(0);
        self.meta_alloc_cursor.push(0);
        self.meta_free_cursor.push(0);
        self.rx_dma_cursor.push(0);
        self.rx_bytes_delivered.push(0);
        self.tx_bytes_submitted.push(0);
        self.congestion
            .push(CongestionState::new(config.initial_cwnd, config.max_cwnd));
        self.established.push(true);
        FlowId { index, gen: 0 }
    }

    /// Number of flows in the arena.
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// The current-generation handle for the dense connection `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is out of range.
    pub(crate) fn handle(&self, conn: ConnectionId) -> FlowId {
        let index = conn.index();
        FlowId {
            index: index as u32,
            gen: self.generations[index],
        }
    }

    /// Resolves a handle to its slot index, checking the generation.
    ///
    /// # Panics
    ///
    /// Panics if the handle's generation doesn't match the slot's (the
    /// slot was reused since the handle was taken).
    #[inline]
    pub(crate) fn slot(&self, flow: FlowId) -> usize {
        let index = flow.index as usize;
        assert_eq!(
            self.generations[index], flow.gen,
            "stale FlowId: slot {index} was reused"
        );
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::MemoryConfig;

    fn arena_with_one(conn: u32) -> (MemorySystem, FlowArena, FlowId) {
        let mut mem = MemorySystem::new(MemoryConfig::paper_sut(2));
        let dma = mem.add_region("nic0.rx_buffers", 64 * 1024);
        let mut arena = FlowArena::with_capacity(1);
        let flow = arena.insert(
            ConnectionId::new(conn),
            &mut mem,
            &StackConfig::paper(),
            dma,
            65536,
        );
        (mem, arena, flow)
    }

    #[test]
    fn regions_are_allocated_distinct() {
        let (mem, arena, flow) = arena_with_one(3);
        let r = arena.regions[arena.slot(flow)];
        let all = [
            r.tcp_ctx,
            r.sock,
            r.skb_meta,
            r.skb_data,
            r.tx_app_buf,
            r.rx_app_buf,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(mem.regions().get(r.tcp_ctx).name(), "conn3.tcp_ctx");
    }

    #[test]
    fn fresh_state_is_empty() {
        let (_mem, arena, flow) = arena_with_one(0);
        let s = arena.slot(flow);
        assert!(arena.rx_queue[s].is_empty());
        assert_eq!(arena.rx_queue_bytes[s], 0);
        assert_eq!(arena.tx_inflight[s], 0);
        assert!(arena.established[s]);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn handles_round_trip_through_slots() {
        let (_mem, arena, flow) = arena_with_one(0);
        assert_eq!(arena.handle(ConnectionId::new(0)), flow);
        assert_eq!(flow.index(), 0);
        assert_eq!(arena.slot(flow), 0);
    }

    #[test]
    #[should_panic(expected = "stale FlowId")]
    fn stale_generation_is_rejected() {
        let (_mem, mut arena, flow) = arena_with_one(0);
        // Simulate a slot reuse: bump the generation behind the handle.
        arena.generations[0] += 1;
        let _ = arena.slot(flow);
    }
}
