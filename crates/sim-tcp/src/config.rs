//! Calibrated per-function cost model.
//!
//! Each modelled kernel function carries a [`FuncCost`]: instructions per
//! call plus instructions per KB of payload handled, a base CPI, fixed
//! cycles (privilege transitions, I/O port reads), branch statistics and
//! a code footprint. The *memory* behaviour — and therefore the CPI/MPI
//! actually measured — comes from the cache model, not from these knobs.
//!
//! The numbers are calibrated so that the no-affinity baseline reproduces
//! the shape of the paper's Table 1 (bin shares, CPI ordering, the
//! RX-copy pathology). They are deliberately public: the ablation benches
//! sweep them.

use serde::{Deserialize, Serialize};

use crate::bin::Bin;

/// Cost knobs for one modelled function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuncCost {
    /// Bin the function belongs to.
    pub bin: Bin,
    /// Instructions retired per invocation, independent of payload.
    pub per_call_instr: u64,
    /// Instructions retired per KB of payload handled by the invocation.
    pub per_kb_instr: u64,
    /// Base CPI with a perfect memory system.
    pub base_cpi: f64,
    /// Fixed cycles per invocation (syscall entry, I/O port reads…).
    pub fixed_cycles: u64,
    /// Fraction of instructions that are branches.
    pub branch_fraction: f64,
    /// Fraction of branches mispredicted.
    pub mispredict_rate: f64,
    /// Code footprint in bytes (trace-cache pressure).
    pub code_bytes: u64,
}

impl FuncCost {
    /// Instructions for an invocation handling `bytes` of payload.
    #[must_use]
    pub fn instructions(&self, bytes: u64) -> u64 {
        self.per_call_instr + self.per_kb_instr * bytes / 1024
    }
}

/// The full stack configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// TCP maximum segment size.
    pub mss: u32,
    /// Segments queued per writer wake-up episode on TX (send-buffer
    /// drain granularity): a 64 KB write blocks and resumes several
    /// times, re-entering the sockets interface each time.
    pub tx_wake_batch: u32,
    /// Probability that a lock acquisition finds the lock held *when the
    /// connection is concurrently processed on another CPU*. Zero
    /// cross-CPU activity (full affinity) means zero contention.
    pub cross_cpu_contention: f64,
    /// Data segments per ACK sent back to the peer (delayed ACK).
    pub ack_every: u32,
    /// Initial congestion window in segments (RFC 2581-era value).
    pub initial_cwnd: u32,
    /// Maximum congestion window in segments (bounded by the send
    /// buffer in practice).
    pub max_cwnd: u32,
    /// Bytes of TCP context (tcp_opt + inet sock + hash chain) per
    /// connection.
    pub tcp_ctx_bytes: u64,
    /// Bytes of generic socket structure per connection.
    pub sock_bytes: u64,
    /// Bytes of skb metadata pool per connection.
    pub skb_meta_bytes: u64,
    /// Bytes of kernel skb payload area per connection (send queue).
    pub skb_data_bytes: u64,

    // --- Interface ---
    /// `system_call` entry/exit.
    pub system_call: FuncCost,
    /// `sock_write`/`sock_sendmsg` (TX) — also covers `inet_sendmsg`.
    pub sock_write: FuncCost,
    /// `sock_read`/`sock_recvmsg` (RX).
    pub sock_read: FuncCost,
    /// `__wake_up` + `schedule` slice charged to the sockets interface.
    pub wake_up: FuncCost,

    // --- Engine ---
    /// `tcp_sendmsg` (per segment, with per-KB component).
    pub tcp_sendmsg: FuncCost,
    /// `tcp_transmit_skb` (per segment or ACK).
    pub tcp_transmit_skb: FuncCost,
    /// `tcp_v4_rcv` (per received frame, incl. ACKs).
    pub tcp_v4_rcv: FuncCost,
    /// `tcp_rcv_established` (per received data frame).
    pub tcp_rcv_established: FuncCost,
    /// `__tcp_select_window` + ACK decision logic.
    pub tcp_select_window: FuncCost,
    /// `tcp_v4_connect` — active open (SYN construction, route lookup,
    /// hash insertion). Exercised by the connection-churn workloads the
    /// paper's §4 contrasts with the fast path.
    pub tcp_connect: FuncCost,
    /// `tcp_retransmit_skb` — loss recovery.
    pub tcp_retransmit: FuncCost,
    /// `tcp_close` / FIN handling — teardown.
    pub tcp_close: FuncCost,
    /// `tcp_v4_conn_request` — passive open: SYN validation, request
    /// sock allocation, SYN-ACK construction (server-mode softirq).
    pub tcp_conn_request: FuncCost,
    /// `inet_csk_accept` — dequeue from the accept backlog and graft the
    /// socket onto the server task.
    pub tcp_accept: FuncCost,
    /// `tcp_fin` — process the final ACK of the teardown and unhash the
    /// connection.
    pub tcp_fin: FuncCost,

    // --- Buf Mgmt ---
    /// `alloc_skb` (per segment).
    pub alloc_skb: FuncCost,
    /// `kfree_skb` (per segment, on completion/after copy).
    pub kfree_skb: FuncCost,
    /// Socket buffer accounting (`sock_wfree`/`skb_entail`/queueing).
    pub skb_queue: FuncCost,

    // --- Copies ---
    /// TX copy-with-checksum from user (`csum_and_copy_from_user`):
    /// the carefully unrolled loop, ~1 instruction per byte.
    pub csum_copy_from_user: FuncCost,
    /// RX copy to user (`__copy_to_user`, `rep movl`): few architectural
    /// instructions moving a lot of (uncached) data.
    pub copy_to_user: FuncCost,

    // --- Driver ---
    /// `e1000_xmit_frame` (per segment).
    pub e1000_xmit: FuncCost,
    /// `e1000_clean_tx_irq` (per completed segment).
    pub e1000_clean_tx: FuncCost,
    /// `e1000_clean_rx_irq` (per received frame).
    pub e1000_clean_rx: FuncCost,
    /// `IRQ0xNN_interrupt` top half (per interrupt).
    pub irq_top_half: FuncCost,

    // --- Timers ---
    /// `do_gettimeofday` — on this era's chipset an uncached I/O timer
    /// read, ~1.4 µs. Taken per full-MSS frame in the RX bottom half
    /// (timestamp comparison path); sub-MSS frames take the cheap path.
    pub do_gettimeofday: FuncCost,
    /// Cheap-path timestamp bookkeeping for sub-MSS frames.
    pub timestamp_fast: FuncCost,
    /// `mod_timer` (retransmit re-arm per TX episode, delack per RX batch).
    pub mod_timer: FuncCost,
}

impl StackConfig {
    /// The calibrated configuration reproducing the paper's Table 1
    /// no-affinity baseline shape.
    #[must_use]
    pub fn paper() -> Self {
        use Bin::*;
        let f = |bin,
                 per_call_instr,
                 per_kb_instr,
                 base_cpi,
                 fixed_cycles,
                 branch_fraction,
                 mispredict_rate,
                 code_bytes| FuncCost {
            bin,
            per_call_instr,
            per_kb_instr,
            base_cpi,
            fixed_cycles,
            branch_fraction,
            mispredict_rate,
            code_bytes,
        };
        StackConfig {
            mss: sim_net::wire::DEFAULT_MSS,
            tx_wake_batch: 4,
            cross_cpu_contention: 0.015,
            ack_every: 2,
            initial_cwnd: 2,
            max_cwnd: 256,
            tcp_ctx_bytes: 1536,
            sock_bytes: 1024,
            // The skb pools model slab-allocator churn: the allocator
            // cycles buffers through a large arena, so freshly allocated
            // skb memory has usually aged out of cache. Sized so eight
            // connections' arenas well exceed the 2 MB LLC — the capacity
            // pressure behind the paper's MPI ≈ 0.005-0.008 on TX.
            skb_meta_bytes: 64 * 1024,
            skb_data_bytes: 640 * 1024,

            // Interface: few instructions, huge fixed costs (privilege
            // transitions, scheduler) => the paper's CPI ~8-17.
            system_call: f(Interface, 60, 0, 1.2, 1000, 0.20, 0.002, 640),
            sock_write: f(Interface, 75, 0, 1.4, 420, 0.18, 0.002, 1024),
            sock_read: f(Interface, 75, 0, 1.4, 420, 0.22, 0.002, 1024),
            wake_up: f(Interface, 90, 0, 1.5, 1100, 0.20, 0.002, 768),

            // Engine: moderate instruction streams over the TCP context.
            tcp_sendmsg: f(Engine, 220, 300, 0.9, 0, 0.17, 0.006, 2048),
            tcp_transmit_skb: f(Engine, 180, 200, 0.9, 0, 0.17, 0.006, 1792),
            tcp_v4_rcv: f(Engine, 190, 120, 0.9, 0, 0.16, 0.007, 1536),
            tcp_rcv_established: f(Engine, 230, 180, 0.9, 0, 0.16, 0.007, 2048),
            tcp_select_window: f(Engine, 90, 0, 0.9, 0, 0.15, 0.006, 512),
            tcp_connect: f(Engine, 850, 0, 1.1, 900, 0.16, 0.010, 2048),
            tcp_retransmit: f(Engine, 420, 180, 1.0, 0, 0.16, 0.008, 1024),
            tcp_close: f(Engine, 520, 0, 1.1, 400, 0.16, 0.008, 1024),
            // Lifecycle (server side): passive open is a little cheaper
            // than the active open's route lookup; accept pays a
            // privilege transition; the FIN-ACK path is close's dual.
            tcp_conn_request: f(Engine, 700, 0, 1.1, 600, 0.16, 0.010, 1792),
            tcp_accept: f(Engine, 260, 0, 1.2, 700, 0.18, 0.006, 1024),
            tcp_fin: f(Engine, 380, 0, 1.1, 200, 0.16, 0.008, 768),

            // Buf mgmt: pointer-chasing through slab/skb structures.
            alloc_skb: f(BufMgmt, 80, 340, 1.0, 0, 0.17, 0.008, 1024),
            kfree_skb: f(BufMgmt, 60, 140, 1.0, 0, 0.17, 0.006, 768),
            skb_queue: f(BufMgmt, 55, 160, 1.0, 0, 0.16, 0.006, 768),

            // Copies.
            csum_copy_from_user: f(Copies, 40, 960, 1.3, 0, 0.02, 0.003, 512),
            copy_to_user: f(Copies, 30, 78, 1.6, 0, 0.10, 0.001, 256),

            // Driver.
            e1000_xmit: f(Driver, 45, 120, 1.4, 0, 0.15, 0.015, 1536),
            e1000_clean_tx: f(Driver, 30, 30, 1.4, 0, 0.15, 0.012, 1024),
            e1000_clean_rx: f(Driver, 70, 60, 1.4, 0, 0.13, 0.014, 1536),
            irq_top_half: f(Driver, 65, 0, 1.5, 220, 0.14, 0.020, 896),

            // Timers.
            do_gettimeofday: f(Timers, 70, 0, 1.2, 2600, 0.10, 0.001, 384),
            timestamp_fast: f(Timers, 35, 0, 1.2, 0, 0.12, 0.001, 256),
            mod_timer: f(Timers, 55, 0, 1.3, 1100, 0.14, 0.002, 512),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`sim_core::SimError::InvalidConfig`] for zero MSS, zero
    /// wake batch, or out-of-range probabilities.
    pub fn validate(&self) -> sim_core::Result<()> {
        use sim_core::SimError;
        if self.mss == 0 {
            return Err(SimError::config("mss must be positive"));
        }
        if self.tx_wake_batch == 0 {
            return Err(SimError::config("tx_wake_batch must be positive"));
        }
        if self.ack_every == 0 {
            return Err(SimError::config("ack_every must be positive"));
        }
        if self.initial_cwnd == 0 || self.initial_cwnd > self.max_cwnd {
            return Err(SimError::config("initial_cwnd must be in 1..=max_cwnd"));
        }
        if !(0.0..=1.0).contains(&self.cross_cpu_contention) {
            return Err(SimError::config("cross_cpu_contention must be in [0,1]"));
        }
        Ok(())
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        StackConfig::paper().validate().unwrap();
    }

    #[test]
    fn instructions_scale_with_bytes() {
        let c = StackConfig::paper();
        let base = c.tcp_sendmsg.instructions(0);
        let kb = c.tcp_sendmsg.instructions(1024);
        assert_eq!(base, c.tcp_sendmsg.per_call_instr);
        assert_eq!(kb - base, c.tcp_sendmsg.per_kb_instr);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = StackConfig::paper();
        c.mss = 0;
        assert!(c.validate().is_err());
        let mut c = StackConfig::paper();
        c.tx_wake_batch = 0;
        assert!(c.validate().is_err());
        let mut c = StackConfig::paper();
        c.cross_cpu_contention = 1.5;
        assert!(c.validate().is_err());
        let mut c = StackConfig::paper();
        c.ack_every = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tx_copy_is_roughly_one_instruction_per_byte() {
        let c = StackConfig::paper();
        let instr = c.csum_copy_from_user.instructions(1448);
        assert!((1200..=1600).contains(&instr), "got {instr}");
    }

    #[test]
    fn rx_copy_retires_few_instructions() {
        // rep movl: one architectural instruction moves many bytes.
        let c = StackConfig::paper();
        let instr = c.copy_to_user.instructions(65536);
        assert!(
            instr < 6000,
            "rep-movl model retires few instructions, got {instr}"
        );
    }
}
