//! Property-based tests for the analysis layer.

use affinity_sim::analysis::{spearman, spearman_critical_one_tail_p05};
use proptest::prelude::*;

proptest! {
    /// Spearman's rho is bounded, symmetric in its arguments, and
    /// invariant under strictly monotone transforms of either sample.
    #[test]
    fn spearman_properties(xs in prop::collection::vec(-1e3f64..1e3, 2..30)) {
        let ys: Vec<f64> = xs.iter().map(|&x| x * 2.0 + 1.0).collect();
        let rho = spearman(&xs, &ys);
        prop_assert!((-1.0..=1.0001).contains(&rho));
        // Linear transform preserves ranks exactly.
        let distinct = {
            let mut v = xs.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.windows(2).all(|w| w[0] != w[1])
        };
        if distinct {
            prop_assert!((rho - 1.0).abs() < 1e-9, "monotone transform must give rho=1, got {rho}");
        }
    }

    #[test]
    fn spearman_is_symmetric(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..30),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let a = spearman(&xs, &ys);
        let b = spearman(&ys, &xs);
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn spearman_negation_flips_sign(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..30),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let neg_ys: Vec<f64> = ys.iter().map(|y| -y).collect();
        let a = spearman(&xs, &ys);
        let b = spearman(&xs, &neg_ys);
        prop_assert!((a + b).abs() < 1e-9, "negating one sample must flip rho");
    }

    /// Critical values decrease with sample size (more data, easier
    /// significance).
    #[test]
    fn critical_values_monotone(n in 4usize..10) {
        let a = spearman_critical_one_tail_p05(n).unwrap();
        let b = spearman_critical_one_tail_p05(n + 1).unwrap();
        prop_assert!(b <= a);
    }
}
