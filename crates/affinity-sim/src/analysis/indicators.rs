//! Performance-impact indicators (the paper's Figure 5).
//!
//! Each monitored event's occurrence count is multiplied by its expected
//! penalty and divided by total cycles:
//!
//! ```text
//! % time attributed to event = count(event) × cost(event) / total cycles
//! ```
//!
//! A first-order approximation — penalties on a deep out-of-order
//! pipeline are not additive — but, as in the paper, good enough to rank
//! which events matter. The paper's finding: machine clears and LLC
//! misses dominate everywhere.

use serde::{Deserialize, Serialize};
use sim_cpu::{EventCosts, HwEvent, PerfCounters};

/// One row of a Figure 5 panel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventImpact {
    /// The event.
    pub event: HwEvent,
    /// Penalty used (cycles per occurrence).
    pub cost: u64,
    /// Occurrences.
    pub count: u64,
    /// Fraction of total cycles attributed: `count × cost / cycles`.
    pub share: f64,
}

/// Computes the impact-indicator table for a counter set.
///
/// The returned rows cover the paper's seven indicator events in its
/// order, plus the "Instr" lower bound (instructions at the theoretical
/// 3-per-cycle retire rate) as the final row.
#[must_use]
pub fn impact_indicators(counters: &PerfCounters, costs: &EventCosts) -> Vec<EventImpact> {
    let cycles = counters.cycles.max(1) as f64;
    let mut rows: Vec<EventImpact> = [
        HwEvent::MachineClear,
        HwEvent::TcMiss,
        HwEvent::L2Miss,
        HwEvent::LlcMiss,
        HwEvent::ItlbMiss,
        HwEvent::DtlbMiss,
        HwEvent::BranchMispredict,
    ]
    .into_iter()
    .map(|event| {
        let cost = costs.penalty(event).expect("indicator events have costs");
        let count = counters.get(event);
        EventImpact {
            event,
            cost,
            count,
            share: count as f64 * cost as f64 / cycles,
        }
    })
    .collect();
    // The paper's academic lower bound: 3 retired instructions per cycle.
    rows.push(EventImpact {
        event: HwEvent::Instructions,
        cost: 0,
        count: counters.instructions,
        share: counters.instructions as f64 / 3.0 / cycles,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> PerfCounters {
        let mut c = PerfCounters::default();
        c.cycles = 1_000_000;
        c.instructions = 300_000;
        c.machine_clears = 1_000; // x500 = 50% of cycles
        c.llc_misses = 1_000; // x300 = 30%
        c.tc_misses = 500; // x20 = 1%
        c.br_mispredicts = 100; // x30 = 0.3%
        c
    }

    #[test]
    fn shares_match_paper_formula() {
        let rows = impact_indicators(&counters(), &EventCosts::paper());
        let get = |e: HwEvent| rows.iter().find(|r| r.event == e).unwrap().share;
        assert!((get(HwEvent::MachineClear) - 0.5).abs() < 1e-12);
        assert!((get(HwEvent::LlcMiss) - 0.3).abs() < 1e-12);
        assert!((get(HwEvent::TcMiss) - 0.01).abs() < 1e-12);
        assert!((get(HwEvent::BranchMispredict) - 0.003).abs() < 1e-12);
        assert_eq!(get(HwEvent::ItlbMiss), 0.0);
    }

    #[test]
    fn instruction_lower_bound_is_last_row() {
        let rows = impact_indicators(&counters(), &EventCosts::paper());
        let last = rows.last().unwrap();
        assert_eq!(last.event, HwEvent::Instructions);
        assert!((last.share - 0.1).abs() < 1e-12); // 300k/3/1M
    }

    #[test]
    fn clears_and_llc_dominate_like_figure5() {
        let rows = impact_indicators(&counters(), &EventCosts::paper());
        let dominant: f64 = rows
            .iter()
            .filter(|r| matches!(r.event, HwEvent::MachineClear | HwEvent::LlcMiss))
            .map(|r| r.share)
            .sum();
        let rest: f64 = rows
            .iter()
            .filter(|r| {
                !matches!(
                    r.event,
                    HwEvent::MachineClear | HwEvent::LlcMiss | HwEvent::Instructions
                )
            })
            .map(|r| r.share)
            .sum();
        assert!(dominant > rest * 10.0);
    }

    #[test]
    fn empty_counters_are_safe() {
        let rows = impact_indicators(&PerfCounters::default(), &EventCosts::paper());
        assert!(rows.iter().all(|r| r.share == 0.0));
        assert_eq!(rows.len(), 8);
    }
}
