//! Spearman's rank correlation (the paper's Table 5).
//!
//! The paper validates its impact-indicator methodology by rank-
//! correlating per-bin *cycle* improvements with per-bin *LLC-miss* and
//! *machine-clear* improvements: values of 0.62–0.96, all above the
//! critical value, show that improvements in those two events predict
//! improvements in time.

/// The critical value quoted in the paper's Table 5 footnote
/// ("Critical value for p=0.05, degf=5, 1-tail is 0.377").
pub const PAPER_CRITICAL_VALUE: f64 = 0.377;

/// Assigns average ranks (1-based) with tie handling.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaNs in rank data"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman's rank correlation coefficient of two equal-length samples,
/// with average-rank tie handling (Pearson correlation of the ranks).
///
/// Returns 0 for samples shorter than 2 or with zero rank variance.
///
/// # Panics
///
/// Panics if the slices differ in length or contain NaN.
#[must_use]
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must be the same length");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    let mean = (n as f64 + 1.0) / 2.0;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for i in 0..n {
        let a = rx[i] - mean;
        let b = ry[i] - mean;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx == 0.0 || dy == 0.0 {
        return 0.0;
    }
    num / (dx * dy).sqrt()
}

/// One-tailed p=0.05 critical values for Spearman's rho (standard
/// tables), for n = 4..=10 observations. Returns `None` outside the
/// table.
#[must_use]
pub fn spearman_critical_one_tail_p05(n: usize) -> Option<f64> {
    match n {
        4 => Some(1.000),
        5 => Some(0.900),
        6 => Some(0.829),
        7 => Some(0.714),
        8 => Some(0.643),
        9 => Some(0.600),
        10 => Some(0.564),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [8.0, 6.0, 4.0, 2.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_is_still_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_use_average_ranks() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 3.0, 4.0];
        let rho = spearman(&xs, &ys);
        assert!(rho > 0.9 && rho < 1.0, "got {rho}");
    }

    #[test]
    fn uncorrelated_is_small() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [3.0, 8.0, 1.0, 6.0, 2.0, 7.0, 4.0, 5.0];
        assert!(spearman(&xs, &ys).abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(spearman(&[], &[]), 0.0);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = spearman(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn critical_values_table() {
        assert_eq!(spearman_critical_one_tail_p05(7), Some(0.714));
        assert_eq!(spearman_critical_one_tail_p05(3), None);
        assert_eq!(spearman_critical_one_tail_p05(11), None);
        assert!(PAPER_CRITICAL_VALUE > 0.0);
    }

    #[test]
    fn paper_range_values_pass_paper_critical() {
        // The paper's correlations (0.62..0.96) all exceed its quoted
        // critical value.
        for rho in [0.62, 0.80, 0.93, 0.96] {
            assert!(rho > PAPER_CRITICAL_VALUE);
        }
    }
}
