//! The paper's analysis toolkit: performance-impact indicators
//! (Figure 5), Amdahl-style improvement decomposition (Table 3) and
//! Spearman rank correlation (Table 5).

mod amdahl;
mod indicators;
mod spearman;

pub use amdahl::{bin_improvements, overall_improvement, BinImprovement};
pub use indicators::{impact_indicators, EventImpact};
pub use spearman::{spearman, spearman_critical_one_tail_p05, PAPER_CRITICAL_VALUE};
