//! Amdahl-style improvement decomposition (the paper's Table 3).
//!
//! For each functional bin and each event, the improvement going from
//! no affinity to full affinity is the bin's share of the baseline total
//! times the bin's own relative reduction:
//!
//! ```text
//! %improvement = (event_bin_no / event_total_no)
//!              × (1 − event_bin_full / event_bin_no)
//! ```
//!
//! with all counts normalized per unit of work done (the two runs move
//! different amounts of data in different wall times). Summing the
//! per-bin improvements gives the overall improvement, which is what
//! makes the decomposition Amdahl-consistent.

use serde::{Deserialize, Serialize};
use sim_cpu::HwEvent;
use sim_tcp::Bin;

use crate::metrics::RunMetrics;

/// One row of Table 3: a bin's baseline character and its contribution
/// to the overall improvement for cycles, LLC misses and machine clears.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinImprovement {
    /// The functional bin.
    pub bin: Bin,
    /// Baseline (no affinity) share of attributed cycles.
    pub pct_time_base: f64,
    /// Baseline CPI of the bin.
    pub cpi_base: f64,
    /// Baseline LLC misses per instruction of the bin.
    pub mpi_base: f64,
    /// Contribution to overall cycle improvement.
    pub cycles_improvement: f64,
    /// Contribution to overall LLC-miss improvement.
    pub llc_improvement: f64,
    /// Contribution to overall machine-clear improvement.
    pub clears_improvement: f64,
}

fn per_work(metrics: &RunMetrics, bin: Bin, event: HwEvent) -> f64 {
    // Normalize by bytes moved: "events per work done".
    metrics.bin(bin).get(event) as f64 / metrics.bytes_moved.max(1) as f64
}

fn total_per_work(metrics: &RunMetrics, event: HwEvent) -> f64 {
    Bin::ALL.iter().map(|&b| per_work(metrics, b, event)).sum()
}

fn improvement_component(
    base: &RunMetrics,
    improved: &RunMetrics,
    bin: Bin,
    event: HwEvent,
) -> f64 {
    let bin_base = per_work(base, bin, event);
    let total_base = total_per_work(base, event);
    if bin_base == 0.0 || total_base == 0.0 {
        return 0.0;
    }
    let bin_improved = per_work(improved, bin, event);
    (bin_base / total_base) * (1.0 - bin_improved / bin_base)
}

/// Computes the Table 3 decomposition from a baseline (no affinity) run
/// and an improved (full affinity) run.
#[must_use]
pub fn bin_improvements(base: &RunMetrics, improved: &RunMetrics) -> Vec<BinImprovement> {
    Bin::ALL
        .into_iter()
        .map(|bin| {
            let c = base.bin(bin);
            BinImprovement {
                bin,
                pct_time_base: base.bin_cycle_share(bin),
                cpi_base: c.cpi(),
                mpi_base: c.mpi(),
                cycles_improvement: improvement_component(base, improved, bin, HwEvent::Cycles),
                llc_improvement: improvement_component(base, improved, bin, HwEvent::LlcMiss),
                clears_improvement: improvement_component(
                    base,
                    improved,
                    bin,
                    HwEvent::MachineClear,
                ),
            }
        })
        .collect()
}

/// Sums a column of the decomposition — the overall improvement for an
/// event, equal to `1 − total_improved/total_base` (per work done).
#[must_use]
pub fn overall_improvement(rows: &[BinImprovement], event: HwEvent) -> f64 {
    rows.iter()
        .map(|r| match event {
            HwEvent::Cycles => r.cycles_improvement,
            HwEvent::LlcMiss => r.llc_improvement,
            HwEvent::MachineClear => r.clears_improvement,
            _ => 0.0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BinBreakdown;
    use sim_core::Frequency;
    use sim_cpu::PerfCounters;

    fn metrics_with(bytes: u64, cycles_per_bin: &[(Bin, u64, u64, u64)]) -> RunMetrics {
        let bins = Bin::ALL
            .into_iter()
            .map(|bin| {
                let mut counters = PerfCounters::default();
                if let Some(&(_, cy, llc, clears)) = cycles_per_bin.iter().find(|(b, ..)| *b == bin)
                {
                    counters.cycles = cy;
                    counters.llc_misses = llc;
                    counters.machine_clears = clears;
                    counters.instructions = cy / 4; // CPI 4
                }
                BinBreakdown { bin, counters }
            })
            .collect();
        RunMetrics {
            wall_cycles: 1,
            freq: Frequency::from_ghz(2.0),
            bytes_moved: bytes,
            messages: 1,
            busy_cycles: vec![0, 0],
            total: PerfCounters::default(),
            bins,
            clears_by_reason: [0; 5],
            resched_ipis: 0,
            wake_migrations: 0,
            balance_migrations: 0,
            lock_acquisitions: 0,
            lock_contended: 0,
            interrupts: 0,
        }
    }

    #[test]
    fn decomposition_sums_to_overall() {
        // Baseline: Engine 600, Copies 400 cycles per byte-unit.
        let base = metrics_with(
            1000,
            &[
                (Bin::Engine, 600_000, 600, 60),
                (Bin::Copies, 400_000, 400, 40),
            ],
        );
        // Improved: Engine halves, Copies unchanged (same work).
        let improved = metrics_with(
            1000,
            &[
                (Bin::Engine, 300_000, 300, 30),
                (Bin::Copies, 400_000, 400, 40),
            ],
        );
        let rows = bin_improvements(&base, &improved);
        let overall = overall_improvement(&rows, HwEvent::Cycles);
        // Total went 1M -> 700K: 30% improvement.
        assert!((overall - 0.3).abs() < 1e-9);
        let engine = rows.iter().find(|r| r.bin == Bin::Engine).unwrap();
        // Engine contributed all of it: 0.6 share x 0.5 reduction = 0.3.
        assert!((engine.cycles_improvement - 0.3).abs() < 1e-9);
        let copies = rows.iter().find(|r| r.bin == Bin::Copies).unwrap();
        assert!(copies.cycles_improvement.abs() < 1e-9);
    }

    #[test]
    fn normalization_by_work() {
        // Same per-byte cost, double the bytes: no improvement.
        let base = metrics_with(1000, &[(Bin::Engine, 1_000_000, 100, 10)]);
        let improved = metrics_with(2000, &[(Bin::Engine, 2_000_000, 200, 20)]);
        let rows = bin_improvements(&base, &improved);
        assert!(overall_improvement(&rows, HwEvent::Cycles).abs() < 1e-9);
        assert!(overall_improvement(&rows, HwEvent::LlcMiss).abs() < 1e-9);
    }

    #[test]
    fn regressions_show_negative() {
        let base = metrics_with(1000, &[(Bin::Timers, 100_000, 10, 1)]);
        let improved = metrics_with(1000, &[(Bin::Timers, 150_000, 15, 2)]);
        let rows = bin_improvements(&base, &improved);
        let timers = rows.iter().find(|r| r.bin == Bin::Timers).unwrap();
        assert!(
            timers.cycles_improvement < 0.0,
            "regression must be negative"
        );
    }

    #[test]
    fn baseline_character_fields() {
        let base = metrics_with(1000, &[(Bin::Engine, 800_000, 800, 80)]);
        let rows = bin_improvements(&base, &base);
        let engine = rows.iter().find(|r| r.bin == Bin::Engine).unwrap();
        assert!((engine.pct_time_base - 1.0).abs() < 1e-9);
        assert!((engine.cpi_base - 4.0).abs() < 1e-9);
        assert!((engine.mpi_base - 800.0 / 200_000.0).abs() < 1e-9);
        // Same run as "improved": zero improvement everywhere.
        assert!(engine.cycles_improvement.abs() < 1e-9);
    }

    #[test]
    fn empty_bins_are_zero() {
        let base = metrics_with(1000, &[]);
        let rows = bin_improvements(&base, &base);
        assert!(rows
            .iter()
            .all(|r| r.cycles_improvement == 0.0 && r.pct_time_base == 0.0));
    }
}
