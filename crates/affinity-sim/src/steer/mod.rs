//! The steering & interrupt-delivery subsystem.
//!
//! The paper's four affinity modes — and the RSS and Flow Director
//! futures its conclusion sketches — all decompose into three
//! orthogonal decisions:
//!
//! 1. **flow placement** — which NIC queue carries each connection
//!    ([`FlowPlacement`]: round-robin, or RSS-style hashing);
//! 2. **vector layout** — which CPU each queue's MSI-X vector is
//!    statically programmed to ([`VectorLayout`]: everything on CPU0,
//!    the Linux 2.4 default, or split evenly across CPUs like
//!    `smp_affinity` writes);
//! 3. **dynamic steering** — whether the device re-targets a flow's
//!    vector at delivery time to chase the consuming core
//!    ([`DynamicSteer`]: off, or a bounded Flow Director / aRFS filter
//!    table with a modeled re-steer cost).
//!
//! A [`SteerSpec`] names one point in that space declaratively (it is
//! plain serializable data, part of `ExperimentConfig`); building it
//! yields a [`SteeringPolicy`] trait object the machine consults on its
//! hot paths — no `AffinityMode` dispatch survives in the run loop.
//! [`AffinityMode`](crate::AffinityMode) lives on only as a preset
//! constructor mapping each paper mode to a spec.
//!
//! Interrupt *moderation* is the fourth, per-queue decision; it lives in
//! [`sim_net::coalesce`] as [`CoalescePolicy`](sim_net::CoalescePolicy)
//! because it belongs to the device, not the steering plane.

use serde::{Deserialize, Serialize};
use sim_core::CpuId;
use sim_prof::SteerCounters;

mod policies;

pub use policies::{FlowDirector, RoundRobin, RssHash, StaticIrq};

/// The multiplicative-hash RSS indirection used by the scale sweep since
/// PR 3; kept as *the* hash so placements stay bit-identical.
#[must_use]
pub fn rss_hash(flow: usize, queues: usize) -> usize {
    ((flow as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % queues
}

/// The even vector-home spread of the paper's `smp_affinity` split (and
/// of pinned-process placement): queue `q` of `queues` homes on
/// `q * cpus / queues`. On the paper SUT (8 queues, 2 CPUs) this puts
/// queues 0–3 on CPU0 and 4–7 on CPU1, exactly the paper's Figure 3
/// wiring.
#[must_use]
pub fn even_home(queue: usize, queues: usize, cpus: usize) -> CpuId {
    CpuId::new((queue * cpus / queues) as u32)
}

/// How flows are placed onto NIC queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowPlacement {
    /// `flow % queues` — the identity map on the paper SUT where each
    /// port carries one connection.
    RoundRobin,
    /// RSS-style multiplicative hashing ([`rss_hash`]).
    RssHash,
}

impl FlowPlacement {
    /// The queue carrying `flow` out of `queues`.
    #[must_use]
    pub fn place(self, flow: usize, queues: usize) -> usize {
        match self {
            FlowPlacement::RoundRobin => flow % queues,
            FlowPlacement::RssHash => rss_hash(flow, queues),
        }
    }
}

/// How queue vectors are statically programmed into the IO-APIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VectorLayout {
    /// Every vector delivers to CPU0 — the Linux 2.4 / NT default the
    /// paper's "no affinity" and "process affinity" modes inherit.
    AllCpu0,
    /// Vectors split evenly across CPUs ([`even_home`]) — the paper's
    /// `smp_affinity` writes.
    SplitEven,
}

/// Whether (and how) the device re-targets vectors at delivery time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DynamicSteer {
    /// Static routing only.
    Off,
    /// Intel Flow Director / Linux aRFS: a bounded filter table maps
    /// flows to the CPU their consumer last ran on; deliveries re-target
    /// the queue's vector there, paying `resteer_cycles` per reprogram.
    FlowDirector {
        /// Filter-table capacity; insertions beyond it are rejected
        /// (those flows stay on their static placement), mirroring the
        /// fixed-size perfect-filter table of the real hardware.
        table_entries: usize,
        /// Modeled cost of one re-target (IO-APIC/MSI reprogram plus
        /// filter update), charged to delivery latency.
        resteer_cycles: u64,
    },
}

/// Declarative description of a steering configuration: one point in
/// the placement × layout × dynamic-steering space, plus whether
/// consumer processes are pinned to their queue's home CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteerSpec {
    /// Flow→queue placement.
    pub placement: FlowPlacement,
    /// Static vector layout.
    pub vectors: VectorLayout,
    /// Delivery-time re-targeting.
    pub dynamic: DynamicSteer,
    /// Pin each `ttcp` process to its queue's [`even_home`] CPU (the
    /// paper's `sched_setaffinity` half).
    pub pin_processes: bool,
}

impl SteerSpec {
    /// The Flow Director / aRFS configuration used by `repro steer`:
    /// hash-placed flows, evenly split vectors, and a 1024-entry filter
    /// table re-targeting at 600 cycles per reprogram (an MSI rewrite
    /// plus filter update at 2 GHz).
    #[must_use]
    pub fn flow_director() -> Self {
        SteerSpec {
            placement: FlowPlacement::RssHash,
            vectors: VectorLayout::SplitEven,
            dynamic: DynamicSteer::FlowDirector {
                table_entries: 1024,
                resteer_cycles: 600,
            },
            pin_processes: false,
        }
    }

    /// Flow Director atop the Linux-default static layout (round-robin
    /// flows, all vectors initially on CPU0, processes free): dynamic
    /// steering with no static affinity configuration at all — the
    /// paper conclusion's "adapters that can direct connections ...
    /// dynamically" scenario, starting from a stock 2.4 box.
    #[must_use]
    pub fn flow_director_unconfigured() -> Self {
        SteerSpec {
            vectors: VectorLayout::AllCpu0,
            placement: FlowPlacement::RoundRobin,
            ..SteerSpec::flow_director()
        }
    }

    /// Short label for sweep tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match (self.dynamic, self.placement, self.vectors) {
            (DynamicSteer::FlowDirector { .. }, _, _) => "FlowDir",
            (DynamicSteer::Off, FlowPlacement::RssHash, _) => "RSS",
            (DynamicSteer::Off, FlowPlacement::RoundRobin, VectorLayout::SplitEven) => "RR/split",
            (DynamicSteer::Off, FlowPlacement::RoundRobin, VectorLayout::AllCpu0) => "RR/cpu0",
        }
    }

    /// Builds the runtime policy for this spec.
    #[must_use]
    pub fn build(&self) -> Box<dyn SteeringPolicy> {
        match (self.vectors, self.dynamic) {
            (
                _,
                DynamicSteer::FlowDirector {
                    table_entries,
                    resteer_cycles,
                },
            ) => Box::new(FlowDirector::new(
                self.placement,
                table_entries,
                resteer_cycles,
            )),
            (VectorLayout::AllCpu0, DynamicSteer::Off) => Box::new(StaticIrq::new(self.placement)),
            (VectorLayout::SplitEven, DynamicSteer::Off) => match self.placement {
                FlowPlacement::RoundRobin => Box::new(RoundRobin),
                FlowPlacement::RssHash => Box::new(RssHash),
            },
        }
    }
}

/// A delivery-time re-target decision from a dynamic policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteerDecision {
    /// CPU the vector should deliver to.
    pub target: CpuId,
    /// Cycles of added delivery latency for the reprogram.
    pub resteer_cycles: u64,
}

/// Flow→queue/vector steering policy.
///
/// Placement ([`SteeringPolicy::place_flow`]) and static layout
/// ([`SteeringPolicy::vector_home`]) are consulted once at machine
/// construction; the dynamic hooks run on the interrupt hot path, so
/// static policies keep them as the free default no-ops.
pub trait SteeringPolicy: std::fmt::Debug + Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// The queue carrying `flow` out of `queues`.
    fn place_flow(&self, flow: usize, queues: usize) -> usize;

    /// The CPU queue `queue`'s vector is statically programmed to.
    fn vector_home(&self, queue: usize, queues: usize, cpus: usize) -> CpuId;

    /// Whether this policy re-targets vectors at delivery time (gates
    /// the hot-path [`SteeringPolicy::steer`] call).
    fn dynamic(&self) -> bool {
        false
    }

    /// A flow's consumer task ran on `cpu` — dynamic policies update
    /// their filter table here.
    fn consumer_ran(&mut self, _flow: usize, _cpu: CpuId, _counters: &mut SteerCounters) {}

    /// Delivery-time re-target for `flow`, or `None` to keep the static
    /// route. Only called when [`SteeringPolicy::dynamic`] is true.
    fn steer(&mut self, _flow: usize, _counters: &mut SteerCounters) -> Option<SteerDecision> {
        None
    }

    /// A connection was accepted on `cpu` (server workloads): dynamic
    /// policies install their per-flow steering state here, exactly once
    /// per connection incarnation. Static policies keep the free no-op.
    fn flow_opened(&mut self, _flow: usize, _cpu: CpuId, _counters: &mut SteerCounters) {}

    /// A connection finished teardown (server workloads): dynamic
    /// policies must drop whatever [`SteeringPolicy::flow_opened`] or
    /// [`SteeringPolicy::consumer_ran`] installed — per-flow table
    /// entries must not outlive the connection.
    fn flow_closed(&mut self, _flow: usize, _counters: &mut SteerCounters) {}

    /// `(occupied, capacity)` of the policy's per-flow table, or `None`
    /// for policies that keep no per-flow state. After every connection
    /// of a server run has closed, `occupied` must be zero.
    fn occupancy(&self) -> Option<(usize, usize)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_home_matches_paper_split() {
        // 8 queues over 2 CPUs: 0–3 → CPU0, 4–7 → CPU1.
        for q in 0..4 {
            assert_eq!(even_home(q, 8, 2), CpuId::new(0));
        }
        for q in 4..8 {
            assert_eq!(even_home(q, 8, 2), CpuId::new(1));
        }
        // nics == cpus (scale sweep): identity.
        for q in 0..16 {
            assert_eq!(even_home(q, 16, 16), CpuId::new(q as u32));
        }
    }

    #[test]
    fn placement_formulas_are_the_committed_ones() {
        for f in 0..64 {
            assert_eq!(FlowPlacement::RoundRobin.place(f, 8), f % 8);
            assert_eq!(
                FlowPlacement::RssHash.place(f, 8),
                ((f as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % 8
            );
        }
    }

    #[test]
    fn build_picks_the_right_policy() {
        let rr = SteerSpec {
            placement: FlowPlacement::RoundRobin,
            vectors: VectorLayout::SplitEven,
            dynamic: DynamicSteer::Off,
            pin_processes: false,
        };
        assert_eq!(rr.build().name(), "round-robin");
        assert_eq!(rr.label(), "RR/split");
        let cpu0 = SteerSpec {
            vectors: VectorLayout::AllCpu0,
            ..rr
        };
        assert_eq!(cpu0.build().name(), "static-irq");
        let rss = SteerSpec {
            placement: FlowPlacement::RssHash,
            ..rr
        };
        assert_eq!(rss.build().name(), "rss-hash");
        assert_eq!(rss.label(), "RSS");
        let fd = SteerSpec::flow_director();
        assert_eq!(fd.build().name(), "flow-director");
        assert_eq!(fd.label(), "FlowDir");
        assert!(fd.build().dynamic());
        assert!(!rss.build().dynamic());
    }
}
