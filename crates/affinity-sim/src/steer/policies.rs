//! Concrete steering policies.

use sim_core::CpuId;
use sim_prof::SteerCounters;

use super::{even_home, FlowPlacement, SteerDecision, SteeringPolicy};

/// Everything on CPU0: the Linux 2.4 / NT default IO-APIC programming
/// the paper's "no affinity" and "process affinity" modes inherit.
/// Placement still decides which queue a flow rides (round-robin on the
/// paper SUT).
#[derive(Debug, Clone, Copy)]
pub struct StaticIrq {
    placement: FlowPlacement,
}

impl StaticIrq {
    /// A CPU0-homed layout over `placement`-placed flows.
    #[must_use]
    pub fn new(placement: FlowPlacement) -> Self {
        StaticIrq { placement }
    }
}

impl SteeringPolicy for StaticIrq {
    fn name(&self) -> &'static str {
        "static-irq"
    }

    fn place_flow(&self, flow: usize, queues: usize) -> usize {
        self.placement.place(flow, queues)
    }

    fn vector_home(&self, _queue: usize, _queues: usize, _cpus: usize) -> CpuId {
        CpuId::new(0)
    }
}

/// Round-robin flows, vectors split evenly — the paper's `smp_affinity`
/// IRQ-affinity wiring.
#[derive(Debug, Clone, Copy)]
pub struct RoundRobin;

impl SteeringPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place_flow(&self, flow: usize, queues: usize) -> usize {
        FlowPlacement::RoundRobin.place(flow, queues)
    }

    fn vector_home(&self, queue: usize, queues: usize, cpus: usize) -> CpuId {
        even_home(queue, queues, cpus)
    }
}

/// Hash-placed flows, vectors split evenly — receive-side scaling with a
/// static indirection table.
#[derive(Debug, Clone, Copy)]
pub struct RssHash;

impl SteeringPolicy for RssHash {
    fn name(&self) -> &'static str {
        "rss-hash"
    }

    fn place_flow(&self, flow: usize, queues: usize) -> usize {
        FlowPlacement::RssHash.place(flow, queues)
    }

    fn vector_home(&self, queue: usize, queues: usize, cpus: usize) -> CpuId {
        even_home(queue, queues, cpus)
    }
}

/// Intel Flow Director / Linux aRFS: a bounded filter table tracks the
/// CPU each flow's consumer last ran on; deliveries re-target the
/// queue's vector there, chasing the consuming core. Static placement
/// and layout are RSS-like (`placement` is configurable); the dynamic
/// table overrides them per delivery.
#[derive(Debug)]
pub struct FlowDirector {
    placement: FlowPlacement,
    /// Filter table, indexed by flow; grown lazily so machines with few
    /// flows don't pay for the full capacity. Entries are packed CPU
    /// indices with [`FlowDirector::EMPTY`] for absent filters — half
    /// the size of an `Option<CpuId>` per flow, so per-delivery lookups
    /// stream a dense `u32` array.
    table: Vec<u32>,
    /// Occupied entries (bounded by `capacity`).
    occupied: usize,
    capacity: usize,
    resteer_cycles: u64,
}

impl FlowDirector {
    /// Sentinel for an unoccupied filter-table entry.
    const EMPTY: u32 = u32::MAX;

    /// A director over `placement`-placed flows with a `capacity`-entry
    /// filter table and `resteer_cycles` per reprogram.
    #[must_use]
    pub fn new(placement: FlowPlacement, capacity: usize, resteer_cycles: u64) -> Self {
        FlowDirector {
            placement,
            table: Vec::new(),
            occupied: 0,
            capacity,
            resteer_cycles,
        }
    }

    /// Occupied filter-table entries.
    #[must_use]
    pub fn table_occupancy(&self) -> usize {
        self.occupied
    }
}

impl SteeringPolicy for FlowDirector {
    fn name(&self) -> &'static str {
        "flow-director"
    }

    fn place_flow(&self, flow: usize, queues: usize) -> usize {
        self.placement.place(flow, queues)
    }

    fn vector_home(&self, queue: usize, queues: usize, cpus: usize) -> CpuId {
        even_home(queue, queues, cpus)
    }

    fn dynamic(&self) -> bool {
        true
    }

    fn consumer_ran(&mut self, flow: usize, cpu: CpuId, counters: &mut SteerCounters) {
        if flow >= self.table.len() {
            self.table.resize(flow + 1, Self::EMPTY);
        }
        if self.table[flow] == Self::EMPTY {
            if self.occupied >= self.capacity {
                // Table full: the flow keeps its static placement.
                counters.table_rejects += 1;
                return;
            }
            self.occupied += 1;
        }
        self.table[flow] = cpu.raw();
    }

    fn steer(&mut self, flow: usize, _counters: &mut SteerCounters) -> Option<SteerDecision> {
        self.table
            .get(flow)
            .copied()
            .filter(|&t| t != Self::EMPTY)
            .map(|target| SteerDecision {
                target: CpuId::new(target),
                resteer_cycles: self.resteer_cycles,
            })
    }

    fn flow_opened(&mut self, flow: usize, cpu: CpuId, counters: &mut SteerCounters) {
        // Accepting a connection programs its filter exactly like the
        // consumer running would; capacity rejects leave the flow on its
        // static placement.
        self.consumer_ran(flow, cpu, counters);
    }

    fn flow_closed(&mut self, flow: usize, _counters: &mut SteerCounters) {
        if let Some(entry) = self.table.get_mut(flow) {
            if *entry != Self::EMPTY {
                *entry = Self::EMPTY;
                self.occupied -= 1;
            }
        }
    }

    fn occupancy(&self) -> Option<(usize, usize)> {
        Some((self.occupied, self.capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_director_tracks_the_consumer() {
        let mut ctrs = SteerCounters::default();
        let mut fd = FlowDirector::new(FlowPlacement::RssHash, 4, 600);
        assert!(
            fd.steer(0, &mut ctrs).is_none(),
            "empty table keeps static route"
        );
        fd.consumer_ran(2, CpuId::new(3), &mut ctrs);
        let d = fd.steer(2, &mut ctrs).unwrap();
        assert_eq!(d.target, CpuId::new(3));
        assert_eq!(d.resteer_cycles, 600);
        // Re-running elsewhere updates the entry in place.
        fd.consumer_ran(2, CpuId::new(1), &mut ctrs);
        assert_eq!(fd.steer(2, &mut ctrs).unwrap().target, CpuId::new(1));
        assert_eq!(fd.table_occupancy(), 1);
        assert_eq!(ctrs.table_rejects, 0);
    }

    #[test]
    fn flow_director_table_is_bounded() {
        let mut ctrs = SteerCounters::default();
        let mut fd = FlowDirector::new(FlowPlacement::RoundRobin, 2, 600);
        fd.consumer_ran(0, CpuId::new(0), &mut ctrs);
        fd.consumer_ran(1, CpuId::new(1), &mut ctrs);
        fd.consumer_ran(2, CpuId::new(2), &mut ctrs);
        assert_eq!(fd.table_occupancy(), 2);
        assert_eq!(ctrs.table_rejects, 1);
        assert!(
            fd.steer(2, &mut ctrs).is_none(),
            "rejected flow stays static"
        );
        // Existing entries still update.
        fd.consumer_ran(0, CpuId::new(3), &mut ctrs);
        assert_eq!(fd.steer(0, &mut ctrs).unwrap().target, CpuId::new(3));
        assert_eq!(fd.table_occupancy(), 2);
    }

    #[test]
    fn flow_director_uninstalls_on_close() {
        let mut ctrs = SteerCounters::default();
        let mut fd = FlowDirector::new(FlowPlacement::RssHash, 8, 600);
        fd.flow_opened(3, CpuId::new(1), &mut ctrs);
        fd.flow_opened(5, CpuId::new(2), &mut ctrs);
        assert_eq!(fd.occupancy(), Some((2, 8)));
        assert!(fd.steer(3, &mut ctrs).is_some());
        fd.flow_closed(3, &mut ctrs);
        assert!(
            fd.steer(3, &mut ctrs).is_none(),
            "closed flow steers static"
        );
        assert_eq!(fd.occupancy(), Some((1, 8)));
        // Closing twice (or closing a never-opened flow) is a no-op.
        fd.flow_closed(3, &mut ctrs);
        fd.flow_closed(7, &mut ctrs);
        assert_eq!(fd.occupancy(), Some((1, 8)));
        fd.flow_closed(5, &mut ctrs);
        assert_eq!(fd.occupancy(), Some((0, 8)));
    }

    #[test]
    fn static_policies_have_free_dynamic_hooks() {
        let mut ctrs = SteerCounters::default();
        let mut rr = RoundRobin;
        rr.consumer_ran(0, CpuId::new(1), &mut ctrs);
        rr.flow_opened(0, CpuId::new(1), &mut ctrs);
        rr.flow_closed(0, &mut ctrs);
        assert!(rr.steer(0, &mut ctrs).is_none());
        assert_eq!(rr.occupancy(), None);
        assert_eq!(ctrs, SteerCounters::default());
        assert_eq!(
            StaticIrq::new(FlowPlacement::RoundRobin).vector_home(7, 8, 4),
            CpuId::new(0)
        );
        assert_eq!(RssHash.vector_home(7, 8, 4), CpuId::new(3));
    }
}
