//! # affinity-sim
//!
//! End-to-end reproduction of *Architectural Characterization of
//! Processor Affinity in Network Processing* (Foong, Fung, Newell,
//! Abraham, Irelan, Lopez-Estrada — ISPASS 2005) on a fully simulated
//! substrate.
//!
//! The paper measures how binding processes
//! (`sys_sched_setaffinity`) and NIC interrupts (`smp_affinity`) to
//! processors changes TCP throughput and *why* — attributing the win to
//! last-level-cache locality and, novelly, to **machine clears** caused
//! by device interrupts and IPIs. This crate wires the substrate crates
//! (`sim-mem`, `sim-cpu`, `sim-os`, `sim-net`, `sim-tcp`, `sim-prof`)
//! into the paper's system under test and reruns its entire evaluation:
//!
//! * [`AffinityMode`] — the four modes of Figure 3;
//! * [`Workload`] — the `ttcp` bulk TX/RX micro-benchmark;
//! * [`Machine`] / [`ExperimentConfig`] / [`run_experiment`] — the
//!   2-processor SUT with 8 GbE NICs and 8 connections, and the
//!   steady-state measurement harness;
//! * [`RunMetrics`] — throughput, utilization, GHz/Gbps cost, per-bin and
//!   per-function event counters;
//! * [`DataplaneMode`] — interrupt-driven host stack vs DPDK-style
//!   kernel bypass (busy-polling PMD cores over lockless SPSC rings,
//!   run-to-completion, idle burn charged honestly);
//! * [`analysis`] — Amdahl-style improvement decomposition (Table 3),
//!   performance-impact indicators (Figure 5), Spearman rank correlation
//!   (Table 5);
//! * [`report`] — text renderers for every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use affinity_sim::{AffinityMode, Direction, ExperimentConfig, run_experiment};
//!
//! let config = ExperimentConfig::paper_sut(Direction::Tx, 4096, AffinityMode::Full)
//!     .quick(); // reduced message counts for CI/doc tests
//! let result = run_experiment(&config)?;
//! assert!(result.metrics.throughput_gbps() > 0.0);
//! # Ok::<(), sim_core::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod experiment;
mod machine;
mod metrics;
mod mode;
mod poll;
mod ready;
pub mod report;
pub mod steer;
mod workload;

pub use experiment::{run_experiment, DataplaneConfig, DataplaneMode, ExperimentConfig, RunResult};
pub use machine::{should_trace, Machine};
pub use metrics::{BinBreakdown, LifecycleCounters, RunMetrics};
pub use mode::AffinityMode;
pub use ready::ReadyCpus;
pub use sim_net::CoalesceConfig;
pub use steer::{
    DynamicSteer, FlowPlacement, SteerDecision, SteerSpec, SteeringPolicy, VectorLayout,
};
pub use workload::{Direction, ServerWorkload, Workload, PAPER_SIZES};
