//! Run-level metrics: throughput, utilization, cost, event breakdowns.

use serde::{Deserialize, Serialize};
use sim_core::Frequency;
use sim_cpu::PerfCounters;
use sim_tcp::Bin;

/// Event counters for one functional bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinBreakdown {
    /// The bin.
    pub bin: Bin,
    /// Events attributed to the bin's functions (all CPUs).
    pub counters: PerfCounters,
}

/// Connection-lifecycle counters of a server-workload run (all zero for
/// the immortal-flow `ttcp` workloads). Carried on
/// [`RunResult`](crate::RunResult) — deliberately *not* part of
/// [`RunMetrics`], whose serialized shape is pinned by the golden
/// snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecycleCounters {
    /// Connections accepted during the measurement window.
    pub accepts: u64,
    /// Connections that completed teardown during the measurement
    /// window.
    pub completes: u64,
    /// SYNs dropped over the whole run — listen-queue overflow, or no
    /// flow slot free when the SYN arrived (the client retries after its
    /// retransmission timeout). Counted over the run lifetime rather
    /// than the window because the overbooked opening wave drops almost
    /// entirely before measurement starts.
    pub backlog_drops: u64,
    /// Median flow completion time (SYN arrival → teardown complete) of
    /// window completions, in cycles.
    pub fct_p50_cycles: u64,
    /// 99th-percentile flow completion time of window completions, in
    /// cycles.
    pub fct_p99_cycles: u64,
    /// Flow slots still live when the run finished (a drained churn run
    /// ends at zero).
    pub final_live_flows: u64,
    /// Occupied per-flow steering-table entries when the run finished
    /// (zero after drain — FlowDirector entries must not leak).
    pub final_table_entries: u64,
}

/// Summary of one measured steady-state run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Measured wall time in cycles (all CPUs share one clock domain).
    pub wall_cycles: u64,
    /// The clock frequency.
    pub freq: Frequency,
    /// Application payload bytes moved during measurement.
    pub bytes_moved: u64,
    /// Application messages completed during measurement.
    pub messages: u64,
    /// Busy (non-idle) cycles per CPU during measurement.
    pub busy_cycles: Vec<u64>,
    /// Machine-wide event counters.
    pub total: PerfCounters,
    /// Per-bin event counters, in [`Bin::ALL`] order.
    pub bins: Vec<BinBreakdown>,
    /// Machine clears by reason, summed over CPUs
    /// (see [`sim_cpu::ClearReason::ALL`] for the index order).
    pub clears_by_reason: [u64; 5],
    /// Reschedule IPIs sent (cross-CPU wakeups).
    pub resched_ipis: u64,
    /// Wakeups placed on a different CPU than the task last ran on.
    pub wake_migrations: u64,
    /// Migrations performed by the periodic load balancer.
    pub balance_migrations: u64,
    /// Spinlock acquisitions (all connections).
    pub lock_acquisitions: u64,
    /// Contended spinlock acquisitions.
    pub lock_contended: u64,
    /// Device interrupts raised (post-coalescing, all NICs).
    pub interrupts: u64,
}

impl RunMetrics {
    /// Application-level throughput in gigabits per second.
    #[must_use]
    pub fn throughput_gbps(&self) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        let seconds = self.wall_cycles as f64 / self.freq.hertz() as f64;
        self.bytes_moved as f64 * 8.0 / seconds / 1e9
    }

    /// Throughput in megabits per second (the paper's Figure 3 unit).
    #[must_use]
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_gbps() * 1000.0
    }

    /// Utilization of one CPU over the measurement window.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    #[must_use]
    pub fn cpu_utilization(&self, cpu: usize) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        (self.busy_cycles[cpu] as f64 / self.wall_cycles as f64).min(1.0)
    }

    /// Mean utilization across CPUs (the paper's Figure 3 bars).
    #[must_use]
    pub fn avg_utilization(&self) -> f64 {
        if self.busy_cycles.is_empty() {
            return 0.0;
        }
        (0..self.busy_cycles.len())
            .map(|c| self.cpu_utilization(c))
            .sum::<f64>()
            / self.busy_cycles.len() as f64
    }

    /// The paper's Figure 4 cost metric: processor GHz consumed per Gbps
    /// delivered — numerically, busy cycles per bit.
    #[must_use]
    pub fn cost_ghz_per_gbps(&self) -> f64 {
        let bits = self.bytes_moved as f64 * 8.0;
        if bits == 0.0 {
            return 0.0;
        }
        self.busy_cycles.iter().sum::<u64>() as f64 / bits
    }

    /// Counters for one bin.
    #[must_use]
    pub fn bin(&self, bin: Bin) -> PerfCounters {
        self.bins
            .iter()
            .find(|b| b.bin == bin)
            .map(|b| b.counters)
            .unwrap_or_default()
    }

    /// The bin's share of all attributed cycles (the paper's "% cycles").
    #[must_use]
    pub fn bin_cycle_share(&self, bin: Bin) -> f64 {
        let total: u64 = self.bins.iter().map(|b| b.counters.cycles).sum();
        if total == 0 {
            return 0.0;
        }
        self.bin(bin).cycles as f64 / total as f64
    }

    /// Cycles per message (normalizing work done, like the paper's
    /// per-transfer analysis).
    #[must_use]
    pub fn cycles_per_message(&self) -> f64 {
        if self.messages == 0 {
            return 0.0;
        }
        self.busy_cycles.iter().sum::<u64>() as f64 / self.messages as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        let mut bins: Vec<BinBreakdown> = Bin::ALL
            .into_iter()
            .map(|bin| BinBreakdown {
                bin,
                counters: PerfCounters::default(),
            })
            .collect();
        bins[1].counters.cycles = 600; // Engine
        bins[3].counters.cycles = 400; // Copies
        RunMetrics {
            wall_cycles: 2_000_000_000, // 1s at 2GHz
            freq: Frequency::from_ghz(2.0),
            bytes_moved: 125_000_000, // 1 Gbit
            messages: 1000,
            busy_cycles: vec![1_500_000_000, 1_000_000_000],
            total: PerfCounters::default(),
            bins,
            clears_by_reason: [0; 5],
            resched_ipis: 0,
            wake_migrations: 0,
            balance_migrations: 0,
            lock_acquisitions: 0,
            lock_contended: 0,
            interrupts: 0,
        }
    }

    #[test]
    fn throughput() {
        let m = metrics();
        assert!((m.throughput_gbps() - 1.0).abs() < 1e-9);
        assert!((m.throughput_mbps() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn utilization() {
        let m = metrics();
        assert!((m.cpu_utilization(0) - 0.75).abs() < 1e-12);
        assert!((m.cpu_utilization(1) - 0.5).abs() < 1e-12);
        assert!((m.avg_utilization() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn cost_is_cycles_per_bit() {
        let m = metrics();
        // 2.5e9 busy cycles / 1e9 bits = 2.5 GHz/Gbps.
        assert!((m.cost_ghz_per_gbps() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn bin_shares() {
        let m = metrics();
        assert!((m.bin_cycle_share(Bin::Engine) - 0.6).abs() < 1e-12);
        assert!((m.bin_cycle_share(Bin::Copies) - 0.4).abs() < 1e-12);
        assert_eq!(m.bin_cycle_share(Bin::Locks), 0.0);
        assert_eq!(m.bin(Bin::Engine).cycles, 600);
    }

    #[test]
    fn zero_guards() {
        let mut m = metrics();
        m.wall_cycles = 0;
        assert_eq!(m.throughput_gbps(), 0.0);
        assert_eq!(m.cpu_utilization(0), 0.0);
        m.bytes_moved = 0;
        assert_eq!(m.cost_ghz_per_gbps(), 0.0);
        m.messages = 0;
        assert_eq!(m.cycles_per_message(), 0.0);
    }

    #[test]
    fn cycles_per_message() {
        let m = metrics();
        assert!((m.cycles_per_message() - 2_500_000.0).abs() < 1e-6);
    }
}
