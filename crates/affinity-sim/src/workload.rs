//! The `ttcp` bulk-transfer workload and the server-side
//! connection-churn workload.

use serde::{Deserialize, Serialize};

/// Transfer direction, from the system under test's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// The SUT transmits (`ttcp -t`).
    Tx,
    /// The SUT receives (`ttcp -r`).
    Rx,
}

impl Direction {
    /// Both directions.
    pub const ALL: [Direction; 2] = [Direction::Tx, Direction::Rx];

    /// Figure label ("TX"/"RX").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Direction::Tx => "TX",
            Direction::Rx => "RX",
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The paper's Figure 3 x-axis: transaction sizes in bytes.
pub const PAPER_SIZES: [u64; 7] = [128, 256, 1024, 4096, 8192, 16384, 65536];

/// A `ttcp` run description: every connection moves fixed-size messages
/// between reused buffers, connection set up once — pure fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Direction (SUT transmits or receives).
    pub direction: Direction,
    /// Application message ("transaction") size in bytes.
    pub message_bytes: u64,
    /// Messages per connection executed before measurement starts
    /// (cache/predictor warm-up, like the paper's steady-state runs).
    pub warmup_messages: u32,
    /// Messages per connection measured.
    pub measure_messages: u32,
    /// When true, `warmup_messages`/`measure_messages` are *aggregate*
    /// machine-wide targets rather than per-connection multipliers. The
    /// million-flow cells need this: their subject is construction and
    /// footprint, and even one message per flow would make the run
    /// window dwarf the thing being measured. Default false — every
    /// per-connection workload keeps its exact historical semantics.
    pub aggregate_targets: bool,
    /// How many connections the peers actively stream on (RX direction).
    /// `0` means all of them — the historical behaviour. The million-flow
    /// cells provision the full population but stream on a bounded
    /// working set: offered load past a few hundred flows per CPU is
    /// receive livelock by construction (every cycle goes to interrupt
    /// processing, the consumers never run), which drowns the thing those
    /// cells measure — construction and per-flow state costs at scale.
    pub active_conns: usize,
}

impl Workload {
    /// A workload sized so each connection moves a few MB — enough for
    /// stable steady-state statistics at every paper size.
    ///
    /// # Panics
    ///
    /// Panics if `message_bytes` is zero.
    #[must_use]
    pub fn steady_state(direction: Direction, message_bytes: u64) -> Self {
        assert!(message_bytes > 0, "message size must be positive");
        // Scale counts inversely with size: ~2 MB measured per connection,
        // bounded for tractability.
        let measure = (2 * 1024 * 1024 / message_bytes).clamp(24, 1600) as u32;
        let warmup = (measure / 3).max(8);
        Workload {
            direction,
            message_bytes,
            warmup_messages: warmup,
            measure_messages: measure,
            aggregate_targets: false,
            active_conns: 0,
        }
    }

    /// Shrinks the workload for fast unit tests and doc tests.
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.warmup_messages = self.warmup_messages.min(4);
        self.measure_messages = self.measure_messages.min(12);
        self
    }

    /// Total measured bytes across `connections` connections.
    #[must_use]
    pub fn measured_bytes(&self, connections: usize) -> u64 {
        self.message_bytes * u64::from(self.measure_messages) * connections as u64
    }
}

/// A server-side connection-churn workload: short-lived connections
/// arrive with exponentially jittered gaps, each carrying one client
/// request and one server response, then tearing down (SYN → accept →
/// request → response → FIN → close). The machine keeps the live
/// connection count pinned near the experiment's slot count by
/// replacing each completed connection with a fresh arrival — plus a
/// deliberate initial overbooking so the SYN-drop/retry path is
/// exercised deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerWorkload {
    /// Mean gap between connection arrivals in cycles (each gap is an
    /// exponential draw from the machine RNG — Poisson-style).
    pub arrival_gap_cycles: u64,
    /// Client request size in bytes.
    pub request_bytes: u64,
    /// Server response size for a mouse connection, in bytes.
    pub response_bytes: u64,
    /// Every `elephant_every`-th arrival is an elephant (0 = mice only).
    pub elephant_every: u64,
    /// Server response size for an elephant connection, in bytes.
    pub elephant_response_bytes: u64,
    /// SYN backlog capacity of the listen socket.
    pub backlog: u32,
    /// Connections completed before measurement starts.
    pub warmup_conns: u64,
    /// Connections completed inside the measurement window.
    pub measure_conns: u64,
}

impl ServerWorkload {
    /// The `repro churn` point for a cell targeting `concurrent` live
    /// connections: small requests, mostly-mouse responses with a 1-in-10
    /// elephant mix, and completion targets scaled so roughly half the
    /// slot population is recycled before measurement begins.
    ///
    /// # Panics
    ///
    /// Panics if `concurrent` is zero.
    #[must_use]
    pub fn churn(concurrent: u64) -> Self {
        assert!(concurrent > 0, "need at least one concurrent connection");
        ServerWorkload {
            arrival_gap_cycles: 2_000,
            request_bytes: 256,
            response_bytes: 2_048,
            elephant_every: 10,
            elephant_response_bytes: 32_768,
            backlog: concurrent.clamp(16, 1024) as u32,
            warmup_conns: (concurrent / 2).max(8),
            measure_conns: concurrent.max(16),
        }
    }

    /// A mice-only variant (no elephants) — the 100k-flow large cell,
    /// where per-connection cost, not bulk bandwidth, is the subject.
    #[must_use]
    pub fn mice_only(mut self) -> Self {
        self.elephant_every = 0;
        self
    }

    /// Shrinks the completion targets for fast unit tests.
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.warmup_conns = self.warmup_conns.min(8);
        self.measure_conns = self.measure_conns.min(24);
        self
    }

    /// Total connections the run completes (warmup + measured).
    #[must_use]
    pub fn total_conns(&self) -> u64 {
        self.warmup_conns + self.measure_conns
    }

    /// The response size of the connection with arrival serial `serial`.
    #[must_use]
    pub fn response_for(&self, serial: u64) -> u64 {
        if self.elephant_every > 0 && serial.is_multiple_of(self.elephant_every) {
            self.elephant_response_bytes
        } else {
            self.response_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_scales_counts() {
        let small = Workload::steady_state(Direction::Tx, 128);
        let large = Workload::steady_state(Direction::Tx, 65536);
        assert!(small.measure_messages > large.measure_messages);
        assert!(large.measure_messages >= 24);
        assert!(small.measure_messages <= 1600);
        assert!(small.warmup_messages >= 8);
    }

    #[test]
    fn quick_shrinks() {
        let w = Workload::steady_state(Direction::Rx, 128).quick();
        assert!(w.measure_messages <= 12);
        assert!(w.warmup_messages <= 4);
    }

    #[test]
    fn measured_bytes() {
        let w = Workload {
            direction: Direction::Tx,
            message_bytes: 1000,
            warmup_messages: 1,
            measure_messages: 10,
            aggregate_targets: false,
            active_conns: 0,
        };
        assert_eq!(w.measured_bytes(8), 80_000);
    }

    #[test]
    fn paper_sizes_match_figure3() {
        assert_eq!(PAPER_SIZES, [128, 256, 1024, 4096, 8192, 16384, 65536]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = Workload::steady_state(Direction::Tx, 0);
    }

    #[test]
    fn churn_scales_and_mixes() {
        let w = ServerWorkload::churn(1000);
        assert_eq!(w.warmup_conns, 500);
        assert_eq!(w.measure_conns, 1000);
        assert_eq!(w.total_conns(), 1500);
        // Serial 0, 10, 20, ... are elephants; the rest are mice.
        assert_eq!(w.response_for(0), w.elephant_response_bytes);
        assert_eq!(w.response_for(10), w.elephant_response_bytes);
        assert_eq!(w.response_for(7), w.response_bytes);
        let mice = w.mice_only();
        assert_eq!(mice.response_for(0), mice.response_bytes);
        let q = w.quick();
        assert_eq!(q.warmup_conns, 8);
        assert_eq!(q.measure_conns, 24);
    }

    #[test]
    fn churn_floors_tiny_cells() {
        let w = ServerWorkload::churn(1);
        assert_eq!(w.warmup_conns, 8);
        assert_eq!(w.measure_conns, 16);
        assert_eq!(w.backlog, 16);
        assert_eq!(ServerWorkload::churn(100_000).backlog, 1024);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn churn_rejects_zero_concurrency() {
        let _ = ServerWorkload::churn(0);
    }
}
