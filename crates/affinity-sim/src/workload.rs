//! The `ttcp` bulk-transfer workload.

use serde::{Deserialize, Serialize};

/// Transfer direction, from the system under test's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// The SUT transmits (`ttcp -t`).
    Tx,
    /// The SUT receives (`ttcp -r`).
    Rx,
}

impl Direction {
    /// Both directions.
    pub const ALL: [Direction; 2] = [Direction::Tx, Direction::Rx];

    /// Figure label ("TX"/"RX").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Direction::Tx => "TX",
            Direction::Rx => "RX",
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The paper's Figure 3 x-axis: transaction sizes in bytes.
pub const PAPER_SIZES: [u64; 7] = [128, 256, 1024, 4096, 8192, 16384, 65536];

/// A `ttcp` run description: every connection moves fixed-size messages
/// between reused buffers, connection set up once — pure fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Direction (SUT transmits or receives).
    pub direction: Direction,
    /// Application message ("transaction") size in bytes.
    pub message_bytes: u64,
    /// Messages per connection executed before measurement starts
    /// (cache/predictor warm-up, like the paper's steady-state runs).
    pub warmup_messages: u32,
    /// Messages per connection measured.
    pub measure_messages: u32,
}

impl Workload {
    /// A workload sized so each connection moves a few MB — enough for
    /// stable steady-state statistics at every paper size.
    ///
    /// # Panics
    ///
    /// Panics if `message_bytes` is zero.
    #[must_use]
    pub fn steady_state(direction: Direction, message_bytes: u64) -> Self {
        assert!(message_bytes > 0, "message size must be positive");
        // Scale counts inversely with size: ~2 MB measured per connection,
        // bounded for tractability.
        let measure = (2 * 1024 * 1024 / message_bytes).clamp(24, 1600) as u32;
        let warmup = (measure / 3).max(8);
        Workload {
            direction,
            message_bytes,
            warmup_messages: warmup,
            measure_messages: measure,
        }
    }

    /// Shrinks the workload for fast unit tests and doc tests.
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.warmup_messages = self.warmup_messages.min(4);
        self.measure_messages = self.measure_messages.min(12);
        self
    }

    /// Total measured bytes across `connections` connections.
    #[must_use]
    pub fn measured_bytes(&self, connections: usize) -> u64 {
        self.message_bytes * u64::from(self.measure_messages) * connections as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_scales_counts() {
        let small = Workload::steady_state(Direction::Tx, 128);
        let large = Workload::steady_state(Direction::Tx, 65536);
        assert!(small.measure_messages > large.measure_messages);
        assert!(large.measure_messages >= 24);
        assert!(small.measure_messages <= 1600);
        assert!(small.warmup_messages >= 8);
    }

    #[test]
    fn quick_shrinks() {
        let w = Workload::steady_state(Direction::Rx, 128).quick();
        assert!(w.measure_messages <= 12);
        assert!(w.warmup_messages <= 4);
    }

    #[test]
    fn measured_bytes() {
        let w = Workload {
            direction: Direction::Tx,
            message_bytes: 1000,
            warmup_messages: 1,
            measure_messages: 10,
        };
        assert_eq!(w.measured_bytes(8), 80_000);
    }

    #[test]
    fn paper_sizes_match_figure3() {
        assert_eq!(PAPER_SIZES, [128, 256, 1024, 4096, 8192, 16384, 65536]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = Workload::steady_state(Direction::Tx, 0);
    }
}
