//! Experiment configuration and the measurement harness.

use serde::{Deserialize, Serialize};
use sim_core::Result;
use sim_cpu::CpuConfig;
use sim_mem::MemoryConfig;
use sim_net::NicConfig;
use sim_prof::{FunctionRegistry, PollCounters, Profiler, SteerCounters};
use sim_tcp::StackConfig;

use crate::machine::Machine;
use crate::metrics::{LifecycleCounters, RunMetrics};
use crate::mode::AffinityMode;
use crate::steer::SteerSpec;
use crate::workload::{Direction, ServerWorkload, Workload};

/// Timing/capacity knobs of the machine model that are not part of any
/// single substrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tunables {
    /// Socket send-buffer capacity in MSS segments.
    pub send_buf_segments: u32,
    /// Frames the peer keeps in flight toward the SUT (RX workload).
    pub peer_window: u32,
    /// Socket receive-buffer size in bytes: the advertised TCP window.
    /// The peer stops sending when unread data plus in-flight frames
    /// would exceed it.
    pub rcv_buf_bytes: u64,
    /// Round-trip latency to the client, in cycles (ACK return time).
    pub rtt_cycles: u64,
    /// Wire cost per byte in cycles (16 ≈ 1 Gbps at 2 GHz).
    pub wire_cycles_per_byte: u64,
    /// Interrupt-moderation timeout (flushes partial coalescing batches).
    pub coalesce_flush_cycles: u64,
    /// Interrupt delivery latency from device assertion to CPU flush.
    pub irq_latency_cycles: u64,
    /// Scheduler round-robin slice (compressed relative to Linux's 50 ms
    /// epochs so short simulated runs still interleave tasks).
    pub timeslice_cycles: u64,
    /// Probability a device interrupt's machine clear is attributed to
    /// the IRQ handler symbol itself rather than skidding into the
    /// interrupted function.
    pub skid_to_handler: f64,
    /// Period of the periodic load balancer; 0 disables it (the Linux
    /// 2.4 default — idle stealing and wake placement do the balancing).
    pub balance_interval_cycles: u64,
    /// Fixed cost of an address-space switch.
    pub context_switch_cycles: u64,
    /// Mean jitter between peer frame arrivals (cycles).
    pub arrival_jitter_cycles: f64,
    /// Pipeline flushes per device-interrupt delivery. Interrupt entry,
    /// EOI and `iret` are all serializing on the P4's deep pipeline; the
    /// paper's Figure 5 clear counts imply well over one flush per
    /// interrupt.
    pub clears_per_device_interrupt: u32,
    /// Pipeline flushes per IPI received.
    pub clears_per_ipi: u32,
    /// Linux 2.6-style interrupt rotation period in cycles (0 = off):
    /// every period, each vector's affinity moves to the next CPU —
    /// the related-work scheme whose "cache inefficiencies are still
    /// unavoidable".
    pub irq_rotation_cycles: u64,
    /// Probability that a transmitted frame is lost on the wire (the
    /// paper's LAN is lossless; non-zero values exercise Reno recovery).
    pub loss_rate: f64,
    /// Retransmission timeout in cycles (compressed like the other
    /// latencies so recovery fits the simulated windows).
    pub rto_cycles: u64,
    /// Margin (in interrupt-load fraction) by which a CPU may exceed the
    /// least interrupt-loaded CPU and still attract wake-affine
    /// hand-offs. A CPU carrying disproportionate interrupt work — the
    /// no-affinity default CPU0 — repels processes instead.
    pub irq_load_gate: f64,
}

impl Default for Tunables {
    fn default() -> Self {
        Tunables {
            send_buf_segments: 64,
            peer_window: 32,
            rcv_buf_bytes: 64 * 1024,
            rtt_cycles: 100_000,      // 50 µs at 2 GHz
            wire_cycles_per_byte: 16, // 1 Gbps
            coalesce_flush_cycles: 24_000,
            irq_latency_cycles: 2_000,
            timeslice_cycles: 6_000_000,
            skid_to_handler: 0.5,
            balance_interval_cycles: 0,
            context_switch_cycles: 1_200,
            arrival_jitter_cycles: 200.0,
            clears_per_device_interrupt: 3,
            clears_per_ipi: 8,
            irq_load_gate: 0.10,
            irq_rotation_cycles: 0,
            loss_rate: 0.0,
            rto_cycles: 400_000,
        }
    }
}

/// Which dataplane services the NICs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataplaneMode {
    /// The paper's interrupt-driven host stack: coalesced IRQs, top/
    /// bottom halves, scheduler wakeups, cross-CPU IPIs. The default —
    /// every pre-existing experiment runs bit-identically.
    #[default]
    Interrupt,
    /// DPDK-style kernel bypass: every CPU is a busy-polling PMD core
    /// that owns the NIC queues its steering `vector_home` maps to it and
    /// runs rx burst → protocol → app to completion, core-locally. No
    /// IRQ, no IPI, no softirq, no scheduler — and no HLT: idle cores
    /// spin, and that burn is charged as busy cycles.
    Poll,
}

/// Poll-dataplane knobs (ignored under [`DataplaneMode::Interrupt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataplaneConfig {
    /// Interrupt-driven or busy-poll.
    pub mode: DataplaneMode,
    /// Max descriptors drained from one queue per poll iteration.
    pub burst: u32,
    /// Cycles one empty poll iteration burns (ring probe + pause loop).
    pub empty_poll_cycles: u64,
    /// SPSC descriptor-ring capacity per queue; 0 auto-sizes to the
    /// per-queue in-flight bound (flows × windows) so the sizing
    /// invariant — the dataplane never drops — holds by construction.
    pub ring_entries: u32,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        DataplaneConfig {
            mode: DataplaneMode::Interrupt,
            burst: 32,
            empty_poll_cycles: 120,
            ring_entries: 0,
        }
    }
}

/// Full description of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of CPUs (the paper's SUT has 2; §5 mentions 4P runs).
    pub cpus: usize,
    /// Number of NIC ports (interrupt vectors / DMA engines).
    pub nics: usize,
    /// Number of TCP connections (flows) = `ttcp` processes. The paper's
    /// SUT runs one flow per NIC; the scale sweep multiplexes many flows
    /// onto each NIC — round-robin (`flow % nics`) in the Figure 3
    /// modes, hash-steered under [`AffinityMode::Rss`].
    pub connections: usize,
    /// Affinity mode under test.
    pub mode: AffinityMode,
    /// The `ttcp` workload.
    pub workload: Workload,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Memory hierarchy geometry.
    pub mem: MemoryConfig,
    /// CPU model (frequency, event penalties).
    pub cpu: CpuConfig,
    /// TCP stack cost model.
    pub stack: StackConfig,
    /// NIC geometry and coalescing.
    pub nic: NicConfig,
    /// Machine-level knobs.
    pub tunables: Tunables,
    /// Explicit steering configuration. `None` (the default everywhere)
    /// falls back to the [`AffinityMode`] preset bundle —
    /// [`AffinityMode::steer_preset`] — so the paper matrix is untouched;
    /// `Some` overrides the mode entirely (e.g.
    /// [`SteerSpec::flow_director`]).
    pub steer: Option<SteerSpec>,
    /// Dataplane selection and poll-mode knobs. The default
    /// ([`DataplaneMode::Interrupt`]) leaves every interrupt-path
    /// experiment untouched.
    pub dataplane: DataplaneConfig,
    /// Server-side connection churn. `None` (the default everywhere)
    /// runs the immortal-flow `ttcp` workload exactly as before; `Some`
    /// switches the machine to dynamic connections — `connections`
    /// becomes the flow-slot count (the concurrency target), and the
    /// run completes when the configured number of connections has gone
    /// SYN → accept → request/response → FIN → close.
    pub server: Option<ServerWorkload>,
}

impl ExperimentConfig {
    /// The paper's system under test: 2 CPUs, 8 NICs, 8 connections.
    #[must_use]
    pub fn paper_sut(direction: Direction, message_bytes: u64, mode: AffinityMode) -> Self {
        ExperimentConfig {
            cpus: 2,
            nics: 8,
            connections: 8,
            mode,
            workload: Workload::steady_state(direction, message_bytes),
            seed: 0x5EED,
            mem: MemoryConfig::paper_sut(2),
            cpu: CpuConfig::paper_sut(),
            stack: StackConfig::paper(),
            nic: NicConfig::default(),
            tunables: Tunables::default(),
            steer: None,
            dataplane: DataplaneConfig::default(),
            server: None,
        }
    }

    /// The effective steering configuration: the explicit [`SteerSpec`]
    /// when set, the mode's preset bundle otherwise. The machine builds
    /// its policy from this — it never looks at the mode directly.
    #[must_use]
    pub fn steer_spec(&self) -> SteerSpec {
        self.steer.unwrap_or_else(|| self.mode.steer_preset())
    }

    /// The §5 four-processor variant (4 CPUs, still 8 NICs).
    #[must_use]
    pub fn four_processor(direction: Direction, message_bytes: u64, mode: AffinityMode) -> Self {
        let mut config = ExperimentConfig::paper_sut(direction, message_bytes, mode);
        config.cpus = 4;
        config.mem = MemoryConfig::paper_sut(4);
        config
    }

    /// A scaled-up SUT: `cpus` CPUs each owning one NIC queue (so
    /// `nics == cpus`), carrying `flows` connections. Round-robin
    /// flow→queue assignment in the Figure 3 modes; hash steering under
    /// [`AffinityMode::Rss`]. Message counts are the quick-run defaults —
    /// the sweep multiplies work by the flow count already.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is outside `1..=64` or `flows` is zero.
    #[must_use]
    pub fn scale(direction: Direction, cpus: usize, flows: usize, mode: AffinityMode) -> Self {
        assert!((1..=64).contains(&cpus), "scale supports 1..=64 CPUs");
        assert!(flows > 0, "need at least one flow");
        let mut config = ExperimentConfig::paper_sut(direction, 4096, mode);
        config.cpus = cpus;
        config.nics = cpus;
        config.connections = flows;
        config.mem = MemoryConfig::paper_sut(cpus);
        config.workload = config.workload.quick();
        config
    }

    /// A multi-queue SUT for the steering sweep: `cpus` CPUs, one NIC
    /// port per four CPUs (minimum one) with four MSI-X queues each —
    /// so queues total `cpus` when `cpus >= 4` — carrying `flows`
    /// connections under an explicit steering `spec`. Quick-run message
    /// counts, like [`ExperimentConfig::scale`].
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is outside `1..=64` or `flows` is zero.
    #[must_use]
    pub fn steer_sweep(direction: Direction, cpus: usize, flows: usize, spec: SteerSpec) -> Self {
        assert!((1..=64).contains(&cpus), "steer_sweep supports 1..=64 CPUs");
        assert!(flows > 0, "need at least one flow");
        let mut config = ExperimentConfig::paper_sut(direction, 4096, AffinityMode::Irq);
        config.cpus = cpus;
        config.nics = (cpus / 4).max(1);
        config.nic.queues = 4;
        config.connections = flows;
        config.mem = MemoryConfig::paper_sut(cpus);
        config.workload = config.workload.quick();
        config.steer = Some(spec);
        config
    }

    /// A kernel-bypass SUT for the interrupt-vs-poll sweep: the same
    /// multi-queue geometry as [`ExperimentConfig::steer_sweep`] (one NIC
    /// port per four CPUs, four MSI-X queues each), but with every CPU
    /// running as a busy-polling PMD core. Flows are RSS-hashed across
    /// queues and queues spread evenly across cores, so the comparison
    /// against the interrupt-mode RSS cell is geometry-for-geometry.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is outside `1..=64` or `flows` is zero.
    #[must_use]
    pub fn poll_sweep(direction: Direction, cpus: usize, flows: usize) -> Self {
        let spec = SteerSpec {
            placement: crate::steer::FlowPlacement::RssHash,
            vectors: crate::steer::VectorLayout::SplitEven,
            dynamic: crate::steer::DynamicSteer::Off,
            pin_processes: false,
        };
        let mut config = ExperimentConfig::steer_sweep(direction, cpus, flows, spec);
        config.dataplane.mode = DataplaneMode::Poll;
        config
    }

    /// A connection-churn SUT for the `repro churn` sweep: the
    /// multi-queue [`ExperimentConfig::steer_sweep`] geometry carrying
    /// `flows` dynamic connection slots under `spec` steering and the
    /// chosen `dataplane`, driven by [`ServerWorkload::churn`]. Per-flow
    /// buffers are trimmed (small skb pools, 16-segment send buffers,
    /// 8-frame peer windows, per-segment ACKs) so 100k-slot cells stay
    /// tractable, and `workload.message_bytes` is sized to the largest
    /// response so the stack's skb regions fit every connection.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is outside `1..=64` or `flows` is zero.
    #[must_use]
    pub fn churn(cpus: usize, flows: usize, spec: SteerSpec, dataplane: DataplaneMode) -> Self {
        let server = ServerWorkload::churn(flows as u64);
        let mut config = ExperimentConfig::steer_sweep(Direction::Tx, cpus, flows, spec);
        config.dataplane.mode = dataplane;
        config.workload.message_bytes = server
            .elephant_response_bytes
            .max(server.response_bytes)
            .max(server.request_bytes);
        config.stack.ack_every = 1;
        config.stack.skb_meta_bytes = 16 * 1024;
        config.stack.skb_data_bytes = 64 * 1024;
        config.tunables.send_buf_segments = 16;
        config.tunables.peer_window = 8;
        config.server = Some(server);
        config
    }

    /// Shrinks the workload for fast tests.
    #[must_use]
    pub fn quick(mut self) -> Self {
        self.workload = self.workload.quick();
        if let Some(server) = self.server {
            self.server = Some(server.quick());
        }
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything a finished run yields: the numeric summary plus the full
/// per-CPU, per-function profile needed for Table 1/3/4 rendering.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Numeric summary.
    pub metrics: RunMetrics,
    /// Per-CPU, per-function event matrix (measurement window only).
    pub profiler: Profiler,
    /// Symbol table matching the profiler.
    pub registry: FunctionRegistry,
    /// Interrupt vectors in global queue order (one per NIC on the
    /// paper SUT's single-queue ports).
    pub vectors: Vec<sim_core::IrqVector>,
    /// Steering counters from the measurement window (all zero under
    /// the paper's static modes).
    pub steer: SteerCounters,
    /// Busy-poll counters aggregated over all PMD cores (all zero under
    /// [`DataplaneMode::Interrupt`]).
    pub poll: PollCounters,
    /// Busy-poll counters per CPU (empty under
    /// [`DataplaneMode::Interrupt`]).
    pub poll_per_cpu: Vec<PollCounters>,
    /// Connection-lifecycle counters (all zero for the immortal-flow
    /// `ttcp` workloads, populated by server/churn runs).
    pub lifecycle: LifecycleCounters,
    /// Host wall-clock seconds spent *constructing* the machine (region
    /// slab provisioning, scheduler spawn, peers), as opposed to running
    /// it. A host-side measurement only: it never feeds simulated
    /// metrics or digests, so it varies run to run while everything else
    /// stays bit-identical.
    pub setup_wall_s: f64,
}

/// Builds the machine, runs the workload to completion and returns the
/// measured result.
///
/// # Errors
///
/// Returns a configuration error if the experiment description is
/// invalid (bad masks, zero-size messages, …).
///
/// # Example
///
/// ```
/// use affinity_sim::{AffinityMode, Direction, ExperimentConfig, run_experiment};
///
/// let config = ExperimentConfig::paper_sut(Direction::Rx, 1024, AffinityMode::Irq).quick();
/// let result = run_experiment(&config)?;
/// assert!(result.metrics.messages > 0);
/// # Ok::<(), sim_core::SimError>(())
/// ```
pub fn run_experiment(config: &ExperimentConfig) -> Result<RunResult> {
    let setup = std::time::Instant::now();
    let mut machine = Machine::new(config)?;
    let setup_wall_s = setup.elapsed().as_secs_f64();
    let metrics = machine.run();
    Ok(RunResult {
        config: config.clone(),
        metrics,
        profiler: machine.profiler().clone(),
        registry: machine.registry().clone(),
        vectors: machine.vectors().to_vec(),
        steer: machine.steer_stats(),
        poll: machine.poll_stats(),
        poll_per_cpu: machine.poll_stats_per_cpu(),
        lifecycle: machine.lifecycle_stats(),
        setup_wall_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sut_shape() {
        let c = ExperimentConfig::paper_sut(Direction::Tx, 65536, AffinityMode::Full);
        assert_eq!(c.cpus, 2);
        assert_eq!(c.nics, 8);
        assert_eq!(c.cpu.freq.hertz(), 2_000_000_000);
        let four = ExperimentConfig::four_processor(Direction::Tx, 65536, AffinityMode::None);
        assert_eq!(four.cpus, 4);
        assert_eq!(four.nics, 8);
    }

    #[test]
    fn quick_run_tx_completes() {
        let config = ExperimentConfig::paper_sut(Direction::Tx, 4096, AffinityMode::Full).quick();
        let result = run_experiment(&config).unwrap();
        assert_eq!(
            result.metrics.messages,
            u64::from(config.workload.measure_messages) * 8
        );
        assert!(result.metrics.throughput_gbps() > 0.0);
        assert!(result.metrics.bytes_moved > 0);
    }

    #[test]
    fn quick_run_rx_completes() {
        let config = ExperimentConfig::paper_sut(Direction::Rx, 4096, AffinityMode::None).quick();
        let result = run_experiment(&config).unwrap();
        assert!(result.metrics.messages > 0);
        assert!(result.metrics.throughput_gbps() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let config = ExperimentConfig::paper_sut(Direction::Tx, 1024, AffinityMode::Irq).quick();
        let a = run_experiment(&config).unwrap();
        let b = run_experiment(&config).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let base = ExperimentConfig::paper_sut(Direction::Tx, 1024, AffinityMode::None).quick();
        let a = run_experiment(&base).unwrap();
        let b = run_experiment(&base.clone().with_seed(99)).unwrap();
        // Same message count, but timing details may shift.
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }

    #[test]
    fn all_modes_run_both_directions() {
        for mode in AffinityMode::ALL {
            for dir in Direction::ALL {
                let config = ExperimentConfig::paper_sut(dir, 1024, mode).quick();
                let r = run_experiment(&config).unwrap();
                assert!(r.metrics.messages > 0, "{mode} {dir} produced nothing");
            }
        }
    }

    #[test]
    fn four_processor_runs() {
        let config =
            ExperimentConfig::four_processor(Direction::Tx, 4096, AffinityMode::Full).quick();
        let r = run_experiment(&config).unwrap();
        assert_eq!(r.metrics.busy_cycles.len(), 4);
        assert!(r.metrics.messages > 0);
    }

    #[test]
    fn scale_config_shape() {
        let c = ExperimentConfig::scale(Direction::Rx, 16, 256, AffinityMode::Rss);
        assert_eq!(c.cpus, 16);
        assert_eq!(c.nics, 16);
        assert_eq!(c.connections, 256);
        assert_eq!(c.mode, AffinityMode::Rss);
    }

    #[test]
    fn scale_run_with_more_flows_than_nics_completes() {
        for mode in [AffinityMode::Full, AffinityMode::Rss] {
            let mut config = ExperimentConfig::scale(Direction::Rx, 2, 6, mode);
            config.workload.warmup_messages = 2;
            config.workload.measure_messages = 3;
            let r = run_experiment(&config).unwrap();
            assert_eq!(r.metrics.messages, 3 * 6, "{mode}");
            assert!(r.metrics.throughput_gbps() > 0.0, "{mode}");
        }
    }

    #[test]
    fn scale_runs_are_deterministic() {
        let mut config = ExperimentConfig::scale(Direction::Tx, 4, 12, AffinityMode::Rss);
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 3;
        let a = run_experiment(&config).unwrap();
        let b = run_experiment(&config).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn steer_spec_falls_back_to_the_mode_preset() {
        let c = ExperimentConfig::paper_sut(Direction::Tx, 4096, AffinityMode::Full);
        assert_eq!(c.steer_spec(), AffinityMode::Full.steer_preset());
        let mut c = c;
        c.steer = Some(SteerSpec::flow_director());
        assert_eq!(c.steer_spec(), SteerSpec::flow_director());
    }

    #[test]
    fn steer_sweep_builds_multi_queue_suts() {
        let c = ExperimentConfig::steer_sweep(Direction::Rx, 16, 64, SteerSpec::flow_director());
        assert_eq!(c.cpus, 16);
        assert_eq!(c.nics, 4);
        assert_eq!(c.nic.queues, 4);
        assert_eq!(c.connections, 64);
        let small = ExperimentConfig::steer_sweep(Direction::Rx, 2, 8, SteerSpec::flow_director());
        assert_eq!(small.nics, 1, "at least one NIC port");
    }

    #[test]
    fn flow_director_run_completes_and_resteers() {
        let mut config =
            ExperimentConfig::steer_sweep(Direction::Rx, 4, 12, SteerSpec::flow_director());
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 3;
        let r = run_experiment(&config).unwrap();
        assert_eq!(r.metrics.messages, 3 * 12);
        assert!(r.metrics.throughput_gbps() > 0.0);
        // The director chases free-running consumers: some re-steering
        // must have happened on a 4-CPU box with 12 unpinned flows.
        assert!(r.steer.resteers > 0, "{:?}", r.steer);
    }

    #[test]
    fn poll_sweep_builds_poll_mode_suts() {
        let c = ExperimentConfig::poll_sweep(Direction::Rx, 16, 64);
        assert_eq!(c.dataplane.mode, DataplaneMode::Poll);
        assert_eq!(c.cpus, 16);
        assert_eq!(c.nics, 4);
        assert_eq!(c.nic.queues, 4);
        // The default config stays on the interrupt plane.
        let paper = ExperimentConfig::paper_sut(Direction::Rx, 4096, AffinityMode::Irq);
        assert_eq!(paper.dataplane.mode, DataplaneMode::Interrupt);
    }

    #[test]
    fn poll_rx_runs_with_no_interrupts_clears_or_ipis() {
        let mut config = ExperimentConfig::poll_sweep(Direction::Rx, 4, 12);
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 3;
        let r = run_experiment(&config).unwrap();
        assert_eq!(r.metrics.messages, 3 * 12);
        assert!(r.metrics.throughput_gbps() > 0.0);
        // The whole point of kernel bypass: zero interrupts, zero
        // machine clears, zero IPIs, zero scheduler traffic.
        assert_eq!(r.metrics.interrupts, 0);
        assert_eq!(
            r.metrics.clears_by_reason.iter().sum::<u64>(),
            0,
            "{:?}",
            r.metrics.clears_by_reason
        );
        assert_eq!(r.metrics.resched_ipis, 0);
        assert_eq!(r.metrics.wake_migrations, 0);
        // Poll accounting is live and spin was charged somewhere.
        assert!(r.poll.polls > 0, "{:?}", r.poll);
        assert!(r.poll.rx_frames > 0);
        assert_eq!(r.poll_per_cpu.len(), 4);
    }

    #[test]
    fn poll_tx_runs_and_prices_burned_cores() {
        let mut config = ExperimentConfig::poll_sweep(Direction::Tx, 4, 12);
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 3;
        let r = run_experiment(&config).unwrap();
        assert_eq!(r.metrics.messages, 3 * 12);
        assert_eq!(r.metrics.interrupts, 0);
        assert!(r.poll.tx_frames > 0, "{:?}", r.poll);
        // Every PMD core is busy for the whole measurement window: spin
        // fills whatever work leaves idle, so per-core busy ≈ wall.
        let wall = r.metrics.wall_cycles;
        for (c, &busy) in r.metrics.busy_cycles.iter().enumerate() {
            assert!(
                busy >= wall * 9 / 10,
                "PMD core {c} busy {busy} not ≈ wall {wall}"
            );
        }
    }

    #[test]
    fn poll_runs_are_deterministic() {
        let mut config = ExperimentConfig::poll_sweep(Direction::Rx, 4, 12);
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 3;
        let a = run_experiment(&config).unwrap();
        let b = run_experiment(&config).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.poll, b.poll);
        assert_eq!(a.poll_per_cpu, b.poll_per_cpu);
    }

    #[test]
    fn interrupt_runs_report_zero_poll_counters() {
        let config = ExperimentConfig::paper_sut(Direction::Rx, 4096, AffinityMode::Irq).quick();
        let r = run_experiment(&config).unwrap();
        assert_eq!(r.poll, PollCounters::default());
        assert!(r.poll_per_cpu.is_empty());
    }

    #[test]
    fn flow_director_runs_are_deterministic() {
        let mut config =
            ExperimentConfig::steer_sweep(Direction::Rx, 4, 12, SteerSpec::flow_director());
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 3;
        let a = run_experiment(&config).unwrap();
        let b = run_experiment(&config).unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.steer, b.steer);
    }

    #[test]
    fn aggregate_targets_bound_the_window_machine_wide() {
        // With per-connection targets, 8 flows x 3 measured messages
        // means 24 measured messages; with aggregate targets the same
        // numbers are machine-wide totals — the knob the million-flow
        // cells rely on to keep the run window independent of the
        // provisioned flow count.
        let mut config = ExperimentConfig::scale(Direction::Rx, 2, 8, AffinityMode::Rss);
        config.workload.warmup_messages = 2;
        config.workload.measure_messages = 3;
        let per_conn = run_experiment(&config).unwrap();
        assert_eq!(per_conn.metrics.messages, 24);
        config.workload.aggregate_targets = true;
        let aggregate = run_experiment(&config).unwrap();
        assert_eq!(aggregate.metrics.messages, 3);
        // Both runs are deterministic on their own terms.
        let again = run_experiment(&config).unwrap();
        assert_eq!(aggregate.metrics, again.metrics);
    }

    #[test]
    fn quiet_provisioned_flows_do_not_perturb_the_streaming_set() {
        // A machine with 512 provisioned flows streaming on the first 8
        // runs the exact same measurement as a machine with only those 8:
        // quiet flows hold state (arena slot, page region, parked task)
        // but never source a frame, enter a bottom half, or run. The
        // million-flow cells depend on this — the quiet tail must be
        // construction cost only, not run-loop cost.
        let mut small = ExperimentConfig::scale(Direction::Rx, 2, 8, AffinityMode::Rss);
        small.workload.aggregate_targets = true;
        small.workload.warmup_messages = 2;
        small.workload.measure_messages = 6;
        let baseline = run_experiment(&small).unwrap();
        let mut wide = ExperimentConfig::scale(Direction::Rx, 2, 512, AffinityMode::Rss);
        wide.workload = small.workload;
        wide.workload.active_conns = 8;
        let provisioned = run_experiment(&wide).unwrap();
        assert_eq!(provisioned.metrics.messages, baseline.metrics.messages);
        assert_eq!(
            provisioned.metrics.wall_cycles,
            baseline.metrics.wall_cycles
        );
    }

    #[test]
    fn churn_config_shape() {
        let c = ExperimentConfig::churn(8, 64, SteerSpec::flow_director(), DataplaneMode::Poll);
        assert_eq!(c.cpus, 8);
        assert_eq!(c.connections, 64);
        assert_eq!(c.dataplane.mode, DataplaneMode::Poll);
        let server = c.server.expect("churn sets a server workload");
        assert_eq!(server.total_conns(), 64 + 32);
        assert_eq!(c.stack.ack_every, 1, "server flows ACK every segment");
        // Responses fit the per-connection buffers.
        assert!(server.elephant_response_bytes <= c.stack.skb_data_bytes);
        // quick() shrinks the connection budget too.
        let q = c.quick();
        assert!(q.server.expect("still server").total_conns() <= server.total_conns());
    }

    #[test]
    fn churn_interrupt_run_completes_and_drains() {
        let config =
            ExperimentConfig::churn(4, 24, SteerSpec::flow_director(), DataplaneMode::Interrupt)
                .quick();
        let r = run_experiment(&config).unwrap();
        let total = config.server.unwrap().total_conns();
        assert!(r.lifecycle.accepts > 0, "{:?}", r.lifecycle);
        assert!(r.lifecycle.completes > 0, "{:?}", r.lifecycle);
        assert!(
            r.lifecycle.backlog_drops > 0,
            "the overbooked arrival wave must contend for slots: {:?}",
            r.lifecycle
        );
        assert!(r.lifecycle.completes <= total);
        assert!(r.lifecycle.fct_p50_cycles > 0);
        assert!(r.lifecycle.fct_p99_cycles >= r.lifecycle.fct_p50_cycles);
        // Drain invariants: no live slots, no leaked FlowDirector entries.
        assert_eq!(r.lifecycle.final_live_flows, 0, "{:?}", r.lifecycle);
        assert_eq!(r.lifecycle.final_table_entries, 0, "{:?}", r.lifecycle);
        assert!(r.metrics.bytes_moved > 0);
        assert!(r.metrics.interrupts > 0);
    }

    #[test]
    fn churn_poll_run_completes_and_drains() {
        let config =
            ExperimentConfig::churn(4, 24, SteerSpec::flow_director(), DataplaneMode::Poll).quick();
        let r = run_experiment(&config).unwrap();
        assert!(r.lifecycle.accepts > 0, "{:?}", r.lifecycle);
        assert!(r.lifecycle.completes > 0, "{:?}", r.lifecycle);
        assert_eq!(r.lifecycle.final_live_flows, 0, "{:?}", r.lifecycle);
        assert_eq!(r.lifecycle.final_table_entries, 0, "{:?}", r.lifecycle);
        // Kernel bypass stays bypassed under churn.
        assert_eq!(r.metrics.interrupts, 0);
        assert_eq!(r.metrics.clears_by_reason.iter().sum::<u64>(), 0);
    }

    #[test]
    fn churn_runs_are_deterministic() {
        for plane in [DataplaneMode::Interrupt, DataplaneMode::Poll] {
            let config = ExperimentConfig::churn(4, 24, SteerSpec::flow_director(), plane).quick();
            let a = run_experiment(&config).unwrap();
            let b = run_experiment(&config).unwrap();
            assert_eq!(a.metrics, b.metrics, "{plane:?}");
            assert_eq!(a.lifecycle, b.lifecycle, "{plane:?}");
            assert_eq!(a.steer, b.steer, "{plane:?}");
        }
    }

    #[test]
    fn churn_rss_run_reports_no_table() {
        let mut spec = SteerSpec::flow_director();
        spec.dynamic = crate::steer::DynamicSteer::Off;
        let config = ExperimentConfig::churn(4, 24, spec, DataplaneMode::Interrupt).quick();
        let r = run_experiment(&config).unwrap();
        assert!(r.lifecycle.completes > 0);
        assert_eq!(r.lifecycle.final_live_flows, 0);
        // RSS keeps no per-flow table; the occupancy probe reports zero.
        assert_eq!(r.lifecycle.final_table_entries, 0);
    }

    #[test]
    fn immortal_workloads_report_zero_lifecycle() {
        let config = ExperimentConfig::paper_sut(Direction::Tx, 1024, AffinityMode::Irq).quick();
        let r = run_experiment(&config).unwrap();
        assert_eq!(r.lifecycle, LifecycleCounters::default());
    }
}
