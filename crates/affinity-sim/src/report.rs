//! Text renderers that regenerate every table and figure of the paper.
//!
//! Each function returns a plain-text table shaped like the paper's
//! artifact; the `bench` crate's `repro` binary prints them, and
//! `EXPERIMENTS.md` records the outputs next to the paper's numbers.

use std::fmt::Write as _;

use sim_core::CpuId;
use sim_cpu::{EventCosts, HwEvent};
use sim_prof::{symbol_report, SampleView};
use sim_tcp::Bin;

use crate::analysis::{bin_improvements, impact_indicators, overall_improvement, spearman};
use crate::experiment::RunResult;
use crate::metrics::RunMetrics;
use crate::mode::AffinityMode;

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Figure 3: bandwidth and CPU utilization vs transaction size, one row
/// per size, one column pair per affinity mode.
#[must_use]
pub fn render_figure3(direction: &str, rows: &[(u64, Vec<(AffinityMode, RunMetrics)>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 ({direction}): Bandwidth (Mb/s) and CPU Utilization"
    );
    let _ = write!(out, "{:>8}", "size");
    if let Some((_, mode_cols)) = rows.first() {
        for (mode, _) in mode_cols {
            let _ = write!(out, " | {:>9} BW {:>5} CPU", mode.label(), "");
        }
    }
    let _ = writeln!(out);
    for (size, mode_cols) in rows {
        let _ = write!(out, "{size:>8}");
        for (_, m) in mode_cols {
            let _ = write!(
                out,
                " | {:>9.0} Mb {:>8}",
                m.throughput_mbps(),
                pct(m.avg_utilization())
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 4: processing cost in GHz/Gbps vs transaction size.
#[must_use]
pub fn render_figure4(direction: &str, rows: &[(u64, Vec<(AffinityMode, RunMetrics)>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 4 ({direction}): Cost in GHz/Gbps");
    let _ = write!(out, "{:>8}", "size");
    if let Some((_, mode_cols)) = rows.first() {
        for (mode, _) in mode_cols {
            let _ = write!(out, " | {:>9}", mode.label());
        }
    }
    let _ = writeln!(out);
    for (size, mode_cols) in rows {
        let _ = write!(out, "{size:>8}");
        for (_, m) in mode_cols {
            let _ = write!(out, " | {:>9.2}", m.cost_ghz_per_gbps());
        }
        let _ = writeln!(out);
    }
    out
}

/// One panel of Table 1 (e.g. "TX 64KB"): per-bin %cycles, CPI, MPI,
/// %branches and %branch-mispredictions under no and full affinity.
#[must_use]
pub fn render_table1_panel(panel: &str, no_aff: &RunMetrics, full_aff: &RunMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1 — {panel}");
    let _ = writeln!(
        out,
        "{:>10} | {:>8} {:>8} | {:>7} {:>7} | {:>8} {:>8} | {:>7} {:>7} | {:>7} {:>7}",
        "bin",
        "%cy(no)",
        "%cy(fu)",
        "CPI(no)",
        "CPI(fu)",
        "MPI(no)",
        "MPI(fu)",
        "%br(no)",
        "%br(fu)",
        "%mis(no)",
        "%mis(fu)"
    );
    for bin in Bin::ALL {
        let n = no_aff.bin(bin);
        let f = full_aff.bin(bin);
        let _ = writeln!(
            out,
            "{:>10} | {:>8} {:>8} | {:>7.2} {:>7.2} | {:>8.4} {:>8.4} | {:>7} {:>7} | {:>7} {:>7}",
            bin.label(),
            pct(no_aff.bin_cycle_share(bin)),
            pct(full_aff.bin_cycle_share(bin)),
            n.cpi(),
            f.cpi(),
            n.mpi(),
            f.mpi(),
            pct(n.branch_fraction()),
            pct(f.branch_fraction()),
            pct(n.mispredict_fraction()),
            pct(f.mispredict_fraction()),
        );
    }
    let (tn, tf) = (no_aff.total, full_aff.total);
    let _ = writeln!(
        out,
        "{:>10} | {:>8} {:>8} | {:>7.2} {:>7.2} | {:>8.4} {:>8.4} | {:>7} {:>7} | {:>7} {:>7}",
        "Overall",
        "100.0%",
        "100.0%",
        tn.cpi(),
        tf.cpi(),
        tn.mpi(),
        tf.mpi(),
        pct(tn.branch_fraction()),
        pct(tf.branch_fraction()),
        pct(tn.mispredict_fraction()),
        pct(tf.mispredict_fraction()),
    );
    out
}

/// Table 2: the spinlock behaviour behind Table 1's "Locks" anomaly —
/// instruction/branch collapse and the inverted mispredict ratio.
#[must_use]
pub fn render_table2(no_aff: &RunMetrics, full_aff: &RunMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2 — Spinlock behaviour (Locks bin)");
    let _ = writeln!(
        out,
        "{:>22} | {:>12} | {:>12}",
        "", "no affinity", "full affinity"
    );
    let n = no_aff.bin(Bin::Locks);
    let f = full_aff.bin(Bin::Locks);
    let rows: [(&str, u64, u64); 4] = [
        (
            "acquisitions",
            no_aff.lock_acquisitions,
            full_aff.lock_acquisitions,
        ),
        ("contended", no_aff.lock_contended, full_aff.lock_contended),
        ("instructions", n.instructions, f.instructions),
        ("branches", n.branches, f.branches),
    ];
    for (label, a, b) in rows {
        let _ = writeln!(out, "{label:>22} | {a:>12} | {b:>12}");
    }
    let _ = writeln!(
        out,
        "{:>22} | {:>12} | {:>12}",
        "mispredict ratio",
        pct(n.mispredict_fraction()),
        pct(f.mispredict_fraction())
    );
    out
}

/// One panel of Figure 5: % of run time attributed to each event.
#[must_use]
pub fn render_figure5_panel(panel: &str, metrics: &RunMetrics, costs: &EventCosts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5 — {panel}");
    let _ = writeln!(
        out,
        "{:>16} | {:>5} | {:>12} | {:>7}",
        "event", "cost", "count", "%time"
    );
    for row in impact_indicators(&metrics.total, costs) {
        let cost = if row.event == HwEvent::Instructions {
            "0.33".to_string()
        } else {
            row.cost.to_string()
        };
        let _ = writeln!(
            out,
            "{:>16} | {:>5} | {:>12} | {:>7}",
            row.event.label(),
            cost,
            row.count,
            pct(row.share)
        );
    }
    out
}

/// One panel of Table 3: baseline character plus per-bin improvement
/// contributions in cycles, LLC misses and machine clears.
#[must_use]
pub fn render_table3_panel(panel: &str, base: &RunMetrics, full: &RunMetrics) -> String {
    let mut out = String::new();
    let rows = bin_improvements(base, full);
    let _ = writeln!(
        out,
        "Table 3 — {panel} (no affinity baseline, improvements to full)"
    );
    let _ = writeln!(
        out,
        "{:>10} | {:>7} {:>6} {:>8} | {:>8} {:>8} {:>8}",
        "bin", "%time", "CPI", "MPIx1e-3", "d-cycles", "d-LLC", "d-clears"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:>10} | {:>7} {:>6.1} {:>8.1} | {:>8} {:>8} {:>8}",
            r.bin.label(),
            pct(r.pct_time_base),
            r.cpi_base,
            r.mpi_base * 1e3,
            pct(r.cycles_improvement),
            pct(r.llc_improvement),
            pct(r.clears_improvement),
        );
    }
    let _ = writeln!(
        out,
        "{:>10} | {:>7} {:>6} {:>8} | {:>8} {:>8} {:>8}",
        "Overall",
        "",
        "",
        "",
        pct(overall_improvement(&rows, HwEvent::Cycles)),
        pct(overall_improvement(&rows, HwEvent::LlcMiss)),
        pct(overall_improvement(&rows, HwEvent::MachineClear)),
    );
    out
}

/// Table 4: per-CPU functions with the most machine clears.
#[must_use]
pub fn render_table4(title: &str, result: &RunResult, limit: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4 — {title}: functions with most machine clears");
    for c in 0..result.config.cpus {
        let cpu = CpuId::new(c as u32);
        let _ = writeln!(out, "CPU {c}");
        let _ = writeln!(out, "{:>10} {:>7}  symbol", "samples", "%");
        let rows = symbol_report(
            &result.profiler,
            &result.registry,
            cpu,
            HwEvent::MachineClear,
            SampleView::new(1),
            limit,
        );
        for row in rows {
            let _ = writeln!(
                out,
                "{:>10} {:>6.2}%  {}",
                row.samples, row.percent, row.symbol
            );
        }
    }
    out
}

/// Table 5: Spearman rank correlation between per-bin cycle improvements
/// and per-bin LLC/machine-clear improvements, one row per workload.
#[must_use]
pub fn render_table5(entries: &[(String, RunMetrics, RunMetrics)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5 — Rank correlation of cycle improvements with event improvements"
    );
    let _ = writeln!(out, "{:>10} | {:>6} | {:>6}", "workload", "LLC", "Clears");
    for (label, base, full) in entries {
        let rows = bin_improvements(base, full);
        let cycles: Vec<f64> = rows.iter().map(|r| r.cycles_improvement).collect();
        let llc: Vec<f64> = rows.iter().map(|r| r.llc_improvement).collect();
        let clears: Vec<f64> = rows.iter().map(|r| r.clears_improvement).collect();
        let _ = writeln!(
            out,
            "{:>10} | {:>6.2} | {:>6.2}",
            label,
            spearman(&cycles, &llc),
            spearman(&cycles, &clears)
        );
    }
    let _ = writeln!(
        out,
        "(paper's quoted critical value for p=0.05, 1-tail: {})",
        crate::analysis::PAPER_CRITICAL_VALUE
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig};
    use crate::workload::Direction;

    fn quick_pair() -> (RunMetrics, RunMetrics) {
        let no = run_experiment(
            &ExperimentConfig::paper_sut(Direction::Tx, 1024, AffinityMode::None).quick(),
        )
        .unwrap();
        let full = run_experiment(
            &ExperimentConfig::paper_sut(Direction::Tx, 1024, AffinityMode::Full).quick(),
        )
        .unwrap();
        (no.metrics, full.metrics)
    }

    #[test]
    fn figure3_and_4_render() {
        let (no, full) = quick_pair();
        let rows = vec![(
            1024u64,
            vec![(AffinityMode::None, no), (AffinityMode::Full, full)],
        )];
        let f3 = render_figure3("TX", &rows);
        assert!(f3.contains("Figure 3"));
        assert!(f3.contains("1024"));
        assert!(f3.contains("No Aff"));
        let f4 = render_figure4("TX", &rows);
        assert!(f4.contains("GHz/Gbps"));
    }

    #[test]
    fn table1_panel_renders_all_bins() {
        let (no, full) = quick_pair();
        let t = render_table1_panel("TX 1KB", &no, &full);
        for bin in Bin::ALL {
            assert!(t.contains(bin.label()), "missing {bin} in:\n{t}");
        }
        assert!(t.contains("Overall"));
    }

    #[test]
    fn table2_renders() {
        let (no, full) = quick_pair();
        let t = render_table2(&no, &full);
        assert!(t.contains("acquisitions"));
        assert!(t.contains("mispredict ratio"));
    }

    #[test]
    fn figure5_renders() {
        let (no, _) = quick_pair();
        let t = render_figure5_panel("TX 1KB no-aff", &no, &EventCosts::paper());
        assert!(t.contains("Machine clear"));
        assert!(t.contains("LLC miss"));
        assert!(t.contains("0.33"));
    }

    #[test]
    fn table3_renders() {
        let (no, full) = quick_pair();
        let t = render_table3_panel("TX 1KB", &no, &full);
        assert!(t.contains("d-cycles"));
        assert!(t.contains("Overall"));
    }

    #[test]
    fn table4_renders_per_cpu() {
        let result = run_experiment(
            &ExperimentConfig::paper_sut(Direction::Tx, 1024, AffinityMode::None).quick(),
        )
        .unwrap();
        let t = render_table4("TX 1KB no affinity", &result, 10);
        assert!(t.contains("CPU 0"));
        assert!(t.contains("CPU 1"));
    }

    #[test]
    fn table5_renders() {
        let (no, full) = quick_pair();
        let t = render_table5(&[("TX 1KB".to_string(), no, full)]);
        assert!(t.contains("LLC"));
        assert!(t.contains("critical value"));
    }
}
