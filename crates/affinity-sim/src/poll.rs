//! The kernel-bypass poll-mode dataplane's state: per-queue SPSC
//! descriptor rings, the mempool backing them, and the PMD cores that
//! busy-poll them.
//!
//! Under [`DataplaneMode::Poll`](crate::DataplaneMode::Poll) the machine
//! routes every device-side completion through these rings instead of
//! the interrupt path: frame arrivals, peer ACKs and transmit
//! completions become descriptors pushed (device side) and popped (PMD
//! side) on the queue's single-producer/single-consumer ring. Queue →
//! core ownership is fixed at construction from the steering policy's
//! `vector_home`, which is exactly what makes each ring single-consumer.
//!
//! Ring capacity auto-sizes to the per-queue in-flight bound — each flow
//! can have at most `peer_window` data frames plus roughly
//! `2 × send_buf_segments` completions/ACKs outstanding — so the sizing
//! invariant *the dataplane never drops* holds by construction; the
//! machine asserts it rather than modeling poll-mode drop recovery.

use crate::experiment::DataplaneConfig;
use sim_net::{Mempool, SpscRing};
use sim_os::{PmdConfig, PmdCore};
use sim_prof::PollCounters;

/// A completion descriptor a PMD core finds on its queue's rx ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RxDesc {
    /// A data frame from the peer (RX workload). Pins a mempool buffer.
    Data {
        /// Flow the frame belongs to.
        flow: usize,
        /// Payload bytes.
        bytes: u32,
        /// Cycle the device enqueued the descriptor.
        at: u64,
    },
    /// A peer ACK frame (TX workload). Pins a mempool buffer.
    Ack {
        /// Flow the ACK belongs to.
        flow: usize,
        /// Segments acknowledged.
        acked: u32,
        /// Cycle the device enqueued the descriptor.
        at: u64,
    },
    /// A transmit completion (TX workload). Reuses the tx descriptor —
    /// no mempool buffer.
    TxDone {
        /// Flow whose segment left the wire.
        flow: usize,
        /// Cycle the device enqueued the descriptor.
        at: u64,
    },
    /// A connection-opening SYN (server workload). Pins a mempool
    /// buffer; the flow slot was allocated device-side at arrival.
    Syn {
        /// Flow slot the new connection was allocated.
        flow: usize,
        /// Cycle the device enqueued the descriptor.
        at: u64,
    },
    /// The client's ACK of our FIN (server workload teardown). Pins a
    /// mempool buffer.
    FinAck {
        /// Flow being torn down.
        flow: usize,
        /// Cycle the device enqueued the descriptor.
        at: u64,
    },
}

impl RxDesc {
    /// Cycle the device enqueued this descriptor (the earliest a PMD
    /// core can observe it).
    pub(crate) fn at(&self) -> u64 {
        match *self {
            RxDesc::Data { at, .. }
            | RxDesc::Ack { at, .. }
            | RxDesc::TxDone { at, .. }
            | RxDesc::Syn { at, .. }
            | RxDesc::FinAck { at, .. } => at,
        }
    }

    /// True when this descriptor pins a mempool buffer.
    pub(crate) fn pins_buffer(&self) -> bool {
        !matches!(self, RxDesc::TxDone { .. })
    }
}

/// A transmit descriptor the PMD core hands to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TxDesc {
    /// Flow the segment belongs to.
    pub flow: usize,
    /// Segment payload bytes.
    pub bytes: u32,
}

/// All poll-dataplane state: rings, pools, core ownership, counters.
#[derive(Debug)]
pub(crate) struct PollPlane {
    /// Busy-poll knobs (burst size, empty-poll cost).
    pub pmd: PmdConfig,
    /// One PMD core per CPU (cores with no queues still spin).
    pub cores: Vec<PmdCore>,
    /// Owning PMD core of each global queue.
    pub cpu_of_queue: Vec<usize>,
    /// Per-queue rx/completion descriptor ring (device → PMD).
    pub rx: Vec<SpscRing<RxDesc>>,
    /// Per-queue tx descriptor ring (PMD → device).
    pub tx: Vec<SpscRing<TxDesc>>,
    /// Per-queue rx buffer pool.
    pub pool: Vec<Mempool>,
    /// Per-CPU poll accounting (measurement window).
    pub counters: Vec<PollCounters>,
}

impl PollPlane {
    /// Builds the dataplane: queue `q` is owned by `queue_homes[q]`, and
    /// each queue's ring is sized to its worst-case in-flight descriptor
    /// population (unless `config.ring_entries` overrides it).
    pub(crate) fn new(
        cpus: usize,
        queue_homes: &[usize],
        queue_flows: &[Vec<usize>],
        config: &DataplaneConfig,
        peer_window: u32,
        send_buf_segments: u32,
    ) -> Self {
        let mut cores: Vec<PmdCore> = (0..cpus)
            .map(|c| PmdCore::new(sim_core::CpuId::new(c as u32)))
            .collect();
        for (q, &home) in queue_homes.iter().enumerate() {
            cores[home].assign(q);
        }
        // +4 covers the server-lifecycle descriptors a flow can have
        // outstanding on top of its data windows (SYN, FIN completion,
        // FIN-ACK, and one frame of slack).
        let per_flow = (peer_window + 2 * send_buf_segments + 4) as usize;
        let mut rx = Vec::with_capacity(queue_homes.len());
        let mut tx = Vec::with_capacity(queue_homes.len());
        let mut pool = Vec::with_capacity(queue_homes.len());
        for flows in queue_flows {
            let entries = if config.ring_entries > 0 {
                config.ring_entries as usize
            } else {
                flows.len() * per_flow + 8
            };
            let ring: SpscRing<RxDesc> = SpscRing::with_capacity(entries);
            pool.push(Mempool::new(ring.capacity()));
            rx.push(ring);
            tx.push(SpscRing::with_capacity(entries));
        }
        PollPlane {
            pmd: PmdConfig {
                burst: config.burst.max(1),
                empty_poll_cycles: config.empty_poll_cycles.max(1),
            },
            cores,
            cpu_of_queue: queue_homes.to_vec(),
            rx,
            tx,
            pool,
            counters: vec![PollCounters::default(); cpus],
        }
    }

    /// Earliest enqueue time among the head descriptors of `cpu`'s
    /// queues, or `None` when every owned ring is empty.
    pub(crate) fn next_rx_at(&self, cpu: usize) -> Option<u64> {
        self.cores[cpu]
            .queues()
            .iter()
            .filter_map(|&q| self.rx[q].peek().map(RxDesc::at))
            .min()
    }

    /// Discards warm-up accounting (golden measurement windows only).
    pub(crate) fn reset_counters(&mut self) {
        for c in &mut self.counters {
            *c = PollCounters::default();
        }
    }
}
