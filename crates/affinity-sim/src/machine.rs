//! The simulated system under test and its run loop.
//!
//! [`Machine`] wires the substrates into the paper's testbed: *N* CPUs
//! sharing a coherent memory system, NIC ports carrying long-lived
//! `ttcp` connections (one flow per port on the paper's 8-NIC SUT; many
//! flows per port in the scale sweep, round-robin or RSS-hash steered),
//! an IO-APIC routing the interrupt vectors (named `0x19`–`0x27` as in
//! the paper's Table 4), the scheduler, the IPI fabric and the modelled
//! TCP stack.
//!
//! The run loop is a conservative discrete-event simulation: each CPU
//! has a local clock advanced by the work it executes; device-side
//! events (frame arrivals, wire transmissions, coalescing timers) live
//! on a global queue and inject interrupts into whichever CPU the APIC
//! routes them to. Device interrupts and IPIs flush the target pipeline
//! — a machine clear charged at the paper's 500-cycle penalty and
//! attributed, Oprofile-skid-style, either to the interrupt handler or
//! to a cycle-weighted draw over the code recently executing on that
//! CPU.

use sim_core::{
    ConnectionId, CpuId, DeviceId, IrqVector, Result, ShardedEventQueue, SimRng, SimTime, TaskId,
};
use sim_cpu::{ClearReason, Core, PerfCounters};
use sim_mem::MemorySystem;
use sim_net::{Nic, Peer, PeerConfig};
use sim_os::{CpuMask, IoApic, IpiFabric, IpiKind, PmdCore, Scheduler, SchedulerConfig};
use sim_prof::{FuncId, PollCounters, Profiler, SteerCounters};
use sim_tcp::{Bin, ConnState, ExecCtx, TcpStack};

use crate::experiment::{DataplaneMode, ExperimentConfig};
use crate::metrics::{BinBreakdown, LifecycleCounters, RunMetrics};
use crate::poll::{PollPlane, RxDesc, TxDesc};
use crate::ready::ReadyCpus;
use crate::steer::{even_home, SteeringPolicy};
use crate::workload::{Direction, ServerWorkload};

/// True when run-loop iteration `guard` should emit a trace line: every
/// power of two (dense coverage early, when wedges usually happen) plus
/// every 200k iterations (steady cadence late). `guard = 0` is quiet —
/// the old `guard & (guard - 1) == 0` form mis-fired there, tracing an
/// iteration that never ran.
#[must_use]
pub fn should_trace(guard: u64) -> bool {
    guard.is_power_of_two() || (guard > 0 && guard.is_multiple_of(200_000))
}

/// The paper's NIC interrupt vectors (Table 4), reused cyclically for
/// machines with more than eight NICs.
pub const PAPER_VECTORS: [u32; 8] = [0x19, 0x1a, 0x1b, 0x1d, 0x23, 0x24, 0x25, 0x27];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A data frame from the peer arrives for a flow (RX workload).
    FrameArrival { flow: usize, bytes: u32 },
    /// A peer ACK arrives for a flow (TX workload).
    AckArrival { flow: usize, acked: u32 },
    /// The flow's NIC transmits one queued frame (TX workload).
    WireTx { flow: usize, bytes: u32 },
    /// Interrupt-moderation timer for one hardware queue.
    CoalesceFlush { queue: usize, armed_at: u64 },
    /// Retransmission timeout for a lost frame of a flow.
    RtoFire { flow: usize, bytes: u32 },
    /// Linux 2.6-style periodic interrupt rotation.
    IrqRotate,
    /// Periodic scheduler load balancing.
    LoadBalance,
    /// A client opens a new connection (server workload): a SYN reaches
    /// whatever queue the allocated flow slot rides.
    ConnArrival,
    /// The client's ACK of our FIN arrives (server workload teardown).
    FinAckArrival { flow: usize },
}

/// All dynamic-connection state of a server-workload run. `None` for the
/// immortal-flow `ttcp` workloads — every field here is dead weight on
/// those paths, so the whole thing lives behind one boxed option.
#[derive(Debug)]
struct ServerState {
    workload: ServerWorkload,
    /// Connection arrivals scheduled so far (client retries after a
    /// dropped SYN re-use their original arrival's budget).
    scheduled: u64,
    /// Serial number stamped on the next admitted connection — drives
    /// the deterministic mice/elephant response mix.
    serial: u64,
    /// Lifetime lifecycle counters.
    accepts: u64,
    completes: u64,
    backlog_drops: u64,
    /// Measurement-window lifecycle counters.
    window_accepts: u64,
    window_completes: u64,
    /// Per-slot scratch, indexed by flow slot (reset at each
    /// incarnation's admission).
    syn_pending: Vec<bool>,
    finack_pending: Vec<bool>,
    request_remaining: Vec<u64>,
    response_remaining: Vec<u64>,
    conn_bytes: Vec<u64>,
    started_at: Vec<u64>,
    /// Flow-completion-time samples (SYN arrival → teardown complete)
    /// from the measurement window.
    fct: Vec<u64>,
    /// Flows with work staged for their queue's next bottom half — the
    /// server-mode replacement for scanning every flow of a queue.
    queue_pending: Vec<Vec<usize>>,
    in_pending: Vec<bool>,
}

/// One drained poll-mode rx burst, classified by descriptor type.
#[derive(Debug, Default)]
struct PollBurst {
    /// Per flow: completed tx descriptors.
    txdone: Vec<(usize, u32)>,
    /// Per flow: segments acknowledged.
    acks: Vec<(usize, u32)>,
    /// Per flow: received frame sizes.
    data: Vec<(usize, Vec<u32>)>,
    /// Flows with an arriving SYN.
    syns: Vec<usize>,
    /// Flows with a FIN-ACK completing teardown.
    finacks: Vec<usize>,
}

impl PollBurst {
    fn is_empty(&self) -> bool {
        self.txdone.is_empty()
            && self.acks.is_empty()
            && self.data.is_empty()
            && self.syns.is_empty()
            && self.finacks.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockReason {
    /// Sender waiting for send-buffer space.
    TxSpace,
    /// Receiver waiting for socket data.
    RxData,
}

#[derive(Debug, Clone)]
struct TaskRun {
    task: TaskId,
    conn: usize,
    /// RX: bytes still missing from the current application message.
    remaining: u64,
    blocked: Option<BlockReason>,
}

/// The simulated system under test.
#[derive(Debug)]
pub struct Machine {
    config: ExperimentConfig,
    mem: MemorySystem,
    cores: Vec<Core>,
    clocks: Vec<u64>,
    sched: Scheduler,
    apic: IoApic,
    ipi: IpiFabric,
    nics: Vec<Nic>,
    peers: Vec<Peer>,
    stack: TcpStack,
    prof: Profiler,
    rng: SimRng,
    /// Pending device/wire events, sharded into one lane per CPU plus a
    /// device lane (index `cpus`). Lane choice is storage layout only —
    /// the sharded queue merges lanes in global `(time, seq)` order, so
    /// routing cannot change pop order (see `sim_core::event`). Routing
    /// flow/queue events to the interrupt's current home CPU keeps each
    /// lane's calendar dense with same-CPU work.
    events: ShardedEventQueue<Event>,
    /// MSI-X vector of each hardware queue, in global queue order.
    vectors: Vec<IrqVector>,
    ready: ReadyCpus,

    /// The steering policy (placement/layout consulted at construction,
    /// dynamic hooks on the interrupt path). Built once from the
    /// experiment's [`SteerSpec`](crate::steer::SteerSpec) — no
    /// `AffinityMode` dispatch survives in the run loop.
    steering: Box<dyn SteeringPolicy>,
    steer_stats: SteerCounters,

    /// The kernel-bypass dataplane — `Some` only under
    /// [`DataplaneMode::Poll`], where the run loop below is replaced by
    /// [`Machine::run_poll`] and none of the interrupt/scheduler
    /// machinery ever fires.
    poll: Option<PollPlane>,

    /// Dynamic connection lifecycle — `Some` only for server workloads,
    /// where `connections` is a slot-arena bound, flows are born on SYN
    /// and die on FIN-ACK, and process context is charged directly on
    /// the connection's home CPU instead of through scheduler tasks.
    server: Option<Box<ServerState>>,
    /// Whether consumer processing pins to each queue's even-spread home
    /// CPU (the spec's `pin_processes`, cached for server-mode charging).
    pin_processes: bool,

    tasks: Vec<TaskRun>,
    task_of_conn: Vec<usize>,
    last_task_on: Vec<Option<TaskId>>,
    run_since_sched: Vec<u64>,

    /// Hardware queue carrying each flow (global queue index): the
    /// steering policy's placement — round-robin reduces to the identity
    /// map on the paper SUT, RSS hashing spreads flows like a real
    /// indirection table.
    flow_queue: Vec<usize>,
    /// Flows of each queue, ascending — bottom halves drain a queue's
    /// flows in this order.
    queue_flows: Vec<Vec<usize>>,
    /// NIC port owning each global queue.
    queue_nic: Vec<usize>,
    /// Queue index local to its NIC port.
    queue_local: Vec<usize>,

    // Per-flow state.
    flow_rx_pending: Vec<Vec<u32>>,
    flow_ack_pending: Vec<u32>,
    flow_ack_frames: Vec<u32>,
    flow_txdone_pending: Vec<u32>,
    /// Wire transmission cursor per flow (each flow models its own NIC
    /// queue's bandwidth share).
    wire_cursor: Vec<u64>,
    tx_wire_offset: Vec<u64>,
    peer_inflight: Vec<u32>,
    last_softirq_cpu: Vec<Option<CpuId>>,
    last_process_cpu: Vec<Option<CpuId>>,

    // Per-queue state.
    nic_activity: Vec<u64>,
    flush_armed: Vec<bool>,
    /// Cycles each CPU has spent in interrupt context (top halves,
    /// bottom halves, flush penalties) — drives the wake-affine gate.
    irq_cycles: Vec<u64>,

    // Measurement state.
    total_messages: u64,
    measured_messages: u64,
    bytes_moved: u64,
    measuring: bool,
    done: bool,
    measure_start: u64,
    last_message_time: u64,

    // Attribution fallbacks.
    wake_up_func: FuncId,
}

impl Machine {
    /// Builds the system under test from an experiment configuration.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if the stack config is invalid or
    /// an affinity mask cannot be applied.
    pub fn new(config: &ExperimentConfig) -> Result<Self> {
        let cpus = config.cpus;
        assert!(
            (1..=64).contains(&cpus),
            "machine supports 1..=64 CPUs (cpumask and ready-set words), got {cpus}"
        );
        let nics_n = config.nics;
        let flows = config.connections;
        assert!(flows > 0, "machine needs at least one connection");
        let mut mem = MemorySystem::new(config.mem.clone());
        let mut rng = SimRng::new(config.seed);

        // Build the steering policy once; the run loop only ever sees
        // the trait object.
        let spec = config.steer_spec();
        let steering = spec.build();

        let queues_per_nic = config.nic.queues.max(1) as usize;
        let total_queues = nics_n * queues_per_nic;

        // Flow→queue steering per the policy's placement. Round-robin
        // reduces to the identity map on the paper SUT
        // (`connections == nics`, one queue per port), keeping those
        // runs bit-identical.
        let flow_queue: Vec<usize> = (0..flows)
            .map(|f| steering.place_flow(f, total_queues))
            .collect();
        let mut queue_flows = vec![Vec::new(); total_queues];
        for (f, &q) in flow_queue.iter().enumerate() {
            queue_flows[q].push(f);
        }
        let queue_nic: Vec<usize> = (0..total_queues).map(|q| q / queues_per_nic).collect();
        let queue_local: Vec<usize> = (0..total_queues).map(|q| q % queues_per_nic).collect();

        let vectors: Vec<IrqVector> = (0..total_queues)
            .map(|i| {
                let base = PAPER_VECTORS[i % PAPER_VECTORS.len()];
                IrqVector::new(base + (i / PAPER_VECTORS.len()) as u32 * 0x10)
            })
            .collect();

        let nics: Vec<Nic> = (0..nics_n)
            .map(|i| {
                Nic::new(
                    DeviceId::new(i as u32),
                    &vectors[i * queues_per_nic..(i + 1) * queues_per_nic],
                    config.nic,
                    &mut mem,
                )
            })
            .collect();

        // Each flow DMAs through its queue's receive buffers.
        let dma_regions: Vec<_> = (0..flows)
            .map(|f| {
                let q = flow_queue[f];
                nics[queue_nic[q]].rx_buffers(queue_local[q])
            })
            .collect();
        let mut stack = TcpStack::new(
            config.stack.clone(),
            &mut mem,
            &dma_regions,
            &vectors,
            config.workload.message_bytes,
        )?;

        let mut apic = IoApic::new(cpus);
        let mut sched = Scheduler::new(SchedulerConfig::new(cpus));

        // Program the static vector layout the policy prescribes
        // (everything-on-CPU0 layouts write the routing default back,
        // which is a no-op for delivery).
        for (q, &v) in vectors.iter().enumerate() {
            let home = steering.vector_home(q, total_queues, cpus);
            apic.set_affinity(v, CpuMask::single(home))?;
        }
        let mut tasks = Vec::new();
        let mut task_of_conn = Vec::new();
        for (i, &q) in flow_queue.iter().enumerate() {
            // A pinned process lives on its queue's even-spread home CPU
            // (the paper's `sched_setaffinity` half — identical to the
            // old per-connection pin on the paper SUT, where flow i
            // rides queue i).
            let mask = if spec.pin_processes {
                CpuMask::single(even_home(q, total_queues, cpus))
            } else {
                CpuMask::all(cpus)
            };
            let task = sched.spawn(format!("ttcp{i}"), mask)?;
            task_of_conn.push(tasks.len());
            tasks.push(TaskRun {
                task,
                conn: i,
                remaining: config.workload.message_bytes,
                blocked: None,
            });
        }

        let peers = (0..flows)
            .map(|i| {
                Peer::new(
                    ConnectionId::new(i as u32),
                    PeerConfig {
                        ack_every: config.stack.ack_every,
                        mss: config.stack.mss,
                        jitter_cycles: config.tunables.arrival_jitter_cycles,
                    },
                    rng.fork(i as u64),
                )
            })
            .collect();

        let cores = (0..cpus)
            .map(|c| Core::new(CpuId::new(c as u32), config.cpu))
            .collect();

        let wake_up_func = stack
            .registry()
            .lookup("__wake_up")
            .expect("stack registers __wake_up");

        // Kernel bypass: queue ownership follows the same `vector_home`
        // the APIC was just programmed with, so poll and interrupt cells
        // of a sweep are geometry-for-geometry comparable.
        let poll = if config.dataplane.mode == DataplaneMode::Poll {
            let homes: Vec<usize> = (0..total_queues)
                .map(|q| steering.vector_home(q, total_queues, cpus).index())
                .collect();
            Some(PollPlane::new(
                cpus,
                &homes,
                &queue_flows,
                &config.dataplane,
                config.tunables.peer_window,
                config.tunables.send_buf_segments,
            ))
        } else {
            None
        };

        // Server workloads: the arena starts empty (every slot in the
        // free list), the stack listens with the workload's backlog, and
        // all lifecycle bookkeeping is per-slot.
        let server = config.server.map(|workload| {
            stack.listen(workload.backlog);
            Box::new(ServerState {
                workload,
                scheduled: 0,
                serial: 0,
                accepts: 0,
                completes: 0,
                backlog_drops: 0,
                window_accepts: 0,
                window_completes: 0,
                syn_pending: vec![false; flows],
                finack_pending: vec![false; flows],
                request_remaining: vec![0; flows],
                response_remaining: vec![0; flows],
                conn_bytes: vec![0; flows],
                started_at: vec![0; flows],
                fct: Vec::new(),
                queue_pending: vec![Vec::new(); total_queues],
                in_pending: vec![false; flows],
            })
        });

        Ok(Machine {
            mem,
            cores,
            clocks: vec![0; cpus],
            sched,
            apic,
            ipi: IpiFabric::new(cpus),
            peers,
            prof: Profiler::new(cpus),
            rng,
            // Steady state carries a few in-flight events per queue
            // (wire segments, ACKs, coalescing timers) plus one peer
            // window per *streaming* flow; pre-size so the heaps rarely
            // reallocate mid-run. The budget is split across lanes —
            // per-lane full capacity would multiply the reserve by the
            // lane count, gigabytes of dead heap at 1M flows.
            events: ShardedEventQueue::with_capacity(
                cpus + 1,
                (64 * total_queues
                    + config.tunables.peer_window as usize
                        * match config.workload.active_conns {
                            0 => flows,
                            n => n.min(flows),
                        })
                .div_ceil(cpus + 1),
            ),
            ready: ReadyCpus::new(),
            steering,
            steer_stats: SteerCounters::default(),
            poll,
            server,
            pin_processes: spec.pin_processes,
            tasks,
            task_of_conn,
            last_task_on: vec![None; cpus],
            run_since_sched: vec![0; cpus],
            flow_queue,
            queue_flows,
            queue_nic,
            queue_local,
            flow_rx_pending: vec![Vec::new(); flows],
            flow_ack_pending: vec![0; flows],
            flow_ack_frames: vec![0; flows],
            flow_txdone_pending: vec![0; flows],
            nic_activity: vec![0; total_queues],
            flush_armed: vec![false; total_queues],
            wire_cursor: vec![0; flows],
            tx_wire_offset: vec![0; flows],
            peer_inflight: vec![0; flows],
            last_softirq_cpu: vec![None; flows],
            last_process_cpu: vec![None; flows],
            irq_cycles: vec![0; cpus],
            total_messages: 0,
            measured_messages: 0,
            bytes_moved: 0,
            measuring: false,
            done: false,
            measure_start: 0,
            last_message_time: 0,
            wake_up_func,
            nics,
            stack,
            vectors,
            config: config.clone(),
        })
    }

    /// Schedules `event` at cycle `at`, clamped forward to the queue's
    /// causality watermark (see `sim_core::event`): CPU-local clocks can
    /// trail device time, so a wire/timer computation may produce a
    /// timestamp the queue has already passed. Every event the machine
    /// schedules goes through here, so the watermark panic in
    /// `EventQueue::push` is unreachable from the run loop.
    fn push_event(&mut self, at: u64, event: Event) {
        let at = at.max(self.events.now().cycles());
        let lane = self.event_lane(&event);
        self.events.push(lane, SimTime::from_cycles(at), event);
    }

    /// Storage lane for an event: flow and queue events live in the lane
    /// of the CPU their interrupt currently targets, machine-wide timers
    /// in the device lane. Pop order is lane-independent.
    fn event_lane(&self, event: &Event) -> usize {
        let queue = match *event {
            Event::FrameArrival { flow, .. }
            | Event::AckArrival { flow, .. }
            | Event::WireTx { flow, .. }
            | Event::RtoFire { flow, .. }
            | Event::FinAckArrival { flow } => self.flow_queue[flow],
            Event::CoalesceFlush { queue, .. } => queue,
            Event::ConnArrival | Event::IrqRotate | Event::LoadBalance => return self.config.cpus,
        };
        self.apic.route(self.vectors[queue]).index()
    }

    fn wire_time(&self, payload: u32) -> u64 {
        u64::from(payload + 66) * self.config.tunables.wire_cycles_per_byte
    }

    fn arm_flush(&mut self, queue: usize, at: u64) {
        if !self.flush_armed[queue] {
            self.flush_armed[queue] = true;
            // The queue's coalescer may carry its own moderation-timer
            // period (adaptive policies); fixed-count falls back to the
            // machine-level default.
            let timeout = self.nics[self.queue_nic[queue]]
                .flush_timeout(self.queue_local[queue])
                .unwrap_or(self.config.tunables.coalesce_flush_cycles);
            self.push_event(
                at + timeout,
                Event::CoalesceFlush {
                    queue,
                    armed_at: at,
                },
            );
        }
    }

    /// Runs the workload to completion and returns the measured metrics.
    ///
    /// # Panics
    ///
    /// Panics on an internal deadlock (no runnable work and no pending
    /// events before the measurement target is reached) — that would be a
    /// bug in the machine model.
    pub fn run(&mut self) -> RunMetrics {
        if self.poll.is_some() {
            return self.run_poll();
        }
        if self.server.is_some() {
            self.seed_server_work();
        } else {
            self.seed_initial_work();
        }
        let mut guard: u64 = 0;
        let guard_limit = self.guard_limit();
        // Probing the environment takes a lock and scans `environ`; do it
        // once, not once per event.
        let trace = std::env::var_os("AFFSIM_TRACE").is_some();
        while !self.done {
            guard += 1;
            assert!(
                guard < guard_limit,
                "run loop exceeded {guard_limit} iterations — machine wedged?"
            );
            if trace && should_trace(guard) {
                eprintln!(
                    "iter={guard} msgs={}/{} measuring={} clocks={:?} events={} loads={:?}",
                    self.total_messages,
                    self.measured_messages,
                    self.measuring,
                    self.clocks,
                    self.events.len(),
                    (0..self.config.cpus)
                        .map(|c| self.sched.load(CpuId::new(c as u32)))
                        .collect::<Vec<_>>(),
                );
            }
            // Runnability only moves when the scheduler mutates; reuse
            // the cached ready mask until its generation slips. The pick
            // reproduces the old `filter(cpu_has_work).min_by_key
            // (|c| (clock, cpu))` scan bit-for-bit (see `ready.rs`).
            let generation = self.sched.generation();
            if self.ready.stale(generation) {
                let mut mask = 0u64;
                for c in 0..self.config.cpus {
                    if self.cpu_has_work(c) {
                        mask |= 1 << c;
                    }
                }
                self.ready.set(generation, mask);
            }
            let ready = self.ready.pick(&self.clocks);
            match (ready, self.events.peek_time()) {
                (Some(c), Some(t)) => {
                    if self.clocks[c] <= t.cycles() {
                        self.step_cpu(c);
                    } else {
                        self.process_event();
                    }
                }
                (Some(c), None) => self.step_cpu(c),
                (None, Some(_)) => self.process_event(),
                (None, None) => panic!(
                    "machine deadlocked: no runnable tasks and no events \
                     ({}/{} messages measured)",
                    self.measured_messages,
                    self.measure_target()
                ),
            }
        }
        self.collect_metrics()
    }

    fn guard_limit(&self) -> u64 {
        if let Some(srv) = &self.server {
            // Each connection is bounded by a few dozen loop iterations
            // (SYN, accept, request frames, response segments, ACKs,
            // FIN, drop retries); 50k per connection is wedge detection.
            return 50_000 * srv.workload.total_conns() + 1_000_000;
        }
        // Generous: every message costs well under 10k loop iterations.
        let msgs = u64::from(self.config.workload.warmup_messages)
            + u64::from(self.config.workload.measure_messages);
        10_000 * msgs * self.message_target_scale() + 1_000_000
    }

    /// What one unit of `warmup_messages`/`measure_messages` means:
    /// `connections` messages per unit historically, one message per
    /// unit when the workload asks for aggregate targets (the
    /// million-flow cells, where per-flow depth is the wrong knob).
    /// The RX working set: how many connections the peers stream on.
    /// Everything above this index holds provisioned state (arena slot,
    /// page region, scheduler task) but never sources a frame.
    fn streaming_conns(&self) -> usize {
        match self.config.workload.active_conns {
            0 => self.config.connections,
            n => n.min(self.config.connections),
        }
    }

    fn message_target_scale(&self) -> u64 {
        if self.config.workload.aggregate_targets {
            1
        } else {
            self.config.connections as u64
        }
    }

    fn warmup_target(&self) -> u64 {
        u64::from(self.config.workload.warmup_messages) * self.message_target_scale()
    }

    fn measure_target(&self) -> u64 {
        u64::from(self.config.workload.measure_messages) * self.message_target_scale()
    }

    /// The kernel-bypass run loop: no scheduler, no interrupts, no IPIs.
    /// Each CPU is a PMD core spinning on its queues' SPSC rings; the
    /// loop interleaves device events (which push descriptors) with PMD
    /// steps (which drain them and run protocol + app to completion) in
    /// deterministic global time order. Idle gaps are charged as spin —
    /// a poll core is 100% busy by construction — and at the end every
    /// core is spun forward to the last message time so burned cores are
    /// priced over the whole measurement window.
    fn run_poll(&mut self) -> RunMetrics {
        if self.server.is_some() {
            self.seed_server_work();
        } else if self.config.workload.direction == Direction::Rx {
            for ti in 0..self.tasks.len() {
                self.tasks[ti].blocked = Some(BlockReason::RxData);
            }
            for f in 0..self.streaming_conns() {
                self.refill_peer_window(f, 0);
            }
        }
        let mut guard: u64 = 0;
        let guard_limit = self.guard_limit();
        let trace = std::env::var_os("AFFSIM_TRACE").is_some();
        while !self.done {
            guard += 1;
            assert!(
                guard < guard_limit,
                "poll run loop exceeded {guard_limit} iterations — machine wedged?"
            );
            if trace && should_trace(guard) {
                eprintln!(
                    "poll iter={guard} msgs={}/{} measuring={} clocks={:?} events={}",
                    self.total_messages,
                    self.measured_messages,
                    self.measuring,
                    self.clocks,
                    self.events.len(),
                );
            }
            match (self.poll_next_work(), self.events.peek_time()) {
                (Some((wt, c)), Some(et)) => {
                    if et.cycles() <= wt {
                        self.process_poll_event();
                    } else {
                        self.step_pmd(c, wt);
                    }
                }
                (Some((wt, c)), None) => self.step_pmd(c, wt),
                (None, Some(_)) => self.process_poll_event(),
                (None, None) => panic!(
                    "poll dataplane deadlocked: no ring work and no events \
                     ({}/{} messages measured)",
                    self.measured_messages,
                    self.measure_target()
                ),
            }
        }
        self.finish_poll_spin();
        self.collect_metrics()
    }

    /// The earliest `(time, cpu)` at which any PMD core can do useful
    /// work: drain a descriptor its device has enqueued, or (TX) push
    /// more segments for a flow with send-window room. Ties break to the
    /// lower CPU; events at the same time are processed first by the
    /// caller (they only ever add work at that instant).
    fn poll_next_work(&self) -> Option<(u64, usize)> {
        let plane = self.poll.as_ref().expect("poll mode");
        let mut best: Option<(u64, usize)> = None;
        for c in 0..self.config.cpus {
            let mut at = plane.next_rx_at(c);
            // Server-mode sends happen inline with batch processing, so
            // rings are the only work source there — skip the TX scan.
            if self.server.is_none()
                && self.config.workload.direction == Direction::Tx
                && plane.cores[c]
                    .queues()
                    .iter()
                    .flat_map(|&q| self.queue_flows[q].iter())
                    .any(|&f| self.poll_can_send(f))
            {
                at = Some(at.map_or(self.clocks[c], |t| t.min(self.clocks[c])));
            }
            if let Some(t) = at {
                let ready = t.max(self.clocks[c]);
                if best.is_none_or(|(bt, _)| ready < bt) {
                    best = Some((ready, c));
                }
            }
        }
        best
    }

    /// The `step_tx` send gate, core-local: enough combined send-buffer
    /// and congestion-window room to be worth a `sendmsg`.
    fn poll_can_send(&self, flow: usize) -> bool {
        let conn_id = ConnectionId::new(flow as u32);
        let buf_free = self
            .config
            .tunables
            .send_buf_segments
            .saturating_sub(self.stack.tx_inflight(conn_id));
        let cwnd_free = self
            .stack
            .tx_window(conn_id)
            .saturating_sub(self.stack.tx_unacked(conn_id));
        let low_water = 8.min(self.stack.tx_window(conn_id) / 2).max(1);
        buf_free.min(cwnd_free) >= low_water
    }

    /// One poll iteration of core `c`, starting at `t0`: spin across the
    /// idle gap, probe the owned rings, drain up to one burst per queue,
    /// then run protocol and application work for each flow that had
    /// descriptors — all on this core, with `cross == false` everywhere
    /// (run-to-completion is the whole point).
    fn step_pmd(&mut self, c: usize, t0: u64) {
        if t0 > self.clocks[c] {
            // The core spun empty from its clock to t0. When the gap
            // straddles the measurement start (this core was idle when
            // another core's message completion reset the counters),
            // charge only the in-window part so busy never exceeds wall.
            let from = if self.measuring {
                self.clocks[c].max(self.measure_start).min(t0)
            } else {
                self.clocks[c]
            };
            let spin = t0 - from;
            if spin > 0 {
                let epc = self.poll.as_ref().expect("poll mode").pmd.empty_poll_cycles;
                self.cores[c].charge_spin_cycles(spin);
                let counters = &mut self.poll.as_mut().expect("poll mode").counters[c];
                counters.empty_polls += PmdCore::empty_polls_for_gap(spin, epc);
                counters.spin_cycles += spin;
            }
            self.clocks[c] = t0;
        }
        let (burst, epc, queues) = {
            let plane = self.poll.as_ref().expect("poll mode");
            (
                plane.pmd.burst as usize,
                plane.pmd.empty_poll_cycles,
                plane.cores[c].queues().to_vec(),
            )
        };
        // The iteration's ring probes cost one poll quantum whether or
        // not they find anything.
        self.cores[c].charge_plain_cycles(epc);
        self.clocks[c] += epc;
        let mut found_work = false;
        for &q in &queues {
            // Drain one rx burst. Everything enqueued is observable:
            // events at or before t0 have already been processed.
            let mut b = PollBurst::default();
            {
                let plane = self.poll.as_mut().expect("poll mode");
                for _ in 0..burst {
                    let Some(desc) = plane.rx[q].pop() else { break };
                    if desc.pins_buffer() {
                        plane.pool[q].free();
                    }
                    match desc {
                        RxDesc::TxDone { flow, .. } => {
                            match b.txdone.iter_mut().find(|e| e.0 == flow) {
                                Some(e) => e.1 += 1,
                                None => b.txdone.push((flow, 1)),
                            }
                        }
                        RxDesc::Ack { flow, acked, .. } => {
                            match b.acks.iter_mut().find(|e| e.0 == flow) {
                                Some(e) => e.1 += acked,
                                None => b.acks.push((flow, acked)),
                            }
                        }
                        RxDesc::Data { flow, bytes, .. } => {
                            match b.data.iter_mut().find(|e| e.0 == flow) {
                                Some(e) => e.1.push(bytes),
                                None => b.data.push((flow, vec![bytes])),
                            }
                        }
                        RxDesc::Syn { flow, .. } => b.syns.push(flow),
                        RxDesc::FinAck { flow, .. } => b.finacks.push(flow),
                    }
                }
            }
            if !b.is_empty() {
                found_work = true;
                self.poll_process_batch(c, q, &b);
                if self.done {
                    return;
                }
            }
        }
        // TX: after completions opened window room (or on the very first
        // iteration), push more segments for this core's flows. Server
        // responses are pushed inline by the batch processing instead.
        if self.server.is_none() && self.config.workload.direction == Direction::Tx {
            for &q in &queues {
                for i in 0..self.queue_flows[q].len() {
                    let flow = self.queue_flows[q][i];
                    if self.poll_can_send(flow) {
                        found_work = true;
                        self.poll_send(c, q, flow);
                        if self.done {
                            return;
                        }
                    }
                }
            }
        }
        let counters = &mut self.poll.as_mut().expect("poll mode").counters[c];
        if found_work {
            counters.polls += 1;
        } else {
            counters.empty_polls += 1;
            counters.spin_cycles += epc;
        }
    }

    /// Protocol + application processing for one queue's drained burst,
    /// in ascending-flow order like the NAPI bottom half — but with no
    /// IPI to a remote process CPU and no scheduler wakeup: the consumer
    /// runs inline, here.
    fn poll_process_batch(&mut self, c: usize, queue: usize, burst: &PollBurst) {
        let cpu = CpuId::new(c as u32);
        let nic = self.queue_nic[queue];
        let local = self.queue_local[queue];
        let mut flows: Vec<usize> = burst
            .txdone
            .iter()
            .map(|e| e.0)
            .chain(burst.acks.iter().map(|e| e.0))
            .chain(burst.data.iter().map(|e| e.0))
            .chain(burst.syns.iter().copied())
            .chain(burst.finacks.iter().copied())
            .collect();
        flows.sort_unstable();
        flows.dedup();
        for flow in flows {
            let conn_id = ConnectionId::new(flow as u32);
            let done = burst.txdone.iter().find(|e| e.0 == flow).map_or(0, |e| e.1);
            let acked = burst.acks.iter().find(|e| e.0 == flow).map_or(0, |e| e.1);
            let frames: &[u32] = burst
                .data
                .iter()
                .find(|e| e.0 == flow)
                .map_or(&[], |e| e.1.as_slice());
            let syn = burst.syns.contains(&flow);
            let finack = burst.finacks.contains(&flow);
            let before = self.cores[c].busy_cycles();
            let mut syn_queued = false;
            {
                let mut ctx = ExecCtx::new(
                    &mut self.cores[c],
                    &mut self.mem,
                    &mut self.prof,
                    &mut self.rng,
                );
                if done > 0 {
                    let tx_ring = self.nics[nic].tx_ring(local);
                    self.stack.tx_complete(&mut ctx, conn_id, tx_ring, done);
                }
                if acked > 0 {
                    self.stack.rx_ack(&mut ctx, conn_id, acked, false);
                }
                if syn {
                    syn_queued = self.stack.on_syn(&mut ctx, conn_id, false).queued;
                }
                if !frames.is_empty() {
                    let rx_ring = self.nics[nic].rx_ring(local);
                    self.stack
                        .rx_bottom_half(&mut ctx, conn_id, frames, rx_ring, false);
                }
                if finack {
                    self.stack.on_fin_ack(&mut ctx, conn_id, false);
                }
            }
            if !frames.is_empty() {
                self.peer_inflight[flow] =
                    self.peer_inflight[flow].saturating_sub(frames.len() as u32);
            }
            let delta = self.cores[c].busy_cycles() - before;
            self.clocks[c] += delta;
            let counters = &mut self.poll.as_mut().expect("poll mode").counters[c];
            counters.work_cycles += delta;
            counters.rx_frames += frames.len() as u64;
            self.last_softirq_cpu[flow] = Some(cpu);
            self.last_process_cpu[flow] = Some(cpu);
            if self.server.is_some() {
                // Run to completion, lifecycle included: accept, consume
                // the request, push response segments and the FIN, and
                // retire the connection — all inline on this core.
                if syn && !syn_queued {
                    let now = self.clocks[c];
                    self.server_syn_drop(flow, now);
                    continue;
                }
                self.server_flow_progress(c, queue, flow, syn && syn_queued, finack);
                if self.done {
                    return;
                }
                continue;
            }
            // Run to completion: the application consumes right here.
            if self.config.workload.direction == Direction::Rx && !frames.is_empty() {
                self.poll_consume_rx(c, flow);
                if self.done {
                    return;
                }
                let now = self.clocks[c];
                self.refill_peer_window(flow, now);
            }
        }
    }

    /// Inline `recvmsg` loop for a poll-mode flow: drain the socket on
    /// this core until it is empty (or the run completes), crediting
    /// message completions as they happen.
    fn poll_consume_rx(&mut self, c: usize, flow: usize) {
        let ti = self.task_of_conn[flow];
        let conn_id = ConnectionId::new(flow as u32);
        let msg = self.config.workload.message_bytes;
        loop {
            if self.stack.rx_available(conn_id) == 0 {
                return;
            }
            let want = self.tasks[ti].remaining;
            let before = self.cores[c].busy_cycles();
            let got = {
                let mut ctx = ExecCtx::new(
                    &mut self.cores[c],
                    &mut self.mem,
                    &mut self.prof,
                    &mut self.rng,
                );
                self.stack.recvmsg(&mut ctx, conn_id, want, false)
            };
            let delta = self.cores[c].busy_cycles() - before;
            self.clocks[c] += delta;
            self.poll.as_mut().expect("poll mode").counters[c].work_cycles += delta;
            if got == 0 {
                return;
            }
            let now = self.clocks[c];
            let mut got = got;
            while got >= self.tasks[ti].remaining {
                got -= self.tasks[ti].remaining;
                self.tasks[ti].remaining = msg;
                self.on_message_complete(now);
                if self.done {
                    return;
                }
            }
            self.tasks[ti].remaining -= got;
        }
    }

    /// Inline `sendmsg` for a poll-mode flow: one chunk per poll
    /// iteration (mirroring `step_tx` granularity), with segments handed
    /// to the queue's SPSC tx ring and the device draining that ring
    /// straight onto the serialized wire.
    fn poll_send(&mut self, c: usize, queue: usize, flow: usize) {
        let ti = self.task_of_conn[flow];
        let conn_id = ConnectionId::new(flow as u32);
        let mss = u64::from(self.config.stack.mss);
        let buf_free = self
            .config
            .tunables
            .send_buf_segments
            .saturating_sub(self.stack.tx_inflight(conn_id));
        let cwnd_free = self
            .stack
            .tx_window(conn_id)
            .saturating_sub(self.stack.tx_unacked(conn_id));
        let free_segs = buf_free.min(cwnd_free);
        let chunk_bytes = (u64::from(free_segs) * mss).min(self.tasks[ti].remaining);
        if chunk_bytes == 0 {
            return;
        }
        let before = self.cores[c].busy_cycles();
        let segs = {
            let mut ctx = ExecCtx::new(
                &mut self.cores[c],
                &mut self.mem,
                &mut self.prof,
                &mut self.rng,
            );
            let segs = self.stack.sendmsg(&mut ctx, conn_id, chunk_bytes, false);
            let tx_ring = self.nics[self.queue_nic[queue]].tx_ring(self.queue_local[queue]);
            for (i, &seg) in segs.iter().enumerate() {
                self.stack
                    .driver_tx(&mut ctx, conn_id, tx_ring, i as u64, seg);
            }
            segs
        };
        let delta = self.cores[c].busy_cycles() - before;
        self.clocks[c] += delta;
        {
            let counters = &mut self.poll.as_mut().expect("poll mode").counters[c];
            counters.work_cycles += delta;
            counters.tx_frames += segs.len() as u64;
        }
        self.last_process_cpu[flow] = Some(CpuId::new(c as u32));
        self.last_softirq_cpu[flow] = Some(CpuId::new(c as u32));

        // Segments go through the SPSC tx ring to the device, which
        // drains them immediately onto the wire, serialized per flow.
        let now = self.clocks[c];
        {
            let plane = self.poll.as_mut().expect("poll mode");
            for &seg in &segs {
                plane.tx[queue]
                    .push(TxDesc { flow, bytes: seg })
                    .unwrap_or_else(|_| {
                        panic!("poll tx ring overflow on queue {queue} — sizing invariant violated")
                    });
            }
        }
        let mut cursor = self.wire_cursor[flow].max(now);
        loop {
            let desc = {
                let plane = self.poll.as_mut().expect("poll mode");
                plane.tx[queue].pop()
            };
            let Some(TxDesc { flow, bytes }) = desc else {
                break;
            };
            cursor += self.wire_time(bytes);
            self.push_event(cursor, Event::WireTx { flow, bytes });
        }
        self.wire_cursor[flow] = cursor;

        self.tasks[ti].remaining -= chunk_bytes;
        if self.tasks[ti].remaining == 0 {
            self.tasks[ti].remaining = self.config.workload.message_bytes;
            self.on_message_complete(now);
        }
    }

    /// Device-side event processing under the poll dataplane: arrivals
    /// and completions DMA exactly like the interrupt path but push
    /// descriptors onto SPSC rings instead of entering the coalescer —
    /// no interrupt is ever asserted.
    fn process_poll_event(&mut self) {
        let Some((time, event)) = self.events.pop() else {
            return;
        };
        let t = time.cycles();
        match event {
            Event::FrameArrival { flow, bytes } => {
                let queue = self.flow_queue[flow];
                self.nics[self.queue_nic[queue]].dma_rx_frame_polled(
                    self.queue_local[queue],
                    &mut self.mem,
                    bytes,
                );
                let plane = self.poll.as_mut().expect("poll mode");
                assert!(
                    plane.pool[queue].try_alloc(),
                    "poll mempool exhausted on queue {queue} — sizing invariant violated"
                );
                plane.rx[queue]
                    .push(RxDesc::Data { flow, bytes, at: t })
                    .unwrap_or_else(|_| {
                        panic!("poll rx ring overflow on queue {queue} — sizing invariant violated")
                    });
            }
            Event::AckArrival { flow, acked } => {
                let queue = self.flow_queue[flow];
                self.nics[self.queue_nic[queue]].dma_rx_frame_polled(
                    self.queue_local[queue],
                    &mut self.mem,
                    66,
                );
                let plane = self.poll.as_mut().expect("poll mode");
                assert!(
                    plane.pool[queue].try_alloc(),
                    "poll mempool exhausted on queue {queue} — sizing invariant violated"
                );
                plane.rx[queue]
                    .push(RxDesc::Ack { flow, acked, at: t })
                    .unwrap_or_else(|_| {
                        panic!("poll rx ring overflow on queue {queue} — sizing invariant violated")
                    });
            }
            Event::WireTx { flow, bytes } => {
                let queue = self.flow_queue[flow];
                let conn_id = ConnectionId::new(flow as u32);
                let skb_data = self.stack.regions(conn_id).skb_data;
                let off = self.tx_wire_offset[flow];
                self.tx_wire_offset[flow] += u64::from(bytes);
                self.nics[self.queue_nic[queue]].dma_tx_frame_polled(
                    self.queue_local[queue],
                    &mut self.mem,
                    skb_data,
                    off,
                    bytes,
                );
                let plane = self.poll.as_mut().expect("poll mode");
                plane.rx[queue]
                    .push(RxDesc::TxDone { flow, at: t })
                    .unwrap_or_else(|_| {
                        panic!("poll rx ring overflow on queue {queue} — sizing invariant violated")
                    });
                if self.server.is_some() && bytes == 0 {
                    // The zero-byte segment is the FIN (server teardown):
                    // the client ACKs it one RTT out; no data-ACK logic.
                    let jitter = self
                        .rng
                        .exponential(self.config.tunables.rtt_cycles as f64 / 4.0)
                        as u64;
                    self.push_event(
                        t + self.config.tunables.rtt_cycles + jitter,
                        Event::FinAckArrival { flow },
                    );
                    return;
                }
                if bytes > 0 && self.rng.chance(self.config.tunables.loss_rate) {
                    self.push_event(
                        t + self.config.tunables.rto_cycles,
                        Event::RtoFire { flow, bytes },
                    );
                    return;
                }
                if self.peers[flow].on_data_segment().is_some() {
                    let jitter = self
                        .rng
                        .exponential(self.config.tunables.rtt_cycles as f64 / 4.0)
                        as u64;
                    self.push_event(
                        t + self.config.tunables.rtt_cycles + jitter,
                        Event::AckArrival {
                            flow,
                            acked: self.config.stack.ack_every,
                        },
                    );
                }
            }
            Event::RtoFire { flow, bytes } => {
                // Retransmission runs on the flow's owning PMD core —
                // run to completion, no timer softirq.
                let queue = self.flow_queue[flow];
                let c = self.poll.as_ref().expect("poll mode").cpu_of_queue[queue];
                self.clocks[c] = self.clocks[c].max(t);
                let conn_id = ConnectionId::new(flow as u32);
                let before = self.cores[c].busy_cycles();
                {
                    let mut ctx = ExecCtx::new(
                        &mut self.cores[c],
                        &mut self.mem,
                        &mut self.prof,
                        &mut self.rng,
                    );
                    self.stack
                        .retransmit_timeout(&mut ctx, conn_id, bytes, false);
                }
                let delta = self.cores[c].busy_cycles() - before;
                self.clocks[c] += delta;
                self.poll.as_mut().expect("poll mode").counters[c].work_cycles += delta;
                let at = self.wire_cursor[flow].max(self.clocks[c]) + self.wire_time(bytes);
                self.wire_cursor[flow] = at;
                self.push_event(at, Event::WireTx { flow, bytes });
            }
            Event::ConnArrival => {
                let Some(flow) = self.server_admit(t) else {
                    return;
                };
                let queue = self.flow_queue[flow];
                self.nics[self.queue_nic[queue]].dma_rx_frame_polled(
                    self.queue_local[queue],
                    &mut self.mem,
                    66,
                );
                let plane = self.poll.as_mut().expect("poll mode");
                assert!(
                    plane.pool[queue].try_alloc(),
                    "poll mempool exhausted on queue {queue} — sizing invariant violated"
                );
                plane.rx[queue]
                    .push(RxDesc::Syn { flow, at: t })
                    .unwrap_or_else(|_| {
                        panic!("poll rx ring overflow on queue {queue} — sizing invariant violated")
                    });
            }
            Event::FinAckArrival { flow } => {
                let queue = self.flow_queue[flow];
                self.nics[self.queue_nic[queue]].dma_rx_frame_polled(
                    self.queue_local[queue],
                    &mut self.mem,
                    66,
                );
                let plane = self.poll.as_mut().expect("poll mode");
                assert!(
                    plane.pool[queue].try_alloc(),
                    "poll mempool exhausted on queue {queue} — sizing invariant violated"
                );
                plane.rx[queue]
                    .push(RxDesc::FinAck { flow, at: t })
                    .unwrap_or_else(|_| {
                        panic!("poll rx ring overflow on queue {queue} — sizing invariant violated")
                    });
            }
            Event::CoalesceFlush { .. } | Event::IrqRotate | Event::LoadBalance => {
                unreachable!("interrupt-plane event {event:?} scheduled under the poll dataplane")
            }
        }
    }

    /// After the run completes, spin every PMD core forward to the last
    /// message time: a poll core is busy for the *entire* measurement
    /// window whether or not traffic reached it, and the GHz/Gbps cost
    /// metric must see that burn.
    fn finish_poll_spin(&mut self) {
        let end = self.last_message_time;
        let epc = self.poll.as_ref().expect("poll mode").pmd.empty_poll_cycles;
        for c in 0..self.config.cpus {
            let from = self.clocks[c].max(self.measure_start);
            if end > from {
                let gap = end - from;
                self.cores[c].charge_spin_cycles(gap);
                let counters = &mut self.poll.as_mut().expect("poll mode").counters[c];
                counters.empty_polls += PmdCore::empty_polls_for_gap(gap, epc);
                counters.spin_cycles += gap;
            }
            self.clocks[c] = self.clocks[c].max(end);
        }
    }

    fn seed_initial_work(&mut self) {
        // Recurring load balancing — only if enabled. Linux 2.4 itself
        // had no periodic balancer (idle stealing and wake placement did
        // all the work); the event exists for the ablation benches.
        if self.config.tunables.balance_interval_cycles > 0 {
            self.push_event(
                self.config.tunables.balance_interval_cycles,
                Event::LoadBalance,
            );
        }
        if self.config.tunables.irq_rotation_cycles > 0 {
            self.push_event(self.config.tunables.irq_rotation_cycles, Event::IrqRotate);
        }
        match self.config.workload.direction {
            Direction::Tx => {
                // Wake every sender; placement spreads per policy.
                for i in 0..self.tasks.len() {
                    let task = self.tasks[i].task;
                    let from = self
                        .sched
                        .task(task)
                        .expect("spawned")
                        .affinity
                        .first()
                        .expect("non-empty mask");
                    let placement = self.sched.wake(task, from, false).expect("task exists");
                    let _ = placement;
                }
            }
            Direction::Rx => {
                // Receivers start blocked on data; the peers start
                // streaming into every NIC (the active working set only —
                // provisioned-but-quiet flows never source a frame).
                for i in 0..self.tasks.len() {
                    self.tasks[i].blocked = Some(BlockReason::RxData);
                }
                for f in 0..self.streaming_conns() {
                    self.refill_peer_window(f, 0);
                }
            }
        }
    }

    /// Seeds a server-workload run: periodic timers (interrupt plane
    /// only), every scheduler task parked forever — server process
    /// context is charged directly on the connection's home CPU — and an
    /// open-loop wave of connection arrivals with exponential gaps.
    fn seed_server_work(&mut self) {
        if self.poll.is_none() {
            if self.config.tunables.balance_interval_cycles > 0 {
                self.push_event(
                    self.config.tunables.balance_interval_cycles,
                    Event::LoadBalance,
                );
            }
            if self.config.tunables.irq_rotation_cycles > 0 {
                self.push_event(self.config.tunables.irq_rotation_cycles, Event::IrqRotate);
            }
        }
        for ti in 0..self.tasks.len() {
            self.tasks[ti].blocked = Some(BlockReason::RxData);
        }
        let (total, gap) = {
            let srv = self.server.as_ref().expect("server mode");
            (srv.workload.total_conns(), srv.workload.arrival_gap_cycles)
        };
        let slots = self.config.connections as u64;
        // Overbook the initial wave by an eighth so the SYN-drop/retry
        // path is exercised deterministically: the first `slots`
        // arrivals fill the arena, the excess retry after the client's
        // RTO. Later arrivals are closed-loop replacements (one per
        // completion), which cannot contend for slots on their own.
        let initial = total.min(slots + (slots / 8).max(1));
        let mut at = 0u64;
        for _ in 0..initial {
            at += self.rng.exponential(gap as f64) as u64;
            self.push_event(at, Event::ConnArrival);
        }
        self.server.as_mut().expect("server mode").scheduled = initial;
    }

    /// Admits one arriving connection: allocates an arena slot, stamps
    /// the incarnation's serial and request/response sizes, and returns
    /// the slot — or counts a drop and schedules the client's SYN
    /// retransmission.
    fn server_admit(&mut self, t: u64) -> Option<usize> {
        let Some(conn) = self.stack.flow_alloc() else {
            let srv = self.server.as_mut().expect("server mode");
            srv.backlog_drops += 1;
            self.push_event(t + self.config.tunables.rto_cycles, Event::ConnArrival);
            return None;
        };
        let flow = conn.index();
        let srv = self.server.as_mut().expect("server mode");
        let serial = srv.serial;
        srv.serial += 1;
        srv.request_remaining[flow] = srv.workload.request_bytes;
        srv.response_remaining[flow] = srv.workload.response_for(serial);
        srv.conn_bytes[flow] = srv.request_remaining[flow] + srv.response_remaining[flow];
        srv.started_at[flow] = t;
        srv.syn_pending[flow] = false;
        srv.finack_pending[flow] = false;
        Some(flow)
    }

    /// Stages `flow` for its queue's next bottom half (server mode): the
    /// pending list replaces the legacy every-flow-of-the-queue scan,
    /// which is quadratic at 100k concurrent connections.
    fn server_mark_pending(&mut self, flow: usize) {
        let queue = self.flow_queue[flow];
        let srv = self.server.as_mut().expect("server mode");
        if !srv.in_pending[flow] {
            srv.in_pending[flow] = true;
            srv.queue_pending[queue].push(flow);
        }
    }

    fn refill_peer_window(&mut self, flow: usize, now: u64) {
        if self.done {
            return;
        }
        let window = self.config.tunables.peer_window;
        let mss = u64::from(self.config.stack.mss);
        while self.peer_inflight[flow] < window {
            // TCP receive-window flow control: don't exceed the
            // advertised socket buffer with unread + in-flight data.
            let committed = self.stack.rx_available(ConnectionId::new(flow as u32))
                + u64::from(self.peer_inflight[flow]) * mss;
            if committed + mss > self.config.tunables.rcv_buf_bytes {
                break;
            }
            let (seg, gap) = self.peers[flow].source_frame();
            let at = self.wire_cursor[flow].max(now) + self.wire_time(seg.payload) + gap;
            self.wire_cursor[flow] = at;
            self.peer_inflight[flow] += 1;
            self.push_event(
                at,
                Event::FrameArrival {
                    flow,
                    bytes: seg.payload,
                },
            );
        }
    }

    fn cpu_has_work(&self, c: usize) -> bool {
        let cpu = CpuId::new(c as u32);
        self.sched.current(cpu).is_some() || self.sched.load(cpu) > 0 || self.can_steal(cpu)
    }

    fn can_steal(&self, cpu: CpuId) -> bool {
        self.sched.current(cpu).is_none() && self.sched.can_steal_into(cpu)
    }

    fn step_cpu(&mut self, c: usize) {
        let cpu = CpuId::new(c as u32);
        if self.sched.current(cpu).is_none() {
            if self.sched.pick_next(cpu).is_none() {
                if self.sched.steal_into(cpu).is_some() {
                    self.sched.pick_next(cpu);
                } else {
                    return;
                }
            }
            let current = self.sched.current(cpu).expect("picked");
            if self.last_task_on[c] != Some(current) {
                // Address-space switch: TLBs flush, fixed switch cost.
                self.mem.flush_tlbs(cpu);
                self.cores[c].charge_plain_cycles(self.config.tunables.context_switch_cycles);
                self.clocks[c] += self.config.tunables.context_switch_cycles;
                self.last_task_on[c] = Some(current);
            }
            self.run_since_sched[c] = 0;
        }
        let task = self.sched.current(cpu).expect("running task");
        let ti = task.index();
        match self.config.workload.direction {
            Direction::Tx => self.step_tx(c, ti),
            Direction::Rx => self.step_rx(c, ti),
        }
        // Timeslice expiry: 2.4-style global requeue (the expired task
        // resumes wherever capacity is — migration under asymmetric
        // interrupt load).
        if self.sched.current(cpu).is_some()
            && self.run_since_sched[c] >= self.config.tunables.timeslice_cycles
        {
            self.sched.yield_current_global(cpu);
        }
    }

    fn step_tx(&mut self, c: usize, ti: usize) {
        let cpu = CpuId::new(c as u32);
        let conn = self.tasks[ti].conn;
        let msg = self.config.workload.message_bytes;
        let conn_id = ConnectionId::new(conn as u32);
        let mss = u64::from(self.config.stack.mss);

        // `write()` fills the send buffer until it is full, then blocks —
        // the real ttcp dynamic that lets completions (and therefore
        // interrupt affinity) steer where the process wakes up.
        let inflight = self.stack.tx_inflight(conn_id);
        let buf_free = self
            .config
            .tunables
            .send_buf_segments
            .saturating_sub(inflight);
        // The effective window is the smaller of free send-buffer space
        // and what Reno's congestion window still allows (cwnd binds on
        // unACKed segments, not on device completions).
        let cwnd_free = self
            .stack
            .tx_window(conn_id)
            .saturating_sub(self.stack.tx_unacked(conn_id));
        let free_segs = buf_free.min(cwnd_free);
        // Low-watermark blocking (like sock_wait_for_wmem): don't
        // dribble one-segment writes when the buffer is nearly full.
        // A ramping congestion window may legitimately be tiny, though.
        let low_water = 8.min(self.stack.tx_window(conn_id) / 2).max(1);
        if free_segs < low_water {
            self.tasks[ti].blocked = Some(BlockReason::TxSpace);
            self.sched.block_current(cpu);
            return;
        }
        let remaining = self.tasks[ti].remaining;
        let chunk_bytes = (u64::from(free_segs) * mss).min(remaining);

        let cross = self.last_softirq_cpu[conn].is_some_and(|s| s != cpu);
        let before = self.cores[c].busy_cycles();
        let segs = {
            let mut ctx = ExecCtx::new(
                &mut self.cores[c],
                &mut self.mem,
                &mut self.prof,
                &mut self.rng,
            );
            let segs = self.stack.sendmsg(&mut ctx, conn_id, chunk_bytes, cross);
            let queue = self.flow_queue[conn];
            let tx_ring = self.nics[self.queue_nic[queue]].tx_ring(self.queue_local[queue]);
            for (i, &seg) in segs.iter().enumerate() {
                self.stack
                    .driver_tx(&mut ctx, conn_id, tx_ring, i as u64, seg);
            }
            segs
        };
        let delta = self.cores[c].busy_cycles() - before;
        self.clocks[c] += delta;
        self.sched.charge_current(cpu, delta);
        self.run_since_sched[c] += delta;
        self.last_process_cpu[conn] = Some(cpu);
        self.steering.consumer_ran(conn, cpu, &mut self.steer_stats);

        // Frames leave on the wire, serialized per NIC.
        let now = self.clocks[c];
        let mut cursor = self.wire_cursor[conn].max(now);
        for &seg in &segs {
            cursor += self.wire_time(seg);
            self.push_event(
                cursor,
                Event::WireTx {
                    flow: conn,
                    bytes: seg,
                },
            );
        }
        self.wire_cursor[conn] = cursor;

        self.tasks[ti].remaining -= chunk_bytes;
        if self.tasks[ti].remaining == 0 {
            self.tasks[ti].remaining = msg;
            self.on_message_complete(now);
        }
    }

    fn step_rx(&mut self, c: usize, ti: usize) {
        let cpu = CpuId::new(c as u32);
        let conn = self.tasks[ti].conn;
        let conn_id = ConnectionId::new(conn as u32);
        if self.stack.rx_available(conn_id) == 0 {
            self.tasks[ti].blocked = Some(BlockReason::RxData);
            self.sched.block_current(cpu);
            return;
        }
        let cross = self.last_softirq_cpu[conn].is_some_and(|s| s != cpu);
        let before = self.cores[c].busy_cycles();
        let want = self.tasks[ti].remaining;
        let got = {
            let mut ctx = ExecCtx::new(
                &mut self.cores[c],
                &mut self.mem,
                &mut self.prof,
                &mut self.rng,
            );
            self.stack.recvmsg(&mut ctx, conn_id, want, cross)
        };
        let delta = self.cores[c].busy_cycles() - before;
        self.clocks[c] += delta;
        self.sched.charge_current(cpu, delta);
        self.run_since_sched[c] += delta;
        self.last_process_cpu[conn] = Some(cpu);
        self.steering.consumer_ran(conn, cpu, &mut self.steer_stats);

        let now = self.clocks[c];
        // Reading freed socket-buffer space: the advertised window opens.
        self.refill_peer_window(conn, now);
        let msg = self.config.workload.message_bytes;
        let mut got = got;
        while got >= self.tasks[ti].remaining {
            got -= self.tasks[ti].remaining;
            self.tasks[ti].remaining = msg;
            self.on_message_complete(now);
            if self.done {
                return;
            }
        }
        self.tasks[ti].remaining -= got;
    }

    fn process_event(&mut self) {
        let Some((time, event)) = self.events.pop() else {
            return;
        };
        let t = time.cycles();
        match event {
            Event::FrameArrival { flow, bytes } => {
                let queue = self.flow_queue[flow];
                let raise = self.nics[self.queue_nic[queue]].dma_rx_frame(
                    self.queue_local[queue],
                    &mut self.mem,
                    bytes,
                    t,
                );
                self.flow_rx_pending[flow].push(bytes);
                if self.server.is_some() {
                    self.server_mark_pending(flow);
                }
                self.nic_activity[queue] = t;
                if raise {
                    self.deliver_interrupt(queue, t + self.config.tunables.irq_latency_cycles);
                } else {
                    self.arm_flush(queue, t);
                }
            }
            Event::AckArrival { flow, acked } => {
                let queue = self.flow_queue[flow];
                let raise = self.nics[self.queue_nic[queue]].dma_rx_frame(
                    self.queue_local[queue],
                    &mut self.mem,
                    66,
                    t,
                );
                self.flow_ack_pending[flow] += acked;
                self.flow_ack_frames[flow] += 1;
                if self.server.is_some() {
                    self.server_mark_pending(flow);
                }
                self.nic_activity[queue] = t;
                if raise {
                    self.deliver_interrupt(queue, t + self.config.tunables.irq_latency_cycles);
                } else {
                    self.arm_flush(queue, t);
                }
            }
            Event::WireTx { flow, bytes } => {
                let queue = self.flow_queue[flow];
                let conn_id = ConnectionId::new(flow as u32);
                let skb_data = self.stack.regions(conn_id).skb_data;
                let off = self.tx_wire_offset[flow];
                self.tx_wire_offset[flow] += u64::from(bytes);
                let raise = self.nics[self.queue_nic[queue]].dma_tx_frame(
                    self.queue_local[queue],
                    &mut self.mem,
                    skb_data,
                    off,
                    bytes,
                    t,
                );
                self.flow_txdone_pending[flow] += 1;
                if self.server.is_some() {
                    self.server_mark_pending(flow);
                }
                self.nic_activity[queue] = t;
                if raise {
                    self.deliver_interrupt(queue, t + self.config.tunables.irq_latency_cycles);
                } else {
                    self.arm_flush(queue, t);
                }
                if self.server.is_some() && bytes == 0 {
                    // The zero-byte segment is the FIN (server teardown):
                    // the client ACKs it one RTT out; no data-ACK logic.
                    let jitter = self
                        .rng
                        .exponential(self.config.tunables.rtt_cycles as f64 / 4.0)
                        as u64;
                    self.push_event(
                        t + self.config.tunables.rtt_cycles + jitter,
                        Event::FinAckArrival { flow },
                    );
                    return;
                }
                if bytes > 0 && self.rng.chance(self.config.tunables.loss_rate) {
                    // Lost on the wire: the peer never sees it; Reno's
                    // retransmission timer will fire.
                    self.push_event(
                        t + self.config.tunables.rto_cycles,
                        Event::RtoFire { flow, bytes },
                    );
                    return;
                }
                if self.peers[flow].on_data_segment().is_some() {
                    // Jittered RTT: client-side processing and switch
                    // queueing desynchronize the connections.
                    let jitter = self
                        .rng
                        .exponential(self.config.tunables.rtt_cycles as f64 / 4.0)
                        as u64;
                    self.push_event(
                        t + self.config.tunables.rtt_cycles + jitter,
                        Event::AckArrival {
                            flow,
                            acked: self.config.stack.ack_every,
                        },
                    );
                }
            }
            Event::CoalesceFlush { queue, armed_at } => {
                self.flush_armed[queue] = false;
                if self.nic_activity[queue] > armed_at {
                    self.arm_flush(queue, self.nic_activity[queue]);
                } else {
                    if self.nics[self.queue_nic[queue]].flush_coalescing(self.queue_local[queue]) {
                        self.deliver_interrupt(queue, t);
                    }
                    // Server flows ACK every segment (`ack_every == 1`),
                    // so no delayed-ACK state ever pends there — and the
                    // scan below is quadratic at 100k flows per machine.
                    if self.config.workload.direction == Direction::Tx && self.server.is_none() {
                        // Flush the delayed-ACK timers of every flow on
                        // this queue, ascending (one flow per queue on
                        // the paper SUT).
                        for i in 0..self.queue_flows[queue].len() {
                            let flow = self.queue_flows[queue][i];
                            if let Some(_ack) = self.peers[flow].flush_ack() {
                                self.push_event(
                                    t + self.config.tunables.rtt_cycles,
                                    Event::AckArrival { flow, acked: 1 },
                                );
                            }
                        }
                    }
                }
            }
            Event::RtoFire { flow, bytes } => {
                // Timer softirq runs on the vector's CPU: collapse the
                // window, rebuild the segment, requeue it on the wire.
                let vector = self.vectors[self.flow_queue[flow]];
                let target = self.apic.route(vector);
                let c = target.index();
                self.clocks[c] = self.clocks[c].max(t);
                let conn_id = ConnectionId::new(flow as u32);
                let cross = self.last_process_cpu[flow].is_some_and(|p| p != target);
                let before = self.cores[c].busy_cycles();
                {
                    let mut ctx = ExecCtx::new(
                        &mut self.cores[c],
                        &mut self.mem,
                        &mut self.prof,
                        &mut self.rng,
                    );
                    self.stack
                        .retransmit_timeout(&mut ctx, conn_id, bytes, cross);
                }
                let delta = self.cores[c].busy_cycles() - before;
                self.clocks[c] += delta;
                self.irq_cycles[c] += delta;
                let at = self.wire_cursor[flow].max(self.clocks[c]) + self.wire_time(bytes);
                self.wire_cursor[flow] = at;
                self.push_event(at, Event::WireTx { flow, bytes });
            }
            Event::LoadBalance => {
                self.sched.load_balance();
                if !self.done {
                    self.push_event(
                        t + self.config.tunables.balance_interval_cycles,
                        Event::LoadBalance,
                    );
                }
            }
            Event::IrqRotate => {
                // Rotate every vector's affinity to the next CPU (the
                // 2.6 scheme). The TPR update is an uncacheable write;
                // charge a small fixed cost to each CPU.
                let cpus = self.config.cpus as u32;
                for &v in &self.vectors.clone() {
                    let current = self.apic.route(v);
                    let next = CpuId::new((current.raw() + 1) % cpus);
                    self.apic
                        .set_affinity(v, sim_os::CpuMask::single(next))
                        .expect("rotation target exists");
                }
                for c in 0..self.config.cpus {
                    self.cores[c].charge_plain_cycles(600);
                    self.clocks[c] += 600;
                }
                if !self.done {
                    self.push_event(
                        t + self.config.tunables.irq_rotation_cycles,
                        Event::IrqRotate,
                    );
                }
            }
            Event::ConnArrival => {
                let Some(flow) = self.server_admit(t) else {
                    return;
                };
                let queue = self.flow_queue[flow];
                let raise = self.nics[self.queue_nic[queue]].dma_rx_frame(
                    self.queue_local[queue],
                    &mut self.mem,
                    66,
                    t,
                );
                self.server.as_mut().expect("server mode").syn_pending[flow] = true;
                self.server_mark_pending(flow);
                self.nic_activity[queue] = t;
                if raise {
                    self.deliver_interrupt(queue, t + self.config.tunables.irq_latency_cycles);
                } else {
                    self.arm_flush(queue, t);
                }
            }
            Event::FinAckArrival { flow } => {
                let queue = self.flow_queue[flow];
                let raise = self.nics[self.queue_nic[queue]].dma_rx_frame(
                    self.queue_local[queue],
                    &mut self.mem,
                    66,
                    t,
                );
                self.server.as_mut().expect("server mode").finack_pending[flow] = true;
                self.server_mark_pending(flow);
                self.nic_activity[queue] = t;
                if raise {
                    self.deliver_interrupt(queue, t + self.config.tunables.irq_latency_cycles);
                } else {
                    self.arm_flush(queue, t);
                }
            }
        }
    }

    fn deliver_interrupt(&mut self, queue: usize, t: u64) {
        let vector = self.vectors[queue];
        let mut target = self.apic.deliver(vector);
        let mut t = t;
        if self.steering.dynamic() {
            // Directed steering (Flow Director / aRFS): re-target the
            // queue's vector to wherever the consumer of the queue's
            // first pending flow last ran (the queue's only flow on the
            // paper SUT). Reprogramming is a real MSI rewrite: it costs
            // delivery latency and is visible in the APIC's route for
            // subsequent deliveries.
            let flow = if let Some(srv) = &self.server {
                // Server mode: the pending list already names exactly
                // the flows with staged work; take the lowest, matching
                // the legacy ascending scan, without walking the
                // queue's full (100k-scale) flow population.
                srv.queue_pending[queue].iter().copied().min()
            } else {
                self.queue_flows[queue]
                    .iter()
                    .copied()
                    .find(|&f| self.flow_has_pending(f))
                    .or_else(|| self.queue_flows[queue].first().copied())
            };
            if let Some(decision) = flow.and_then(|f| self.steering.steer(f, &mut self.steer_stats))
            {
                if decision.target != target {
                    self.apic
                        .retarget(vector, decision.target)
                        .expect("steer target is an online CPU");
                    self.steer_stats.resteers += 1;
                    t += decision.resteer_cycles;
                    target = decision.target;
                }
            }
        }
        let c = target.index();
        self.clocks[c] = self.clocks[c].max(t);
        let irq_start = self.cores[c].busy_cycles();

        // Pipeline flushes on the target: interrupt entry, EOI and iret
        // are all serializing on the P4's deep pipeline.
        let handler = self.stack.irq_func(vector);
        for _ in 0..self.config.tunables.clears_per_device_interrupt {
            self.deliver_clear(c, ClearReason::DeviceInterrupt, handler);
        }

        // Top half.
        {
            let mut ctx = ExecCtx::new(
                &mut self.cores[c],
                &mut self.mem,
                &mut self.prof,
                &mut self.rng,
            );
            self.stack.irq_top_half(&mut ctx, vector);
        }
        self.clocks[c] += self.cores[c].busy_cycles()
            - irq_start
            - self.config.tunables.clears_per_device_interrupt as u64
                * self.config.cpu.costs.machine_clear;

        // Bottom half runs right here, on the same CPU. Saturating: a
        // server-mode completion inside the bottom half can start the
        // measurement window, which resets the core's counters below
        // `irq_start`.
        self.run_bottom_half(c, queue);
        self.irq_cycles[c] += self.cores[c].busy_cycles().saturating_sub(irq_start);

        // Refresh the scheduler's view of interrupt pressure so wakeup
        // placement steers processes away from interrupt-saturated CPUs.
        for cpu in 0..self.config.cpus {
            let pressure = (self.irq_load(cpu) / 0.15) as usize;
            self.sched.set_pressure(CpuId::new(cpu as u32), pressure);
        }
    }

    fn deliver_clear(&mut self, c: usize, reason: ClearReason, handler: Option<FuncId>) {
        let penalty = self.cores[c].machine_clear(reason);
        self.clocks[c] += penalty;
        let to_handler = handler.is_some()
            && reason == ClearReason::DeviceInterrupt
            && self.rng.chance(self.config.tunables.skid_to_handler);
        let func = if to_handler {
            handler.expect("checked")
        } else {
            self.weighted_func_draw(c)
                .or(handler)
                .unwrap_or(self.wake_up_func)
        };
        let delta = PerfCounters {
            machine_clears: 1,
            cycles: penalty,
            ..PerfCounters::default()
        };
        self.prof.record(CpuId::new(c as u32), func, &delta);
    }

    /// Draws a function weighted by the cycles it has accumulated on
    /// `cpu` — the statistical shape of Oprofile's attribution skid: a
    /// flush lands in whatever code was in flight.
    fn weighted_func_draw(&mut self, c: usize) -> Option<FuncId> {
        let cpu = CpuId::new(c as u32);
        let total = self.prof.cpu_cycles(cpu);
        if total == 0 {
            return None;
        }
        let mut r = self.rng.next_below(total);
        for (f, counters) in self.prof.nonzero_on(cpu) {
            if r < counters.cycles {
                return Some(f);
            }
            r -= counters.cycles;
        }
        None
    }

    /// True when `flow` has anything staged for its next bottom half.
    fn flow_has_pending(&self, flow: usize) -> bool {
        self.flow_txdone_pending[flow] > 0
            || self.flow_ack_pending[flow] > 0
            || !self.flow_rx_pending[flow].is_empty()
    }

    /// The NAPI poll loop of one queue's softirq: drains every flow of
    /// the queue in ascending flow order (exactly the single-flow body
    /// on the paper SUT, where each queue carries one connection).
    fn run_bottom_half(&mut self, c: usize, queue: usize) {
        if self.server.is_some() {
            // Drain the queue's pending list instead of scanning every
            // flow — ascending, like the legacy loop.
            let mut pending = std::mem::take(
                &mut self.server.as_mut().expect("server mode").queue_pending[queue],
            );
            pending.sort_unstable();
            {
                let srv = self.server.as_mut().expect("server mode");
                for &flow in &pending {
                    srv.in_pending[flow] = false;
                }
            }
            for flow in pending {
                self.run_flow_bottom_half(c, queue, flow);
            }
            return;
        }
        // Only the streaming prefix can have staged work; the
        // provisioned-but-quiet tail past `active_conns` never sources
        // a frame, so scanning it would only burn host time (a quarter
        // million no-op polls per interrupt at 1M flows). `queue_flows`
        // is ascending, so the active flows are a strict prefix.
        let streaming = self.streaming_conns();
        for i in 0..self.queue_flows[queue].len() {
            let flow = self.queue_flows[queue][i];
            if flow >= streaming {
                break;
            }
            self.run_flow_bottom_half(c, queue, flow);
        }
    }

    fn run_flow_bottom_half(&mut self, c: usize, queue: usize, flow: usize) {
        let cpu = CpuId::new(c as u32);
        let nic = self.queue_nic[queue];
        let local = self.queue_local[queue];
        let conn_id = ConnectionId::new(flow as u32);
        let cross = self.last_process_cpu[flow].is_some_and(|p| p != cpu);
        let before = self.cores[c].busy_cycles();

        let txdone = std::mem::take(&mut self.flow_txdone_pending[flow]);
        let acked = std::mem::take(&mut self.flow_ack_pending[flow]);
        let ack_frames = std::mem::take(&mut self.flow_ack_frames[flow]);
        let frames = std::mem::take(&mut self.flow_rx_pending[flow]);
        let (syn, finack) = match self.server.as_mut() {
            Some(srv) => (
                std::mem::take(&mut srv.syn_pending[flow]),
                std::mem::take(&mut srv.finack_pending[flow]),
            ),
            None => (false, false),
        };

        let mut wake_consumer = false;
        let mut syn_queued = false;
        {
            let mut ctx = ExecCtx::new(
                &mut self.cores[c],
                &mut self.mem,
                &mut self.prof,
                &mut self.rng,
            );
            if txdone > 0 {
                let tx_ring = self.nics[nic].tx_ring(local);
                self.stack.tx_complete(&mut ctx, conn_id, tx_ring, txdone);
            }
            if acked > 0 {
                self.stack.rx_ack(&mut ctx, conn_id, acked, cross);
            }
            if syn {
                syn_queued = self.stack.on_syn(&mut ctx, conn_id, cross).queued;
            }
            if !frames.is_empty() {
                let rx_ring = self.nics[nic].rx_ring(local);
                let outcome = self
                    .stack
                    .rx_bottom_half(&mut ctx, conn_id, &frames, rx_ring, cross);
                wake_consumer = outcome.wake_consumer;
            }
            if finack {
                self.stack.on_fin_ack(&mut ctx, conn_id, cross);
            }
        }
        if ack_frames > 0 {
            self.nics[nic].reclaim_rx(local, ack_frames);
        }
        if syn || finack {
            // The SYN and FIN-ACK frames each consumed one rx buffer.
            self.nics[nic].reclaim_rx(local, u32::from(syn) + u32::from(finack));
        }
        if !frames.is_empty() {
            self.nics[nic].reclaim_rx(local, frames.len() as u32);
            self.peer_inflight[flow] = self.peer_inflight[flow].saturating_sub(frames.len() as u32);
        }
        let delta = self.cores[c].busy_cycles() - before;
        self.clocks[c] += delta;
        // Out-of-order-completion signature (Wu et al.): data frames of
        // this flow completing on a different CPU than the previous
        // batch means the in-window ordering the consumer observes can
        // interleave — the reordering pathology of directed steering
        // migrating a flow mid-window. Tracked for every policy so
        // sweeps can compare.
        if !frames.is_empty() {
            if let Some(prev) = self.last_softirq_cpu[flow] {
                if prev != cpu {
                    self.steer_stats.ooo_completions += frames.len() as u64;
                }
            }
        }
        self.last_softirq_cpu[flow] = Some(cpu);
        let now = self.clocks[c];

        // Completing execution of a split stack requires interrupting
        // the CPU that owns the process context (the paper's IPI story):
        // the bottom half ran here, the connection's process runs there.
        if let Some(proc_cpu) = self.last_process_cpu[flow] {
            if proc_cpu != cpu && (!frames.is_empty() || acked > 0) {
                self.deliver_ipi(cpu, proc_cpu, IpiKind::FunctionCall, now);
            }
        }

        if self.server.is_some() {
            // Server lifecycle: process context runs now, charged on the
            // connection's home CPU — no scheduler task to wake.
            let _ = wake_consumer;
            if syn && !syn_queued {
                self.server_syn_drop(flow, now);
                return;
            }
            self.server_flow_progress(c, queue, flow, syn && syn_queued, finack);
            return;
        }

        // Keep the peer's window full (RX workload).
        if self.config.workload.direction == Direction::Rx && !frames.is_empty() {
            self.refill_peer_window(flow, now);
        }

        // Wake whoever was blocked on this connection.
        let ti = self.task_of_conn[flow];
        let should_wake = match self.tasks[ti].blocked {
            Some(BlockReason::TxSpace) => {
                // High watermark: a third of the buffer free again, and
                // the congestion window has room.
                let inflight = self.stack.tx_inflight(conn_id);
                inflight + self.config.tunables.send_buf_segments / 3
                    <= self.config.tunables.send_buf_segments
                    && self.stack.tx_window(conn_id) > self.stack.tx_unacked(conn_id)
            }
            Some(BlockReason::RxData) => self.stack.rx_available(conn_id) > 0,
            None => false,
        };
        let _ = wake_consumer;
        if should_wake {
            self.wake_task(ti, c, now);
        }
    }

    /// The CPU that runs a server connection's process context. With
    /// pinned processes (`sched_setaffinity`) the worker owning a flow
    /// slot lives on `slot % cpus` — accept-distributed workers, the
    /// SO_REUSEPORT shape — which is deliberately *not* a function of
    /// the flow's hash-placed NIC queue: static RSS then pays a
    /// persistent vector-home-vs-worker mismatch that a dynamic
    /// steering policy can close by chasing the consumer. Unpinned,
    /// the worker runs wherever the softirq just ran. Poll mode always
    /// runs to completion on the owning PMD core.
    fn server_proc_cpu(&self, flow: usize, softirq_cpu: usize) -> usize {
        if self.poll.is_none() && self.pin_processes {
            flow % self.config.cpus
        } else {
            softirq_cpu
        }
    }

    /// Charges one process-context stack operation on CPU `pc`, pulling
    /// its clock forward to `from` first (the softirq that staged the
    /// work has already finished there).
    fn server_charge<R>(
        &mut self,
        pc: usize,
        from: u64,
        f: impl FnOnce(&mut TcpStack, &mut ExecCtx<'_>) -> R,
    ) -> R {
        self.clocks[pc] = self.clocks[pc].max(from);
        let before = self.cores[pc].busy_cycles();
        let r = {
            let mut ctx = ExecCtx::new(
                &mut self.cores[pc],
                &mut self.mem,
                &mut self.prof,
                &mut self.rng,
            );
            f(&mut self.stack, &mut ctx)
        };
        let delta = self.cores[pc].busy_cycles() - before;
        self.clocks[pc] += delta;
        if let Some(plane) = self.poll.as_mut() {
            plane.counters[pc].work_cycles += delta;
        }
        r
    }

    /// The stack refused a SYN (listen backlog full): free the slot the
    /// arrival held and schedule the client's retransmission.
    fn server_syn_drop(&mut self, flow: usize, now: u64) {
        self.stack.flow_free(ConnectionId::new(flow as u32));
        self.server.as_mut().expect("server mode").backlog_drops += 1;
        self.push_event(now + self.config.tunables.rto_cycles, Event::ConnArrival);
    }

    /// Everything a server connection does outside the softirq: accept,
    /// consume the request, push response segments and the FIN as
    /// windows allow, and retire the connection after its FIN is ACKed.
    fn server_flow_progress(
        &mut self,
        c: usize,
        queue: usize,
        flow: usize,
        accepted: bool,
        closed: bool,
    ) {
        if closed {
            let now = self.clocks[c];
            self.server_complete(flow, now);
            return;
        }
        if accepted {
            self.server_accept(c, flow);
        }
        if self.stack.conn_state(ConnectionId::new(flow as u32)) == ConnState::Established {
            self.server_consume_request(c, flow);
            self.server_pump_response(c, queue, flow);
        }
    }

    /// `accept()` on the connection's process CPU: transitions the
    /// connection to ESTABLISHED, installs its steering-table entry, and
    /// starts the client's request one RTT out.
    fn server_accept(&mut self, c: usize, flow: usize) {
        let conn_id = ConnectionId::new(flow as u32);
        let pc = self.server_proc_cpu(flow, c);
        let cpu = CpuId::new(pc as u32);
        let cross = pc != c;
        let now = self.clocks[c];
        self.server_charge(pc, now, |stack, ctx| {
            stack.accept(ctx, conn_id, cross);
        });
        self.last_process_cpu[flow] = Some(cpu);
        self.steering.flow_opened(flow, cpu, &mut self.steer_stats);
        let measuring = self.measuring;
        let srv = self.server.as_mut().expect("server mode");
        srv.accepts += 1;
        if measuring {
            srv.window_accepts += 1;
        }
        self.server_schedule_request(flow, now);
    }

    /// Schedules the client's request frames on the wire, one RTT (plus
    /// jitter) after the SYN-ACK.
    fn server_schedule_request(&mut self, flow: usize, now: u64) {
        let request = self
            .server
            .as_ref()
            .expect("server mode")
            .workload
            .request_bytes;
        let mss = u64::from(self.config.stack.mss);
        let rtt = self.config.tunables.rtt_cycles;
        let jitter = self.rng.exponential(rtt as f64 / 4.0) as u64;
        let mut at = self.wire_cursor[flow].max(now + rtt + jitter);
        let mut left = request;
        while left > 0 {
            let chunk = left.min(mss) as u32;
            left -= u64::from(chunk);
            at += self.wire_time(chunk);
            self.peer_inflight[flow] += 1;
            self.push_event(at, Event::FrameArrival { flow, bytes: chunk });
        }
        self.wire_cursor[flow] = at;
    }

    /// `recvmsg` loop on the process CPU, consuming whatever request
    /// bytes the softirq queued.
    fn server_consume_request(&mut self, c: usize, flow: usize) {
        let conn_id = ConnectionId::new(flow as u32);
        loop {
            let want = self.server.as_ref().expect("server mode").request_remaining[flow];
            if want == 0 || self.stack.rx_available(conn_id) == 0 {
                return;
            }
            let pc = self.server_proc_cpu(flow, c);
            let cpu = CpuId::new(pc as u32);
            let cross = self.last_softirq_cpu[flow].is_some_and(|s| s != cpu);
            let now = self.clocks[c];
            let got = self.server_charge(pc, now, |stack, ctx| {
                stack.recvmsg(ctx, conn_id, want, cross)
            });
            self.last_process_cpu[flow] = Some(cpu);
            self.steering.consumer_ran(flow, cpu, &mut self.steer_stats);
            if got == 0 {
                return;
            }
            let srv = self.server.as_mut().expect("server mode");
            srv.request_remaining[flow] = srv.request_remaining[flow].saturating_sub(got);
        }
    }

    /// Submits response segments as send-buffer and congestion-window
    /// room allows; once the response is fully submitted and every
    /// segment is ACKed, sends the FIN.
    fn server_pump_response(&mut self, c: usize, queue: usize, flow: usize) {
        let conn_id = ConnectionId::new(flow as u32);
        {
            let srv = self.server.as_ref().expect("server mode");
            if srv.request_remaining[flow] > 0 {
                return; // request still in flight from the client
            }
        }
        let remaining = self
            .server
            .as_ref()
            .expect("server mode")
            .response_remaining[flow];
        if remaining > 0 {
            let mss = u64::from(self.config.stack.mss);
            let buf_free = self
                .config
                .tunables
                .send_buf_segments
                .saturating_sub(self.stack.tx_inflight(conn_id));
            let cwnd_free = self
                .stack
                .tx_window(conn_id)
                .saturating_sub(self.stack.tx_unacked(conn_id));
            let chunk = (u64::from(buf_free.min(cwnd_free)) * mss).min(remaining);
            if chunk == 0 {
                return; // window closed; the next ACK/TxDone reopens it
            }
            let pc = self.server_proc_cpu(flow, c);
            let cpu = CpuId::new(pc as u32);
            let cross = self.last_softirq_cpu[flow].is_some_and(|s| s != cpu);
            let now = self.clocks[c];
            let nic = self.queue_nic[queue];
            let local = self.queue_local[queue];
            let tx_ring = self.nics[nic].tx_ring(local);
            let segs = self.server_charge(pc, now, |stack, ctx| {
                let segs = stack.sendmsg(ctx, conn_id, chunk, cross);
                for (i, &seg) in segs.iter().enumerate() {
                    stack.driver_tx(ctx, conn_id, tx_ring, i as u64, seg);
                }
                segs
            });
            self.last_process_cpu[flow] = Some(cpu);
            self.steering.consumer_ran(flow, cpu, &mut self.steer_stats);
            let sent_at = self.clocks[pc];
            let mut cursor = self.wire_cursor[flow].max(sent_at);
            for &seg in &segs {
                cursor += self.wire_time(seg);
                self.push_event(cursor, Event::WireTx { flow, bytes: seg });
            }
            self.wire_cursor[flow] = cursor;
            let srv = self.server.as_mut().expect("server mode");
            srv.response_remaining[flow] -= chunk;
            return;
        }
        // Response fully submitted: FIN once the retransmission queue
        // drains (no in-flight or unACKed segments left).
        if self.stack.conn_state(conn_id) == ConnState::Established
            && self.stack.tx_unacked(conn_id) == 0
            && self.stack.tx_inflight(conn_id) == 0
        {
            let pc = self.server_proc_cpu(flow, c);
            let cpu = CpuId::new(pc as u32);
            let cross = self.last_softirq_cpu[flow].is_some_and(|s| s != cpu);
            let now = self.clocks[c];
            self.server_charge(pc, now, |stack, ctx| {
                stack.send_fin(ctx, conn_id, cross);
            });
            self.last_process_cpu[flow] = Some(cpu);
            let at = self.wire_cursor[flow].max(self.clocks[pc]) + self.wire_time(0);
            self.wire_cursor[flow] = at;
            self.push_event(at, Event::WireTx { flow, bytes: 0 });
        }
    }

    /// The FIN-ACK arrived and the stack closed the connection: tear
    /// down steering state, free the slot, record the completion, and
    /// keep the open loop fed.
    fn server_complete(&mut self, flow: usize, now: u64) {
        let conn_id = ConnectionId::new(flow as u32);
        debug_assert_eq!(self.stack.conn_state(conn_id), ConnState::Closed);
        self.steering.flow_closed(flow, &mut self.steer_stats);
        self.stack.flow_free(conn_id);
        // Drop leftover client delayed-ACK state so the slot's next
        // incarnation starts clean.
        let _ = self.peers[flow].flush_ack();
        let measuring = self.measuring;
        let (completes, warmup, total, needs_replacement, bytes) = {
            let srv = self.server.as_mut().expect("server mode");
            srv.completes += 1;
            if measuring {
                srv.window_completes += 1;
                srv.fct.push(now.saturating_sub(srv.started_at[flow]));
            }
            (
                srv.completes,
                srv.workload.warmup_conns,
                srv.workload.total_conns(),
                srv.scheduled < srv.workload.total_conns(),
                srv.conn_bytes[flow],
            )
        };
        self.total_messages += 1;
        if measuring {
            self.measured_messages += 1;
            self.bytes_moved += bytes;
            self.last_message_time = now;
        }
        if !self.measuring && completes >= warmup {
            self.begin_measurement(now);
        }
        if completes >= total {
            self.done = true;
        }
        if needs_replacement && !self.done {
            let gap = self
                .server
                .as_ref()
                .expect("server mode")
                .workload
                .arrival_gap_cycles;
            let at = now + self.rng.exponential(gap as f64) as u64;
            self.server.as_mut().expect("server mode").scheduled += 1;
            self.push_event(at, Event::ConnArrival);
        }
    }

    /// Lifecycle counters of the finished run (all zero for the
    /// immortal-flow workloads): window accepts/completes, lifetime SYN
    /// drops, flow-completion-time percentiles, and the drain state —
    /// live slots and steering-table occupancy, both zero after a fully
    /// drained churn run.
    #[must_use]
    pub fn lifecycle_stats(&self) -> LifecycleCounters {
        let Some(srv) = self.server.as_ref() else {
            return LifecycleCounters::default();
        };
        let mut fct = srv.fct.clone();
        fct.sort_unstable();
        let pct = |p: u64| -> u64 {
            if fct.is_empty() {
                0
            } else {
                fct[((fct.len() as u64 - 1) * p / 100) as usize]
            }
        };
        LifecycleCounters {
            accepts: srv.window_accepts,
            completes: srv.window_completes,
            backlog_drops: srv.backlog_drops,
            fct_p50_cycles: pct(50),
            fct_p99_cycles: pct(99),
            final_live_flows: self.stack.live_flows() as u64,
            final_table_entries: self.steering.occupancy().map_or(0, |(occ, _)| occ as u64),
        }
    }

    /// Fraction of a CPU's time spent in interrupt context.
    fn irq_load(&self, c: usize) -> f64 {
        self.irq_cycles[c] as f64 / self.clocks[c].max(1) as f64
    }

    fn deliver_ipi(&mut self, from: CpuId, to: CpuId, kind: IpiKind, now: u64) {
        self.ipi.send(from, to, kind);
        let tc = to.index();
        self.clocks[tc] = self.clocks[tc].max(now);
        let start = self.cores[tc].busy_cycles();
        for _ in 0..self.config.tunables.clears_per_ipi {
            self.deliver_clear(tc, ClearReason::Ipi, None);
        }
        self.irq_cycles[tc] += self.cores[tc].busy_cycles() - start;
    }

    fn wake_task(&mut self, ti: usize, from_c: usize, now: u64) {
        let task = self.tasks[ti].task;
        let from = CpuId::new(from_c as u32);
        // The bottom half hands the consumer off to its own CPU only if
        // that CPU is not carrying disproportionately more interrupt
        // work than its peers — an interrupt-saturated default CPU0
        // repels processes instead of attracting them.
        let min_irq = (0..self.config.cpus)
            .map(|c| self.irq_load(c))
            .fold(f64::INFINITY, f64::min);
        let affine = self.irq_load(from_c) <= min_irq + self.config.tunables.irq_load_gate;
        let placement = self.sched.wake(task, from, affine).expect("task exists");
        self.tasks[ti].blocked = None;
        if placement.needs_resched_ipi {
            self.deliver_ipi(from, placement.cpu, IpiKind::Reschedule, now);
        }
    }

    fn on_message_complete(&mut self, now: u64) {
        self.total_messages += 1;
        if !self.measuring {
            if self.total_messages >= self.warmup_target() {
                self.begin_measurement(now);
            }
            return;
        }
        self.measured_messages += 1;
        self.bytes_moved += self.config.workload.message_bytes;
        self.last_message_time = now;
        if self.measured_messages >= self.measure_target() {
            self.done = true;
        }
    }

    fn begin_measurement(&mut self, now: u64) {
        self.measuring = true;
        self.measure_start = now;
        self.last_message_time = now;
        self.mem.reset_stats();
        for core in &mut self.cores {
            core.reset_counters();
        }
        self.prof.reset();
        self.sched.reset_stats();
        self.apic.reset_stats();
        self.ipi.reset_stats();
        self.steer_stats = SteerCounters::default();
        for nic in &mut self.nics {
            nic.reset_stats();
        }
        if let Some(plane) = &mut self.poll {
            plane.reset_counters();
        }
        if let Some(srv) = &mut self.server {
            srv.window_accepts = 0;
            srv.window_completes = 0;
            srv.fct.clear();
        }
    }

    fn collect_metrics(&self) -> RunMetrics {
        let wall = self
            .last_message_time
            .saturating_sub(self.measure_start)
            .max(1);
        let bins = Bin::ALL
            .into_iter()
            .map(|bin| BinBreakdown {
                bin,
                counters: self.prof.group_total(self.stack.registry(), bin.label()),
            })
            .collect();
        let mut clears_by_reason = [0u64; 5];
        for core in &self.cores {
            let by = core.clears_by_reason();
            for i in 0..5 {
                clears_by_reason[i] += by[i];
            }
        }
        let sched_stats = self.sched.stats();
        let (mut lock_acq, mut lock_cont) = (0, 0);
        for i in 0..self.config.connections {
            let s = self.stack.lock_stats(ConnectionId::new(i as u32));
            lock_acq += s.acquisitions;
            lock_cont += s.contended;
        }
        RunMetrics {
            wall_cycles: wall,
            freq: self.config.cpu.freq,
            bytes_moved: self.bytes_moved,
            messages: self.measured_messages,
            busy_cycles: self.cores.iter().map(Core::busy_cycles).collect(),
            total: self.prof.total(),
            bins,
            clears_by_reason,
            resched_ipis: sched_stats.resched_ipis,
            wake_migrations: sched_stats.wake_migrations,
            balance_migrations: sched_stats.balance_migrations,
            lock_acquisitions: lock_acq,
            lock_contended: lock_cont,
            interrupts: self.nics.iter().map(|n| n.stats().interrupts).sum(),
        }
    }

    /// The profiler (for table/figure rendering after a run).
    #[must_use]
    pub fn profiler(&self) -> &Profiler {
        &self.prof
    }

    /// The stack's function registry.
    #[must_use]
    pub fn registry(&self) -> &sim_prof::FunctionRegistry {
        self.stack.registry()
    }

    /// The interrupt vectors in global queue order (one per NIC on the
    /// paper SUT's single-queue ports).
    #[must_use]
    pub fn vectors(&self) -> &[IrqVector] {
        &self.vectors
    }

    /// Steering counters for the measurement window (re-steers, filter
    /// rejects, out-of-order completions).
    #[must_use]
    pub fn steer_stats(&self) -> SteerCounters {
        self.steer_stats
    }

    /// The hardware queue carrying each flow (global queue index).
    #[must_use]
    pub fn flow_queues(&self) -> &[usize] {
        &self.flow_queue
    }

    /// Busy-poll counters aggregated over all PMD cores (measurement
    /// window; all zero under the interrupt dataplane).
    #[must_use]
    pub fn poll_stats(&self) -> PollCounters {
        let mut total = PollCounters::default();
        if let Some(plane) = &self.poll {
            for c in &plane.counters {
                total.merge(c);
            }
        }
        total
    }

    /// Busy-poll counters per CPU (empty under the interrupt dataplane).
    #[must_use]
    pub fn poll_stats_per_cpu(&self) -> Vec<PollCounters> {
        self.poll
            .as_ref()
            .map(|plane| plane.counters.clone())
            .unwrap_or_default()
    }

    /// Name of the active steering policy.
    #[must_use]
    pub fn steering_name(&self) -> &'static str {
        self.steering.name()
    }

    /// Dynamic vector re-targets performed by the IO-APIC (measurement
    /// window).
    #[must_use]
    pub fn apic_retargets(&self) -> u64 {
        self.apic.retargets()
    }

    /// IPIs received per CPU (reschedule kind).
    #[must_use]
    pub fn resched_ipis_received(&self, cpu: CpuId) -> u64 {
        self.ipi.received(cpu, IpiKind::Reschedule)
    }

    /// Fraction of `cpu`'s time spent in interrupt context so far.
    #[must_use]
    pub fn irq_load_fraction(&self, cpu: CpuId) -> f64 {
        self.irq_load(cpu.index())
    }

    /// Where each connection's process context last ran, by connection.
    #[must_use]
    pub fn process_cpus(&self) -> Vec<Option<CpuId>> {
        self.last_process_cpu.clone()
    }

    /// Where each connection's bottom halves last ran, by connection.
    #[must_use]
    pub fn softirq_cpus(&self) -> Vec<Option<CpuId>> {
        self.last_softirq_cpu.clone()
    }

    /// Scheduler statistics (wakeups, migrations, IPIs).
    #[must_use]
    pub fn scheduler_stats(&self) -> sim_os::SchedulerStats {
        self.sched.stats()
    }

    /// Per-task `(migrations, wakeups, run_cycles)` since construction.
    #[must_use]
    pub fn task_stats(&self) -> Vec<(u64, u64, u64)> {
        self.sched
            .tasks()
            .map(|t| (t.migrations, t.wakeups, t.run_cycles))
            .collect()
    }

    /// Total IPIs of any kind received across CPUs.
    #[must_use]
    pub fn total_ipis(&self) -> u64 {
        self.ipi.total()
    }
}

#[cfg(test)]
mod tests {
    use super::should_trace;

    #[test]
    fn trace_gate_fires_on_powers_of_two_and_200k_multiples() {
        assert!(!should_trace(0), "iteration 0 never runs");
        for g in [1, 2, 4, 1024, 1 << 40] {
            assert!(should_trace(g), "{g} is a power of two");
        }
        for g in [200_000u64, 400_000, 2_000_000] {
            assert!(should_trace(g), "{g} is a 200k multiple");
        }
        for g in [3, 5, 199_999, 200_001, 300_000] {
            assert!(!should_trace(g), "{g} should be quiet");
        }
    }
}
