//! The four affinity modes of the paper's Figure 3.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::steer::{DynamicSteer, FlowPlacement, SteerSpec, VectorLayout};

/// How processes and interrupts are bound to processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AffinityMode {
    /// No binding: interrupts default to CPU0 (the Linux 2.4/NT default),
    /// the scheduler places processes freely.
    None,
    /// Interrupt-only affinity: NIC vectors split evenly across CPUs via
    /// `smp_affinity`; processes free.
    Irq,
    /// Process-only affinity: `ttcp` processes pinned evenly across CPUs;
    /// interrupts still all on CPU0.
    Process,
    /// Full affinity: each process pinned to the CPU that services its
    /// NIC's interrupts.
    Full,
    /// Receive-side-scaling: flows are hash-steered across NIC queues
    /// whose vectors are pinned (like [`AffinityMode::Irq`]), processes
    /// stay free — the "adapters that can direct connections ... to a
    /// specific processor" future the paper's conclusion sketches. Not
    /// part of the paper's Figure 3 matrix ([`AffinityMode::ALL`]); used
    /// by the scale sweep.
    Rss,
}

impl AffinityMode {
    /// All modes in the paper's presentation order.
    pub const ALL: [AffinityMode; 4] = [
        AffinityMode::None,
        AffinityMode::Process,
        AffinityMode::Irq,
        AffinityMode::Full,
    ];

    /// Label as used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AffinityMode::None => "No Aff",
            AffinityMode::Irq => "IRQ Aff",
            AffinityMode::Process => "Proc Aff",
            AffinityMode::Full => "Full Aff",
            AffinityMode::Rss => "RSS Aff",
        }
    }

    /// Whether interrupts are split across CPUs in this mode.
    #[must_use]
    pub fn irq_split(self) -> bool {
        matches!(
            self,
            AffinityMode::Irq | AffinityMode::Full | AffinityMode::Rss
        )
    }

    /// Whether processes are pinned in this mode.
    #[must_use]
    pub fn processes_pinned(self) -> bool {
        matches!(self, AffinityMode::Process | AffinityMode::Full)
    }

    /// Whether flows are RSS-hash-steered across NIC queues (instead of
    /// the static round-robin flow→NIC assignment).
    #[must_use]
    pub fn rss_steered(self) -> bool {
        matches!(self, AffinityMode::Rss)
    }

    /// The steering-policy bundle this mode presets. This is the *only*
    /// place the mode enum is interpreted — the machine consumes the
    /// resulting [`SteerSpec`], never the enum.
    #[must_use]
    pub fn steer_preset(self) -> SteerSpec {
        let (placement, vectors) = match self {
            AffinityMode::None | AffinityMode::Process => {
                (FlowPlacement::RoundRobin, VectorLayout::AllCpu0)
            }
            AffinityMode::Irq | AffinityMode::Full => {
                (FlowPlacement::RoundRobin, VectorLayout::SplitEven)
            }
            AffinityMode::Rss => (FlowPlacement::RssHash, VectorLayout::SplitEven),
        };
        SteerSpec {
            placement,
            vectors,
            dynamic: DynamicSteer::Off,
            pin_processes: self.processes_pinned(),
        }
    }
}

impl fmt::Display for AffinityMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_modes() {
        assert_eq!(AffinityMode::ALL.len(), 4);
    }

    #[test]
    fn knob_matrix_matches_paper() {
        assert!(!AffinityMode::None.irq_split());
        assert!(!AffinityMode::None.processes_pinned());
        assert!(AffinityMode::Irq.irq_split());
        assert!(!AffinityMode::Irq.processes_pinned());
        assert!(!AffinityMode::Process.irq_split());
        assert!(AffinityMode::Process.processes_pinned());
        assert!(AffinityMode::Full.irq_split());
        assert!(AffinityMode::Full.processes_pinned());
    }

    #[test]
    fn rss_is_outside_the_paper_matrix() {
        assert!(!AffinityMode::ALL.contains(&AffinityMode::Rss));
        assert!(AffinityMode::Rss.irq_split());
        assert!(!AffinityMode::Rss.processes_pinned());
        assert!(AffinityMode::Rss.rss_steered());
        for mode in AffinityMode::ALL {
            assert!(!mode.rss_steered(), "{mode} must use round-robin flows");
        }
    }

    #[test]
    fn presets_encode_the_knob_matrix() {
        for mode in [
            AffinityMode::None,
            AffinityMode::Irq,
            AffinityMode::Process,
            AffinityMode::Full,
            AffinityMode::Rss,
        ] {
            let spec = mode.steer_preset();
            assert_eq!(
                spec.vectors == VectorLayout::SplitEven,
                mode.irq_split(),
                "{mode}"
            );
            assert_eq!(spec.pin_processes, mode.processes_pinned(), "{mode}");
            assert_eq!(
                spec.placement == FlowPlacement::RssHash,
                mode.rss_steered(),
                "{mode}"
            );
            assert_eq!(spec.dynamic, DynamicSteer::Off, "{mode}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(AffinityMode::Full.to_string(), "Full Aff");
        assert_eq!(AffinityMode::None.label(), "No Aff");
        assert_eq!(AffinityMode::Rss.label(), "RSS Aff");
    }
}
