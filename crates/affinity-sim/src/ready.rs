//! The run loop's ready-CPU index.
//!
//! Every iteration of the machine's run loop must pick the CPU with
//! runnable work whose local clock is furthest behind. The naive form —
//! `(0..cpus).filter(cpu_has_work).min_by_key(|c| (clock[c], c))` —
//! re-interrogates the scheduler (including the cross-runqueue
//! steal-eligibility scan) for every CPU on every iteration, making each
//! iteration O(CPUs²) at worst. Runnability only changes when the
//! scheduler mutates, though, so [`ReadyCpus`] caches the answer as a
//! bitmask keyed to [`Scheduler::generation`](sim_os::Scheduler::generation)
//! and revalidates with a single integer compare; the per-iteration cost
//! collapses to a min-scan over the set bits.
//!
//! The pick order is **identical** to the naive scan by construction:
//! bits are visited in ascending CPU order and a candidate only replaces
//! the current best on a *strictly* smaller clock, which reproduces the
//! `(clock, cpu)` lexicographic tie-break exactly. The property tests in
//! `tests/ready_cpus.rs` drive both forms through randomized
//! block/wake/advance sequences to keep this claim honest.

/// Cached bitmask of CPUs that currently have runnable work.
#[derive(Debug, Clone)]
pub struct ReadyCpus {
    /// Scheduler generation the mask was computed at; `u64::MAX` marks
    /// the cache as never-filled (the scheduler starts at generation 0).
    generation: u64,
    mask: u64,
}

impl Default for ReadyCpus {
    fn default() -> Self {
        ReadyCpus::new()
    }
}

impl ReadyCpus {
    /// An empty, stale cache.
    #[must_use]
    pub fn new() -> Self {
        ReadyCpus {
            generation: u64::MAX,
            mask: 0,
        }
    }

    /// True when the cached mask no longer matches `generation` and must
    /// be rebuilt via [`set`](Self::set).
    #[must_use]
    pub fn stale(&self, generation: u64) -> bool {
        self.generation != generation
    }

    /// Installs a freshly computed mask for `generation`.
    ///
    /// # Panics
    ///
    /// Panics if `generation` is `u64::MAX` (reserved as the
    /// never-filled marker).
    pub fn set(&mut self, generation: u64, mask: u64) {
        assert!(generation != u64::MAX, "generation overflow");
        self.generation = generation;
        self.mask = mask;
    }

    /// The cached mask (bit `c` set when CPU `c` has work).
    #[must_use]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// The ready CPU with the smallest `(clock, cpu)` — exactly the CPU
    /// the naive `filter(has_work).min_by_key(|c| (clock[c], c))` scan
    /// would pick. `None` when no CPU is ready.
    ///
    /// # Panics
    ///
    /// Panics if the mask has a bit at or beyond `clocks.len()`.
    #[must_use]
    pub fn pick(&self, clocks: &[u64]) -> Option<usize> {
        let mut rest = self.mask;
        let mut best: Option<usize> = None;
        while rest != 0 {
            let c = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            // Strict `<` with ascending visit order == lexicographic
            // (clock, cpu) minimum.
            if best.is_none_or(|b| clocks[c] < clocks[b]) {
                best = Some(c);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_stale_then_caches() {
        let mut r = ReadyCpus::new();
        assert!(r.stale(0));
        r.set(0, 0b11);
        assert!(!r.stale(0));
        assert!(r.stale(1));
        assert_eq!(r.mask(), 0b11);
    }

    #[test]
    fn pick_matches_naive_scan() {
        let clocks = [5u64, 3, 3, 9];
        for mask in 0u64..16 {
            let mut r = ReadyCpus::new();
            r.set(0, mask);
            let naive = (0..4)
                .filter(|&c| mask & (1 << c) != 0)
                .min_by_key(|&c| (clocks[c], c));
            assert_eq!(r.pick(&clocks), naive, "mask {mask:#b}");
        }
    }

    #[test]
    fn empty_mask_picks_none() {
        let r = ReadyCpus::new();
        assert_eq!(r.pick(&[1, 2, 3]), None);
    }

    #[test]
    fn tie_break_prefers_lowest_cpu() {
        let mut r = ReadyCpus::new();
        r.set(0, 0b1110);
        assert_eq!(r.pick(&[0, 7, 7, 7]), Some(1));
    }
}
