//! Offline stand-in for the `criterion` crate.
//!
//! The workspace's containers build without network access, so the real
//! criterion cannot be fetched. This stub keeps `cargo bench` working:
//! every `bench_function` runs a short warm-up plus a fixed number of
//! timed iterations and prints the mean wall time per iteration, which is
//! enough to compare substrate revisions by hand. There is no statistical
//! analysis, HTML report, or saved baseline.

use std::time::{Duration, Instant};

/// Top-level bench driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    // One warm-up pass, then the timed samples.
    f(&mut b);
    b.iterations = 0;
    b.elapsed = Duration::ZERO;
    for _ in 0..samples {
        f(&mut b);
    }
    let mean = if b.iterations == 0 {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(b.iterations).unwrap_or(u32::MAX)
    };
    println!(
        "bench {id:<50} {:>12.3?}/iter ({} iters)",
        mean, b.iterations
    );
}

/// Per-benchmark timing context, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one closure invocation and accumulates it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }
}

/// Prevents the optimizer from discarding a value (std re-export).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
