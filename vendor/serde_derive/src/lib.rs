//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The derives expand to nothing: no code in this workspace bounds on the
//! serde traits, so empty expansions keep every `#[derive(Serialize,
//! Deserialize)]` attribute compiling without generating impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
